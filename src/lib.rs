//! # learnability — umbrella crate
//!
//! Reproduction of Sivaraman, Winstein, Thaker & Balakrishnan, *An
//! Experimental Study of the Learnability of Congestion Control*
//! (SIGCOMM 2014). Re-exports the four library crates:
//!
//! * [`netsim`] — deterministic packet-level network simulator.
//! * [`protocols`] — Tao (RemyCC) executor, TCP NewReno, TCP Cubic.
//! * [`remy`] — the automatic protocol-design tool (whisker-tree
//!   optimizer).
//! * [`lcc_core`] — the study itself: objectives, the omniscient
//!   reference, and one experiment module per paper figure/table.
//!
//! See `examples/` for runnable walkthroughs and the `bench` crate for
//! per-figure regeneration binaries.

pub use lcc_core;
pub use netsim;
pub use protocols;
pub use remy;

/// Crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_compile() {
        let _ = crate::VERSION;
        let _ = netsim::time::SimDuration::from_millis(1);
        let _ = protocols::Action::default();
        let _ = remy::Objective::default();
    }
}
