//! Vendored mini-rand: source-compatible subset of the rand 0.8 API used
//! by this workspace (`StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen`,
//! `gen_range`, `gen_bool`, `RngCore`).
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — *not* the same
//! stream as crates.io `StdRng` (ChaCha12), which is fine here: the
//! workspace defines its own determinism contract (same seed → same run)
//! and ships no golden vectors tied to ChaCha output.

use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (our generators never fail).
#[derive(Debug, Clone)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`].
pub trait StandardSample: Sized {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of a u64.
pub fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / 9007199254740992.0)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u32, u64, usize, i64);

/// Map a uniform u64 into `[0, span)` (multiply-shift; bias is negligible
/// for the spans used here and irrelevant to correctness).
fn reduce(x: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((x as u128 * span as u128) >> 64) as u64
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_from(self)
    }

    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let x = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&x[..chunk.len()]);
            }
        }
    }

    /// Alias: callers asking for the small generator get the same engine.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(2.0..3.0);
            assert!((2.0..3.0).contains(&x));
            let y: u32 = rng.gen_range(5u32..=9);
            assert!((5..=9).contains(&y));
            let z: u64 = rng.gen_range(0u64..17);
            assert!(z < 17);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn unit_f64_statistics() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
