//! Vendored mini serde_json: JSON text ⇄ [`serde::Value`] plus the
//! `to_string` / `to_string_pretty` / `from_str` entry points the
//! workspace uses. Matches serde_json's JSON conventions (externally
//! tagged enums, non-finite floats as `null`, shortest round-trip float
//! formatting).

pub use serde::Value;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Serialization or parse error.
#[derive(Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Error({})", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float formatting.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` in object, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => {
                    self.pos += 1;
                }
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` in array, got `{}`",
                        c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(Error::new(format!("unknown escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos-1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(Error::new(format!("invalid value at byte {start}")));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if rest.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    return text
                        .parse::<i64>()
                        .map(Value::I64)
                        .map_err(|_| Error::new(format!("integer out of range: {text}")));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Value::U64(x));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number: {text}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for (v, s) in [
            (Value::Null, "null"),
            (Value::Bool(true), "true"),
            (Value::U64(42), "42"),
            (Value::I64(-7), "-7"),
            (Value::F64(1.5), "1.5"),
        ] {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, s);
            assert_eq!(parse_value(s).unwrap(), v);
        }
    }

    #[test]
    fn float_shortest_repr_round_trips() {
        for x in [0.1, 1.0 / 3.0, 4000.0 * (1.0 - 1e-12), f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            ("s".into(), Value::Str("he said \"hi\"\n".into())),
            ("o".into(), Value::Object(vec![])),
        ]);
        let compact = {
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            out
        };
        let pretty = {
            let mut out = String::new();
            write_value(&mut out, &v, Some(2), 0);
            out
        };
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
