//! Vendored mini rand_distr: just the exponential distribution the
//! simulator's workload model draws from.

use rand::RngCore;

pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Clone, Copy, Debug)]
pub struct Exp {
    lambda: f64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExpError {
    LambdaTooSmall,
}

impl std::fmt::Display for ExpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lambda must be positive")
    }
}

impl std::error::Error for ExpError {}

impl Exp {
    pub fn new(lambda: f64) -> Result<Self, ExpError> {
        if lambda > 0.0 && lambda.is_finite() {
            Ok(Exp { lambda })
        } else {
            Err(ExpError::LambdaTooSmall)
        }
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF; 1 - u in (0, 1] avoids ln(0).
        let u = rand::unit_f64(rng.next_u64());
        -(1.0 - u).ln() / self.lambda
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exponential_mean_converges() {
        let exp = Exp::new(0.5).unwrap(); // mean 2.0
        let mut rng = StdRng::seed_from_u64(3);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| exp.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn rejects_bad_lambda() {
        assert!(Exp::new(0.0).is_err());
        assert!(Exp::new(-1.0).is_err());
        assert!(Exp::new(f64::INFINITY).is_err());
    }
}
