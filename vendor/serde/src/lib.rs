//! Vendored mini-serde: the serde API surface this workspace uses, backed
//! by a simple JSON-oriented value model.
//!
//! The build environment has no network access, so the real serde cannot
//! be fetched. This crate keeps the source-level API (`Serialize` /
//! `Deserialize` traits plus same-named derive macros) so the rest of the
//! workspace is source-compatible with crates.io serde, but the data model
//! is a single [`Value`] tree that `serde_json` (also vendored) renders.

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both derive macros target.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs (preserves struct field order).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| value_get(o, key))
    }
}

/// Linear key lookup in an object body (objects are small everywhere here).
pub fn value_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::fmt::Debug for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DeError({})", self.msg)
    }
}

impl std::error::Error for DeError {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(x) if x.fract() == 0.0 && *x >= 0.0 => Ok(*x as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::I64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::U64(x) => <$t>::try_from(*x)
                        .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::F64(x) if x.fract() == 0.0 => Ok(*x as $t),
                    _ => Err(DeError::new(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(x) => Ok(*x as f64),
            Value::I64(x) => Ok(*x as f64),
            // serde_json writes non-finite floats as null; accept them back.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::new("expected f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            _ => Err(DeError::new("expected array")),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(|x| x.to_value()).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| DeError::new("wrong array length"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                let expect = [$( stringify!($idx) ),+].len();
                if a.len() != expect {
                    return Err(DeError::new("wrong tuple arity"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
