//! Vendored mini-criterion: wall-clock benchmark harness with the
//! criterion 0.5 API surface this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups,
//! `bench_function` / `bench_with_input`, `sample_size`, `throughput`).
//!
//! Each benchmark runs `sample_size` timed iterations after one warmup
//! iteration and reports mean/min wall time (plus element throughput when
//! configured). `--test` (as passed by `cargo bench -- --test`) switches
//! to smoke mode: every benchmark body runs exactly once, untimed.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        black_box(f()); // warmup
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) {
        let test_mode = self.test_mode;
        run_one(name, 10, None, test_mode, f);
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_one(&label, self.sample_size, self.throughput, self.test_mode, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        test_mode,
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if test_mode {
        println!("test {label} ... ok (smoke)");
        return;
    }
    if bencher.samples.is_empty() {
        println!("{label}: no samples (b.iter never called)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let mut line = format!(
        "{label}: mean {} min {} ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        bencher.samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |n: u64| n as f64 / mean.as_secs_f64();
        match t {
            Throughput::Elements(n) => {
                line.push_str(&format!(", {:.0} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!(", {:.0} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            let _ = $config;
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
