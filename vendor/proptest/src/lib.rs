//! Vendored mini-proptest: the `proptest!` surface this workspace's test
//! suites use, with deterministic case generation and **no shrinking** —
//! a failing case panics with the generated inputs via the assert message.
//!
//! Supported: `proptest! { #![proptest_config(..)] #[test] fn f(x in S, ..)
//! {..} }`, range strategies over ints and floats, tuple strategies,
//! `Just`, `prop_oneof!`, `proptest::collection::vec`, `Strategy::prop_map`,
//! `prop_assert!` / `prop_assert_eq!` (plain asserts).

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 stream for case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / 9007199254740992.0)
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Runner knobs (only `cases` is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + (rng.next_u64() as $t);
                }
                lo + (rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Uniform choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].generate(rng)
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Size bounds accepted by [`vec()`].
    pub trait SizeRange {
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min) as u64;
            let len = self.min + (((rng.next_u64() as u128 * span as u128) >> 64) as usize);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Just, ProptestConfig,
        Strategy,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {{
        let options: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($strategy)),+];
        $crate::Union::new(options)
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Deterministic per-test stream: seed from the test name.
                let mut __seed = 0xB5EEDu64;
                for b in stringify!($name).bytes() {
                    __seed = __seed.wrapping_mul(0x100000001B3).wrapping_add(b as u64);
                }
                let mut __rng = $crate::TestRng::from_seed(__seed);
                for __case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in -2.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in collection::vec(0u32..5, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_map(tag in prop_oneof![Just(1u8), Just(2u8)], y in (0u32..4, 1u32..3).prop_map(|(a, b)| a + b)) {
            prop_assert!(tag == 1 || tag == 2);
            prop_assert!((1..7).contains(&y));
        }
    }

    #[test]
    fn deterministic_generation() {
        let s = (0u64..100, 0.0f64..1.0);
        let mut a = crate::TestRng::from_seed(9);
        let mut b = crate::TestRng::from_seed(9);
        for _ in 0..100 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
