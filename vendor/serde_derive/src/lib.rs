//! Minimal `#[derive(Serialize, Deserialize)]` for the vendored mini-serde.
//!
//! The build environment has no network access, so the workspace vendors a
//! small serde-compatible surface instead of the real crates. This derive
//! supports exactly the shapes the repo uses, mirroring serde's externally
//! tagged JSON representation:
//!
//! * named-field structs        → JSON object
//! * newtype structs            → the inner value
//! * tuple structs (n ≥ 2)      → JSON array
//! * unit enum variants         → `"Variant"`
//! * newtype enum variants      → `{"Variant": value}`
//! * tuple enum variants        → `{"Variant": [..]}`
//! * struct enum variants       → `{"Variant": {..}}`
//! * `#[serde(default)]` fields → `Default::default()` when the key is absent
//! * `#[serde(default = "path")]` fields → `path()` when the key is absent
//! * `#[serde(skip_serializing_if = "path")]` fields → key omitted from the
//!   serialized object when `path(&field)` is true (named structs only)
//!
//! Generics, lifetimes, and other serde attributes are unsupported and
//! rejected at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    default: FieldDefault,
    /// `#[serde(skip_serializing_if = "path")]`: omit the key when
    /// `path(&self.field)` holds.
    skip_if: Option<String>,
}

/// How a missing key fills in during deserialization.
#[derive(Debug, Clone)]
enum FieldDefault {
    /// No default: a missing key is an error.
    Required,
    /// `#[serde(default)]`: `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]`: call `path()` (resolved in the
    /// deriving module's scope, as real serde does).
    Path(String),
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// The parsed `#[serde(...)]` knobs of one field.
#[derive(Debug, Default)]
struct FieldAttrs {
    default: Option<FieldDefault>,
    skip_if: Option<String>,
}

/// Strip the surrounding quotes from a stringified string literal.
fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

/// Parse the comma-separated items inside a `serde(...)` attribute.
fn parse_serde_items(stream: TokenStream, attrs: &mut FieldAttrs) {
    let mut it = stream.into_iter().peekable();
    while let Some(tt) = it.next() {
        let TokenTree::Ident(key) = tt else { continue };
        let key = key.to_string();
        // An optional `= "path"` follows the key.
        let mut path = None;
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == '=' {
                it.next();
                match it.next() {
                    Some(TokenTree::Literal(l)) => path = Some(unquote(&l.to_string())),
                    other => panic!("expected string after `{key} =`, got {other:?}"),
                }
            }
        }
        match (key.as_str(), path) {
            ("default", None) => attrs.default = Some(FieldDefault::Trait),
            ("default", Some(p)) => attrs.default = Some(FieldDefault::Path(p)),
            ("skip_serializing_if", Some(p)) => attrs.skip_if = Some(p),
            (other, _) => panic!("unsupported serde attribute item `{other}`"),
        }
    }
}

/// Skip a run of outer attributes (`#[...]`), collecting the field's
/// serde knobs from any `#[serde(...)]` among them (doc comments and
/// other attributes are ignored, whatever their text contains).
fn skip_attrs(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> FieldAttrs {
    let mut attrs = FieldAttrs::default();
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                        let mut body = g.stream().into_iter();
                        match (body.next(), body.next()) {
                            (Some(TokenTree::Ident(id)), Some(TokenTree::Group(inner)))
                                if id.to_string() == "serde"
                                    && inner.delimiter() == Delimiter::Parenthesis =>
                            {
                                parse_serde_items(inner.stream(), &mut attrs);
                            }
                            _ => {} // doc comment / derive / other attribute
                        }
                    }
                    other => panic!("expected attribute body, got {other:?}"),
                }
            }
            _ => return attrs,
        }
    }
}

fn skip_visibility(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = it.peek() {
        if id.to_string() == "pub" {
            it.next();
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
        }
    }
}

/// Parse `name: Type,` fields from the token stream of a brace group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        let attrs = skip_attrs(&mut it);
        skip_visibility(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected ':' after field `{name}`, got {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        loop {
            match it.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        it.next();
                        break;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    }
                    it.next();
                }
                Some(_) => {
                    it.next();
                }
            }
        }
        fields.push(Field {
            name,
            default: attrs.default.unwrap_or(FieldDefault::Required),
            skip_if: attrs.skip_if,
        });
    }
    fields
}

/// Count comma-separated entries at top level of a paren group (tuple
/// struct / tuple variant fields).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == ',' && angle_depth == 0 {
                count += 1;
                saw_token = false;
                continue;
            }
            if c == '<' {
                angle_depth += 1;
            } else if c == '>' {
                angle_depth -= 1;
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut it);
        let name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        // skip an explicit discriminant (`= expr`) and the trailing comma
        loop {
            match it.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                    it.next();
                    break;
                }
                None => break,
                _ => {
                    it.next();
                }
            }
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> (String, Shape) {
    let mut it = input.into_iter().peekable();
    skip_attrs(&mut it);
    skip_visibility(&mut it);
    let keyword = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, got {other:?}"),
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!("mini-serde derive does not support generic type `{name}`");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, got {other:?}"),
        },
        kw => panic!("expected `struct` or `enum`, got `{kw}`"),
    };
    (name, shape)
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let mut pushes = String::new();
            for f in fields {
                let push = format!(
                    "obj.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_if {
                    Some(path) => pushes.push_str(&format!(
                        "if !({path})(&self.{n}) {{ {push} }}\n",
                        n = f.name
                    )),
                    None => pushes.push_str(&push),
                }
            }
            format!(
                "let mut obj: Vec<(String, ::serde::Value)> = Vec::new();\n{pushes}::serde::Value::Object(obj)"
            )
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{name}::{v}(x0) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(x0))]),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v}({b}) => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Array(vec![{it}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            it = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{v} {{ {b} }} => ::serde::Value::Object(vec![(\"{v}\".to_string(), ::serde::Value::Object(vec![{p}]))]),\n",
                            v = v.name,
                            b = binds.join(", "),
                            p = pushes.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n fn to_value(&self) -> ::serde::Value {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

fn gen_named_field_reads(fields: &[Field], obj_expr: &str, type_label: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let missing = match &f.default {
            FieldDefault::Trait => "Default::default()".to_string(),
            FieldDefault::Path(p) => format!("{p}()"),
            FieldDefault::Required => format!(
                "return Err(::serde::DeError::new(\"missing field `{n}` in {ty}\"))",
                n = f.name,
                ty = type_label
            ),
        };
        out.push_str(&format!(
            "{n}: match ::serde::value_get({obj}, \"{n}\") {{ Some(x) => ::serde::Deserialize::from_value(x)?, None => {missing} }},\n",
            n = f.name,
            obj = obj_expr
        ));
    }
    out
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    let body = match &shape {
        Shape::NamedStruct(fields) => {
            let reads = gen_named_field_reads(fields, "obj", &name);
            format!(
                "let obj = v.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {name}\"))?;\nOk({name} {{\n{reads}}})"
            )
        }
        Shape::TupleStruct(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\nif arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}\")); }}\nOk({name}({items}))",
                items = items.join(", ")
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{v}\" => return Ok({name}::{v}(::serde::Deserialize::from_value(inner)?)),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let arr = inner.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}::{v}\"))?; if arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{v}\")); }} return Ok({name}::{v}({items})); }}\n",
                            v = v.name,
                            items = items.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let label = format!("{name}::{}", v.name);
                        let reads = gen_named_field_reads(fields, "obj", &label);
                        tagged_arms.push_str(&format!(
                            "\"{v}\" => {{ let obj = inner.as_object().ok_or_else(|| ::serde::DeError::new(\"expected object for {label}\"))?; return Ok({name}::{v} {{\n{reads}}}); }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}_ => {{}} }},\n\
                 ::serde::Value::Object(o) if o.len() == 1 => {{\n\
                   let (tag, inner) = &o[0];\n\
                   match tag.as_str() {{\n{tagged_arms}_ => {{}} }}\n\
                 }}\n\
                 _ => {{}}\n\
                 }}\n\
                 Err(::serde::DeError::new(\"no matching variant of {name}\"))"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n fn from_value(v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n {body}\n }}\n}}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
