//! Property-based tests of scenario sampling: every named training spec
//! must produce valid, in-range, deterministic networks for any seed.

use netsim::queue::QueueSpec;
use proptest::prelude::*;
use remy::{BufferSpec, ScenarioSpec};

fn all_named_specs() -> Vec<(&'static str, ScenarioSpec)> {
    vec![
        ("calibration", ScenarioSpec::calibration()),
        ("link-2x", ScenarioSpec::link_speed_range(22.0, 44.0)),
        ("link-1000x", ScenarioSpec::link_speed_range(1.0, 1000.0)),
        (
            "mux-100",
            ScenarioSpec::multiplexing(100, BufferSpec::BdpMultiple(5.0)),
        ),
        ("rtt-50-250", ScenarioSpec::rtt_range(50.0, 250.0)),
        ("one-bottleneck", ScenarioSpec::one_bottleneck_model()),
        ("two-bottleneck", ScenarioSpec::two_bottleneck_model()),
        ("tcp-naive", ScenarioSpec::tcp_naive()),
        ("tcp-aware", ScenarioSpec::tcp_aware()),
        ("diversity", ScenarioSpec::diversity()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Any seed yields a structurally valid network with matching
    /// role/delta arity, and sampling is a pure function of the seed.
    #[test]
    fn sampled_scenarios_are_valid(seed in 0u64..u64::MAX) {
        for (name, spec) in all_named_specs() {
            let s = spec.sample(seed);
            prop_assert!(s.net.validate().is_ok(), "{name}: invalid network");
            prop_assert!(!s.roles.is_empty(), "{name}: no senders");
            prop_assert_eq!(s.roles.len(), s.deltas.len(), "{}: arity mismatch", name);
            prop_assert_eq!(s.roles.len(), s.net.flows.len(), "{}: flows mismatch", name);
            // determinism
            let s2 = spec.sample(seed);
            prop_assert_eq!(&s.net, &s2.net, "{}: sampling not deterministic", name);
            prop_assert_eq!(&s.roles, &s2.roles);
            prop_assert_eq!(s.seed, s2.seed);
        }
    }

    /// Link-speed draws honor their training range (Table 2a).
    #[test]
    fn link_speed_in_training_range(seed in 0u64..u64::MAX, lo in 1.0f64..50.0, span in 1.0f64..100.0) {
        let hi = lo * span;
        let spec = ScenarioSpec::link_speed_range(lo, hi);
        let s = spec.sample(seed);
        let mbps = s.net.links[0].rate_bps / 1e6;
        prop_assert!(mbps >= lo * 0.999 && mbps <= hi * 1.001, "{mbps} outside [{lo},{hi}]");
    }

    /// RTT draws honor their training range (Table 4a).
    #[test]
    fn rtt_in_training_range(seed in 0u64..u64::MAX, lo in 1.0f64..200.0, width in 0.0f64..100.0) {
        let hi = lo + width;
        let spec = ScenarioSpec::rtt_range(lo, hi);
        let s = spec.sample(seed);
        let rtt_ms = s.net.min_rtt(0).as_millis_f64();
        prop_assert!(rtt_ms >= lo - 0.01 && rtt_ms <= hi + 0.01, "{rtt_ms} outside [{lo},{hi}]");
    }

    /// Multiplexing draws stay within 1..=n and buffers match the spec.
    #[test]
    fn multiplexing_counts_in_range(seed in 0u64..u64::MAX, n in 1u32..100) {
        let spec = ScenarioSpec::multiplexing(n, BufferSpec::Infinite);
        let s = spec.sample(seed);
        prop_assert!((1..=n as usize).contains(&s.roles.len()));
        prop_assert_eq!(
            &s.net.links[0].queue,
            &QueueSpec::DropTail { capacity_bytes: None }
        );
    }

    /// Buffer specs translate to the right queue capacities.
    #[test]
    fn buffer_spec_capacity(rate_mbps in 1.0f64..1000.0, rtt_ms in 10.0f64..300.0, mult in 1.0f64..10.0) {
        let rate = rate_mbps * 1e6;
        let rtt = rtt_ms / 1e3;
        match BufferSpec::BdpMultiple(mult).to_queue(rate, rtt) {
            QueueSpec::DropTail { capacity_bytes: Some(c) } => {
                let expect = rate / 8.0 * rtt * mult;
                // sized up to the 3 kB floor and rounded
                prop_assert!(c as f64 >= expect.min(3000.0) - 1.0);
                prop_assert!(c as f64 <= expect.max(3000.0) + 1.0);
            }
            other => prop_assert!(false, "unexpected queue {other:?}"),
        }
        match BufferSpec::Bytes(250_000).to_queue(rate, rtt) {
            QueueSpec::DropTail { capacity_bytes: Some(c) } => prop_assert_eq!(c, 250_000),
            other => prop_assert!(false, "unexpected queue {other:?}"),
        }
    }
}
