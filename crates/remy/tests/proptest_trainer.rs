//! Property tests for the trainer subsystem's determinism contract: a
//! [`Trainer`] must be a pure function of `(specs, budget, rng seed)` —
//! in particular, bit-identical for any evaluation-pool size and either
//! order-equivalent scheduler backend. This is the same guarantee the
//! sweep engine makes, extended to protocol *design*.

use netsim::event::SchedulerKind;
use netsim::rng::SimRng;
use proptest::prelude::*;
use remy::{EvalPool, GeneticTrainer, ScenarioSpec, TrainBudget, TrainedProtocol, Trainer};
use std::sync::Arc;

/// A budget small enough to train many times per property case.
fn tiny_budget(scheduler: SchedulerKind) -> TrainBudget {
    let mut b = TrainBudget::smoke();
    b.rounds = 1; // one generation
    b.draws_per_eval = 1;
    b.sim_duration_s = 2.0;
    b.event_budget = 1_000_000;
    b.scheduler = scheduler;
    b
}

fn tiny_trainer(scheduler: SchedulerKind) -> GeneticTrainer {
    let mut t = GeneticTrainer::new(tiny_budget(scheduler));
    t.population = 4;
    t.elites = 1;
    t
}

fn train(trainer: &GeneticTrainer, threads: usize, rng_seed: u64) -> TrainedProtocol {
    let specs = vec![ScenarioSpec::calibration()];
    let pool = Arc::new(EvalPool::new(threads));
    trainer.train("prop", &specs, &pool, &mut SimRng::from_seed(rng_seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The genetic trainer's output must not depend on how many workers
    /// the evaluation pool runs: 1, 2, and 8 threads must produce the
    /// same genome and the same score, bit for bit.
    #[test]
    fn genetic_training_is_bit_identical_across_thread_counts(seed in 0u64..1_000) {
        let trainer = tiny_trainer(SchedulerKind::default());
        let one = train(&trainer, 1, seed);
        for threads in [2usize, 8] {
            let other = train(&trainer, threads, seed);
            prop_assert_eq!(&one.tree, &other.tree, "genome drifted at {} threads", threads);
            prop_assert_eq!(one.score.to_bits(), other.score.to_bits());
        }
    }

    /// The two order-equivalent scheduler backends must also agree: the
    /// backend is an implementation detail of the event loop, never of
    /// the protocol being designed.
    #[test]
    fn genetic_training_is_bit_identical_across_schedulers(seed in 0u64..1_000) {
        let heap = train(&tiny_trainer(SchedulerKind::Heap), 2, seed);
        let calendar = train(&tiny_trainer(SchedulerKind::Calendar), 2, seed);
        prop_assert_eq!(&heap.tree, &calendar.tree);
        prop_assert_eq!(heap.score.to_bits(), calendar.score.to_bits());
    }
}
