//! Saving and loading trained protocols.
//!
//! The paper published its Remy-produced congestion-control protocols
//! alongside the study ("instructions to reproduce the results … along
//! with the congestion-control protocols produced by Remy … are available
//! at …"). We do the same: trained whisker trees are stored as JSON under
//! `assets/` and loaded by the experiment harness.

use crate::optimizer::TrainedProtocol;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Serialize a trained protocol to pretty JSON.
pub fn to_json(p: &TrainedProtocol) -> String {
    serde_json::to_string_pretty(p).expect("TrainedProtocol serializes")
}

/// Parse a protocol from JSON.
pub fn from_json(s: &str) -> Result<TrainedProtocol, serde_json::Error> {
    serde_json::from_str(s)
}

/// Save to a file, creating parent directories.
pub fn save(p: &TrainedProtocol, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, to_json(p))
}

/// Load from a file.
pub fn load(path: &Path) -> io::Result<TrainedProtocol> {
    let text = fs::read_to_string(path)?;
    from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

static ASSETS_DIR_OVERRIDE: std::sync::Mutex<Option<PathBuf>> = std::sync::Mutex::new(None);

/// Programmatically override [`assets_dir`] for this process (`None`
/// restores the default). Prefer this over mutating `REMY_ASSETS_DIR` in
/// tests — concurrent `setenv`/`getenv` from parallel test threads is
/// undefined behavior on glibc.
pub fn set_assets_dir(dir: Option<PathBuf>) {
    *ASSETS_DIR_OVERRIDE
        .lock()
        .expect("assets override poisoned") = dir;
}

/// The workspace `assets/` directory. Overridable programmatically with
/// [`set_assets_dir`] or via the `REMY_ASSETS_DIR` environment variable
/// (useful for CI).
pub fn assets_dir() -> PathBuf {
    if let Some(dir) = ASSETS_DIR_OVERRIDE
        .lock()
        .expect("assets override poisoned")
        .clone()
    {
        return dir;
    }
    if let Ok(dir) = std::env::var("REMY_ASSETS_DIR") {
        return PathBuf::from(dir);
    }
    // crates/remy -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .join("assets")
}

/// Path of a named protocol asset.
pub fn asset_path(name: &str) -> PathBuf {
    assets_dir().join(format!("{name}.json"))
}

/// Load the named asset if present; otherwise run `train`, save the
/// result, and return it. This mirrors the paper's workflow: protocols are
/// designed offline (CPU-intensive) and published; evaluations reuse them.
pub fn load_or_train(name: &str, train: impl FnOnce() -> TrainedProtocol) -> TrainedProtocol {
    let path = asset_path(name);
    if let Ok(p) = load(&path) {
        return p;
    }
    let p = train();
    if let Err(e) = save(&p, &path) {
        eprintln!(
            "[remy] warning: could not save asset {}: {e}",
            path.display()
        );
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::{Action, WhiskerTree};

    fn proto(name: &str) -> TrainedProtocol {
        TrainedProtocol {
            name: name.into(),
            tree: WhiskerTree::uniform(Action::new(0.9, 1.5, 2.0)),
            score: 12.5,
            description: "test protocol".into(),
        }
    }

    #[test]
    fn json_round_trip() {
        let p = proto("rt");
        let back = from_json(&to_json(&p)).unwrap();
        assert_eq!(back.name, p.name);
        assert_eq!(back.tree, p.tree);
        assert_eq!(back.score, p.score);
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join(format!("remy-test-{}", std::process::id()));
        let path = dir.join("nested/proto.json");
        let p = proto("file");
        save(&p, &path).unwrap();
        let back = load(&path).unwrap();
        assert_eq!(back.tree, p.tree);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_missing_is_error() {
        assert!(load(Path::new("/nonexistent/proto.json")).is_err());
    }

    #[test]
    fn load_or_train_caches() {
        let dir = std::env::temp_dir().join(format!("remy-lot-{}", std::process::id()));
        std::env::set_var("REMY_ASSETS_DIR", &dir);
        let mut trained_calls = 0;
        let p1 = load_or_train("cache-test", || {
            trained_calls += 1;
            proto("cache-test")
        });
        assert_eq!(trained_calls, 1);
        // second call hits the cache
        let p2 = load_or_train("cache-test", || {
            trained_calls += 1;
            proto("other")
        });
        assert_eq!(trained_calls, 1);
        assert_eq!(p1.tree, p2.tree);
        std::env::remove_var("REMY_ASSETS_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn asset_path_shape() {
        let p = asset_path("tao-2x");
        assert!(p.to_string_lossy().ends_with("assets/tao-2x.json"));
    }
}
