//! `ScenarioSpace`: a first-class description of "a distribution over
//! scenarios".
//!
//! Both Remy's training-distribution draws ([`crate::scenario::ScenarioSpec`]
//! routes its topology sampling through [`TopologySpec::space`]) and the
//! adversarial scenario search in `lcc-core` describe their scenario ranges
//! the same way: an ordered list of named [`Axis`] values, each either a
//! continuous [`Sample`] range or a categorical choice. A *point* in the
//! space is a plain `Vec<f64>` parallel to the axes (categorical axes hold
//! the choice index as an exact small integer), which makes points
//! serde-friendly enough to embed in worst-case certificates and replay
//! bit-identically.
//!
//! Three operations matter:
//! - [`ScenarioSpace::sample_with`] — draw a point axis-by-axis, in declared
//!   order, from one [`SimRng`]; deterministic in the rng state.
//! - [`ScenarioSpace::mutate_with`] — a *bounded* mutation: perturb a point
//!   without ever leaving the axis ranges (the evolutionary refinement step
//!   of adversarial search).
//! - [`ScenarioSpace::clamp`] — project an arbitrary point (e.g. a
//!   hand-edited certificate) back into the box.
//!
//! [`TopologySpec::space`]: crate::scenario::TopologySpec::space

use crate::scenario::Sample;
use netsim::rng::SimRng;
use serde::{Deserialize, Serialize};

/// One searchable dimension of a [`ScenarioSpace`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Axis {
    /// Human-readable name; certificates print points axis-by-axis.
    pub name: String,
    pub kind: AxisKind,
}

/// What an axis ranges over.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum AxisKind {
    /// A scalar drawn from a [`Sample`] range (fixed, uniform, or
    /// log-uniform).
    Continuous(Sample),
    /// A categorical choice among `0..n` options, stored in the point as
    /// the exact integer index.
    Choice(u32),
}

impl Axis {
    fn draw(&self, rng: &mut SimRng) -> f64 {
        match self.kind {
            AxisKind::Continuous(s) => s.draw(rng),
            AxisKind::Choice(n) => rng.uniform_u32(0, n.saturating_sub(1)) as f64,
        }
    }

    fn center(&self) -> f64 {
        match self.kind {
            AxisKind::Continuous(s) => s.center(),
            AxisKind::Choice(n) => (n.saturating_sub(1) / 2) as f64,
        }
    }

    fn clamp(&self, v: f64) -> f64 {
        match self.kind {
            AxisKind::Continuous(s) => s.clamp(v),
            AxisKind::Choice(n) => {
                let hi = n.saturating_sub(1) as f64;
                if !v.is_finite() {
                    0.0
                } else {
                    v.round().clamp(0.0, hi)
                }
            }
        }
    }

    fn contains(&self, v: f64) -> bool {
        self.clamp(v) == v
    }

    /// Bounded perturbation: continuous axes step by at most `strength`
    /// of their range (linear for uniform, in log-space for log-uniform)
    /// and are clamped back into bounds; choice axes re-draw uniformly.
    fn perturb(&self, v: f64, rng: &mut SimRng, strength: f64) -> f64 {
        match self.kind {
            AxisKind::Continuous(s) => {
                let (lo, hi) = s.bounds();
                if lo == hi {
                    return lo;
                }
                let step = rng.uniform(-strength, strength);
                let moved = match s {
                    Sample::LogUniform { .. } => {
                        let span = (hi / lo).ln();
                        (s.clamp(v).ln() + step * span).exp()
                    }
                    _ => s.clamp(v) + step * (hi - lo),
                };
                s.clamp(moved)
            }
            AxisKind::Choice(_) => self.draw(rng),
        }
    }
}

/// An ordered, named box of scenario ranges — see the module docs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpace {
    /// Name of the space (shows up in certificates).
    pub name: String,
    pub axes: Vec<Axis>,
}

impl ScenarioSpace {
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpace {
            name: name.into(),
            axes: Vec::new(),
        }
    }

    /// Builder: append a continuous axis.
    pub fn with_continuous(mut self, name: impl Into<String>, sample: Sample) -> Self {
        self.axes.push(Axis {
            name: name.into(),
            kind: AxisKind::Continuous(sample),
        });
        self
    }

    /// Builder: append a categorical axis with `n` options.
    pub fn with_choice(mut self, name: impl Into<String>, n: u32) -> Self {
        let name = name.into();
        assert!(n >= 1, "choice axis '{name}' needs at least one option");
        self.axes.push(Axis {
            name,
            kind: AxisKind::Choice(n),
        });
        self
    }

    pub fn len(&self) -> usize {
        self.axes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.axes.is_empty()
    }

    /// Index of the axis named `name`, if any.
    pub fn axis_index(&self, name: &str) -> Option<usize> {
        self.axes.iter().position(|a| a.name == name)
    }

    /// Value of the named axis in `point` (panics on an unknown name —
    /// axis names are compile-time constants at every call site).
    pub fn value(&self, point: &[f64], name: &str) -> f64 {
        let i = self
            .axis_index(name)
            .unwrap_or_else(|| panic!("no axis named '{name}' in space '{}'", self.name));
        point[i]
    }

    /// Draw one point, axis by axis in declared order, from `rng`.
    pub fn sample_with(&self, rng: &mut SimRng) -> Vec<f64> {
        self.axes.iter().map(|a| a.draw(rng)).collect()
    }

    /// Draw one point deterministically from a seed.
    pub fn sample(&self, seed: u64) -> Vec<f64> {
        self.sample_with(&mut SimRng::from_seed(seed))
    }

    /// The center of the box (geometric center for log-uniform axes).
    pub fn center(&self) -> Vec<f64> {
        self.axes.iter().map(|a| a.center()).collect()
    }

    /// Project an arbitrary point into the box (clamping continuous axes,
    /// rounding + clamping choice axes, collapsing non-finite values).
    pub fn clamp(&self, point: &[f64]) -> Vec<f64> {
        assert_eq!(point.len(), self.axes.len(), "point/axes arity mismatch");
        self.axes
            .iter()
            .zip(point)
            .map(|(a, &v)| a.clamp(v))
            .collect()
    }

    /// Is `point` inside the box (and of the right arity)?
    pub fn contains(&self, point: &[f64]) -> bool {
        point.len() == self.axes.len() && self.axes.iter().zip(point).all(|(a, &v)| a.contains(v))
    }

    /// Bounded mutation: always perturbs one uniformly chosen axis, and
    /// each other axis independently with probability 0.3. The result is
    /// guaranteed to stay inside the box. `strength` scales the continuous
    /// step size (fraction of each axis range; 0.1–0.5 is typical).
    pub fn mutate_with(&self, point: &[f64], rng: &mut SimRng, strength: f64) -> Vec<f64> {
        assert_eq!(point.len(), self.axes.len(), "point/axes arity mismatch");
        if self.axes.is_empty() {
            return Vec::new();
        }
        let forced = rng.uniform_u32(0, self.axes.len() as u32 - 1) as usize;
        self.axes
            .iter()
            .enumerate()
            .zip(point)
            .map(|((i, a), &v)| {
                if i == forced || rng.chance(0.3) {
                    a.perturb(v, rng, strength)
                } else {
                    a.clamp(v)
                }
            })
            .collect()
    }

    /// Deterministic bounded mutation from a seed.
    pub fn mutate(&self, point: &[f64], seed: u64, strength: f64) -> Vec<f64> {
        self.mutate_with(point, &mut SimRng::from_seed(seed), strength)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_space() -> ScenarioSpace {
        ScenarioSpace::new("demo")
            .with_continuous("rate", Sample::LogUniform { lo: 1.0, hi: 100.0 })
            .with_continuous("rtt", Sample::Uniform { lo: 0.05, hi: 0.3 })
            .with_continuous("pinned", Sample::Fixed(7.0))
            .with_choice("aqm", 4)
    }

    #[test]
    fn sampling_is_deterministic_and_in_bounds() {
        let sp = demo_space();
        for seed in 0..200 {
            let p = sp.sample(seed);
            assert_eq!(p, sp.sample(seed));
            assert!(sp.contains(&p), "seed {seed} sampled out of bounds: {p:?}");
            assert_eq!(p[2], 7.0, "fixed axis is fixed");
            assert_eq!(p[3], p[3].round(), "choice axis is an exact integer");
        }
    }

    #[test]
    fn spec_space_matches_inline_draw_order() {
        // ScenarioSpec::sample routes through space().sample_with; drawing
        // the space with a fresh rng of the same seed must reproduce the
        // sampled network's parameters exactly.
        let spec = crate::scenario::ScenarioSpec::link_speed_range(1.0, 1000.0);
        for seed in [0u64, 7, 123456789] {
            let s = spec.sample(seed);
            let p = spec.space().sample_with(&mut SimRng::from_seed(seed));
            assert_eq!(s.net.links[0].rate_bps, p[0] * 1e6);
        }
    }

    #[test]
    fn mutation_stays_in_bounds_and_is_deterministic() {
        let sp = demo_space();
        let mut point = sp.center();
        for seed in 0..300 {
            assert_eq!(sp.mutate(&point, seed, 0.5), sp.mutate(&point, seed, 0.5));
            point = sp.mutate(&point, seed, 0.5);
            assert!(
                sp.contains(&point),
                "seed {seed} mutated out of bounds: {point:?}"
            );
        }
    }

    #[test]
    fn mutation_actually_moves() {
        let sp = demo_space();
        let center = sp.center();
        let moved = (0..50)
            .filter(|&s| sp.mutate(&center, s, 0.3) != center)
            .count();
        assert!(moved > 40, "only {moved}/50 mutations moved the point");
    }

    #[test]
    fn clamp_projects_into_the_box() {
        let sp = demo_space();
        let wild = vec![1e9, -5.0, 0.0, 99.7];
        let p = sp.clamp(&wild);
        assert!(sp.contains(&p));
        assert_eq!(p, vec![100.0, 0.05, 7.0, 3.0]);
        let nan = sp.clamp(&[f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::NAN]);
        assert!(sp.contains(&nan));
    }

    #[test]
    fn value_lookup_by_name() {
        let sp = demo_space();
        let p = sp.center();
        assert_eq!(sp.value(&p, "pinned"), 7.0);
        assert_eq!(sp.axis_index("nope"), None);
    }

    #[test]
    fn spaces_serialize() {
        let sp = demo_space();
        let json = serde_json::to_string(&sp).unwrap();
        let back: ScenarioSpace = serde_json::from_str(&json).unwrap();
        assert_eq!(sp, back);
    }
}
