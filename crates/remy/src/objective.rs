//! The protocol designer's figure of merit (§3.2 of the paper).
//!
//! The study uses objectives of the form
//!
//! ```text
//! U = log(throughput) − δ · log(delay)
//! ```
//!
//! summed over all connections. Throughput is bytes delivered over ON
//! time; delay is the mean per-packet delay including propagation and
//! queueing. The log expresses proportional fairness; δ trades throughput
//! against delay (δ = 1 in most experiments; the sender-diversity
//! experiment uses δ = 0.1 and δ = 10).

use netsim::flow::FlowOutcome;
use serde::{Deserialize, Serialize};

/// Floor on throughput entering the log (a sender that was ON but
/// delivered nothing gets a harsh but finite utility).
pub const MIN_THROUGHPUT_BPS: f64 = 100.0;
/// Floor on delay entering the log.
pub const MIN_DELAY_S: f64 = 1e-6;

/// A throughput/delay objective with relative delay preference δ.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Objective {
    pub delta: f64,
}

impl Default for Objective {
    fn default() -> Self {
        Objective { delta: 1.0 }
    }
}

impl Objective {
    pub fn new(delta: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        Objective { delta }
    }

    /// The throughput-sensitive sender of §4.6 (δ = 0.1).
    pub fn throughput_sensitive() -> Self {
        Objective { delta: 0.1 }
    }

    /// The delay-sensitive sender of §4.6 (δ = 10).
    pub fn delay_sensitive() -> Self {
        Objective { delta: 10.0 }
    }

    /// Utility of raw throughput (bits/s) and delay (seconds).
    pub fn utility(&self, throughput_bps: f64, delay_s: f64) -> f64 {
        let tpt = throughput_bps.max(MIN_THROUGHPUT_BPS);
        let delay = delay_s.max(MIN_DELAY_S);
        tpt.log2() - self.delta * delay.log2()
    }

    /// Utility of a simulated flow; `None` if the sender never turned on
    /// (such flows are excluded from the average, as in the paper's
    /// definition where throughput is normalized by ON time).
    pub fn flow_utility(&self, out: &FlowOutcome) -> Option<f64> {
        if out.on_time_s <= 0.0 {
            return None;
        }
        // A flow that was ON but delivered nothing has no measured delay;
        // charge it its propagation delay so the objective stays finite.
        let delay = if out.packets_delivered == 0 {
            out.min_one_way_s.max(MIN_DELAY_S)
        } else {
            out.avg_delay_s
        };
        Some(self.utility(out.throughput_bps, delay))
    }

    /// Normalized utility relative to an ideal allocation: zero when the
    /// flow achieves `fair_tpt_bps` at `base_delay_s` (the omniscient
    /// protocol's operating point). This is the y-axis of Figs 2–4.
    pub fn normalized_utility(
        &self,
        throughput_bps: f64,
        delay_s: f64,
        fair_tpt_bps: f64,
        base_delay_s: f64,
    ) -> f64 {
        self.utility(throughput_bps, delay_s) - self.utility(fair_tpt_bps, base_delay_s)
    }

    /// Sum of utilities over a set of flows (ignoring never-ON flows).
    pub fn total_utility(&self, flows: &[FlowOutcome]) -> f64 {
        flows.iter().filter_map(|f| self.flow_utility(f)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome(tpt: f64, delay: f64, on: f64) -> FlowOutcome {
        FlowOutcome {
            flow: 0,
            throughput_bps: tpt,
            avg_delay_s: delay,
            avg_queueing_delay_s: 0.0,
            min_one_way_s: 0.075,
            bytes_delivered: (tpt * on / 8.0) as u64,
            packets_delivered: if tpt > 0.0 { 100 } else { 0 },
            on_time_s: on,
            drops: netsim::flow::DropStats::default(),
            timeouts: 0,
            losses: 0,
            transmissions: 0,
            retransmissions: 0,
        }
    }

    #[test]
    fn doubling_throughput_adds_one_bit() {
        let obj = Objective::default();
        let u1 = obj.utility(1e6, 0.1);
        let u2 = obj.utility(2e6, 0.1);
        assert!((u2 - u1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn doubling_delay_costs_delta_bits() {
        let obj = Objective::new(2.0);
        let u1 = obj.utility(1e6, 0.1);
        let u2 = obj.utility(1e6, 0.2);
        assert!((u1 - u2 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn proportional_fairness_tradeoff() {
        // Halving one connection to more-than-double another is worthwhile
        // (§3.2): u(0.5) + u(2.5) > u(1) + u(1) in Mbps units.
        let obj = Objective::default();
        let before = obj.utility(1e6, 0.1) + obj.utility(1e6, 0.1);
        let after = obj.utility(0.5e6, 0.1) + obj.utility(2.5e6, 0.1);
        assert!(after > before);
    }

    #[test]
    fn never_on_flow_excluded() {
        let obj = Objective::default();
        assert!(obj.flow_utility(&outcome(0.0, 0.0, 0.0)).is_none());
        assert!(obj.flow_utility(&outcome(1e6, 0.1, 5.0)).is_some());
    }

    #[test]
    fn starved_flow_gets_floor_not_infinity() {
        let obj = Objective::default();
        let mut o = outcome(0.0, 0.0, 5.0);
        o.packets_delivered = 0;
        let u = obj.flow_utility(&o).unwrap();
        assert!(u.is_finite());
        assert!(u < obj.utility(1e6, 0.1), "starvation is penalized");
    }

    #[test]
    fn normalized_zero_at_ideal_point() {
        let obj = Objective::default();
        let z = obj.normalized_utility(5e6, 0.075, 5e6, 0.075);
        assert!(z.abs() < 1e-12);
        let worse = obj.normalized_utility(2.5e6, 0.150, 5e6, 0.075);
        assert!((worse + 2.0).abs() < 1e-12, "half tpt, double delay = -2");
    }

    #[test]
    fn delta_presets() {
        assert_eq!(Objective::throughput_sensitive().delta, 0.1);
        assert_eq!(Objective::delay_sensitive().delta, 10.0);
    }

    #[test]
    fn total_skips_never_on() {
        let obj = Objective::default();
        let flows = vec![outcome(1e6, 0.1, 5.0), outcome(0.0, 0.0, 0.0)];
        let solo = obj.flow_utility(&flows[0]).unwrap();
        assert!((obj.total_utility(&flows) - solo).abs() < 1e-12);
    }
}
