//! The Remy protocol-design loop (§3.3 of the paper, following the
//! treatment of Winstein & Balakrishnan, *TCP ex Machina*, SIGCOMM 2013).
//!
//! Starting from a single whisker prescribing a default action, the
//! optimizer alternates two moves:
//!
//! 1. **Action improvement** — for each whisker (most-used first), hill
//!    climb the action's three coordinates against the mean objective on
//!    a fixed batch of sampled scenarios (common random numbers keep the
//!    comparison fair), with step sizes sweeping coarse → fine.
//! 2. **Structure refinement** — when no action improves, split the
//!    most-used whisker at the mean observed memory point along its most
//!    informative dimension, letting the mapping specialize.
//!
//! Fresh scenario draws between rounds keep the protocol from overfitting
//! one batch. [`Optimizer::co_optimize`] alternates optimization across
//! several tree slots for the sender-diversity experiment (§4.6).

use crate::eval::{draw_scenarios, EvalConfig, EvalPool, EvalResult};
use crate::scenario::ScenarioSpec;
use protocols::whisker::{LeafId, SIGNAL_MAX};
use protocols::{SignalMask, WhiskerTree};
use serde::{Deserialize, Serialize};

/// Minimum utility gain for a candidate to be adopted.
const IMPROVEMENT_EPS: f64 = 1e-4;

/// Training budget and knobs.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OptimizerConfig {
    /// Scenario draws per spec per evaluation batch.
    pub draws_per_eval: usize,
    /// Simulated seconds per scenario.
    pub sim_duration_s: f64,
    /// Outer rounds (each = improve all whiskers, then maybe split).
    pub rounds: usize,
    /// Stop splitting once the tree has this many whiskers.
    pub max_leaves: usize,
    /// Hill-climb step scales, coarse to fine.
    pub scales: Vec<f64>,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    pub seed: u64,
    /// Per-simulation event cap.
    pub event_budget: u64,
    /// Per-slot signal-knockout masks (§3.4); empty = all signals.
    pub masks: Vec<SignalMask>,
    /// Event-scheduler backend for evaluation simulations (never changes
    /// results; see [`EvalConfig::scheduler`]).
    #[serde(default)]
    pub scheduler: netsim::event::SchedulerKind,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            draws_per_eval: 8,
            sim_duration_s: 12.0,
            rounds: 12,
            max_leaves: 16,
            scales: vec![4.0, 1.0],
            threads: 0,
            seed: 0xC0FFEE,
            event_budget: 30_000_000,
            masks: Vec::new(),
            scheduler: netsim::event::SchedulerKind::default(),
            verbose: false,
        }
    }
}

impl OptimizerConfig {
    /// A small budget for unit tests and smoke runs.
    pub fn smoke() -> Self {
        OptimizerConfig {
            draws_per_eval: 3,
            sim_duration_s: 4.0,
            rounds: 2,
            max_leaves: 2,
            scales: vec![4.0],
            event_budget: 3_000_000,
            ..Default::default()
        }
    }

    fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            sim_duration_s: self.sim_duration_s,
            event_budget: self.event_budget,
            threads: self.threads,
            masks: self.masks.clone(),
            scheduler: self.scheduler,
        }
    }
}

/// A trained protocol, ready to save or execute.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainedProtocol {
    pub name: String,
    pub tree: WhiskerTree,
    /// Mean training utility at the end of optimization.
    pub score: f64,
    /// Human-readable description of the training model.
    pub description: String,
}

/// The protocol-design tool.
pub struct Optimizer {
    specs: Vec<ScenarioSpec>,
    cfg: OptimizerConfig,
    /// Persistent evaluation workers, created once per optimizer and
    /// reused by every candidate evaluation (`improve_leaf` runs
    /// thousands of them per training run). Shared (`Arc`) so several
    /// trainers can feed one pool (see [`crate::trainer`]).
    pool: std::sync::Arc<EvalPool>,
}

impl Optimizer {
    pub fn new(specs: Vec<ScenarioSpec>, cfg: OptimizerConfig) -> Self {
        let pool = std::sync::Arc::new(EvalPool::new(cfg.threads));
        Self::with_pool(specs, cfg, pool)
    }

    /// Build an optimizer that evaluates on an existing shared pool
    /// instead of spawning its own workers. Results are identical either
    /// way — the pool only carries threads, never randomness.
    pub fn with_pool(
        specs: Vec<ScenarioSpec>,
        cfg: OptimizerConfig,
        pool: std::sync::Arc<EvalPool>,
    ) -> Self {
        assert!(
            !specs.is_empty(),
            "optimizer needs at least one training spec"
        );
        Optimizer { specs, cfg, pool }
    }

    pub fn config(&self) -> &OptimizerConfig {
        &self.cfg
    }

    /// The evaluation pool this optimizer feeds (sized from
    /// `OptimizerConfig::threads`).
    pub fn pool(&self) -> &EvalPool {
        &self.pool
    }

    /// Design a protocol from scratch for these training scenarios.
    pub fn optimize(&self, name: impl Into<String>) -> TrainedProtocol {
        let tree = WhiskerTree::default_tree();
        self.optimize_from(tree, name)
    }

    /// Continue optimizing an existing tree (warm start).
    pub fn optimize_from(&self, tree: WhiskerTree, name: impl Into<String>) -> TrainedProtocol {
        let mut trees = vec![tree];
        let score = self.optimize_slot(&mut trees, 0);
        TrainedProtocol {
            name: name.into(),
            tree: trees.pop().expect("one slot"),
            score,
            description: format!("{} training spec(s), cfg={:?}", self.specs.len(), self.cfg),
        }
    }

    /// Co-optimize several protocols that will share networks (the
    /// sender-diversity experiment): alternately optimize each slot with
    /// the others frozen.
    pub fn co_optimize(
        &self,
        mut trees: Vec<WhiskerTree>,
        alternations: usize,
        names: &[&str],
    ) -> Vec<TrainedProtocol> {
        assert_eq!(trees.len(), names.len());
        let mut scores = vec![f64::NEG_INFINITY; trees.len()];
        for alt in 0..alternations {
            for (slot, score) in scores.iter_mut().enumerate() {
                if self.cfg.verbose {
                    eprintln!("[remy] co-optimize alternation {alt}, slot {slot}");
                }
                *score = self.optimize_slot(&mut trees, slot);
            }
        }
        trees
            .into_iter()
            .zip(names)
            .zip(scores)
            .map(|((tree, name), score)| TrainedProtocol {
                name: name.to_string(),
                tree,
                score,
                description: format!(
                    "co-optimized ({alternations} alternations), cfg={:?}",
                    self.cfg
                ),
            })
            .collect()
    }

    /// The core loop, improving `trees[slot]` in place. Returns the final
    /// training score.
    fn optimize_slot(&self, trees: &mut [WhiskerTree], slot: usize) -> f64 {
        let cfg = self.cfg.eval_config();
        let mut last_score = f64::NEG_INFINITY;
        for round in 0..self.cfg.rounds {
            // Fresh draws each round; candidates within the round share
            // them (as an Arc, so pooled evaluations never copy the batch).
            let scenarios: std::sync::Arc<[crate::scenario::ConcreteScenario]> = draw_scenarios(
                &self.specs,
                self.cfg.draws_per_eval,
                self.cfg.seed ^ ((round as u64 + 1) * 0x9E37),
            )
            .into();
            let base: EvalResult = self.pool.evaluate_shared(&scenarios, trees, &cfg);
            let mut score = base.mean_utility;

            // Whiskers ordered by usage, busiest first.
            let mut order: Vec<(usize, u64)> = base.usage[slot]
                .leaves()
                .iter()
                .enumerate()
                .map(|(i, w)| (i, w.use_count))
                .collect();
            order.sort_by_key(|&(_, uses)| std::cmp::Reverse(uses));

            for (leaf_idx, uses) in order {
                if uses == 0 {
                    continue;
                }
                self.improve_leaf(trees, slot, LeafId(leaf_idx), &scenarios, &mut score, &cfg);
            }

            if self.cfg.verbose {
                eprintln!(
                    "[remy] round {round}: score {:.4} -> {:.4}, {} leaves",
                    base.mean_utility,
                    score,
                    trees[slot].num_leaves()
                );
            }
            last_score = score;

            // Structure refinement at the end of every improvement round
            // (Remy's improve-then-split cycle): split the busiest whisker
            // so the mapping can specialize, until the leaf budget is
            // spent. Fresh draws make round-over-round score deltas noisy,
            // so gating the split on "no improvement" would starve the
            // tree of structure.
            if trees[slot].num_leaves() < self.cfg.max_leaves && round + 1 < self.cfg.rounds {
                // Re-evaluate usage on the final actions of this round.
                let usage = self.pool.evaluate_shared(&scenarios, trees, &cfg).usage;
                let Some(target) = usage[slot].most_used_leaf() else {
                    continue;
                };
                let dim = split_dimension(&usage[slot], target);
                let tree = &mut trees[slot];
                // Copy observation stats into the live tree so the split
                // lands at the observed mean.
                tree.reset_counts();
                tree.absorb_counts(&usage[slot]);
                if !tree.split_leaf(target, dim) {
                    continue;
                }
                tree.reset_counts();
                if self.cfg.verbose {
                    eprintln!(
                        "[remy] split leaf {:?} on dim {dim}; now {} leaves",
                        target,
                        trees[slot].num_leaves()
                    );
                }
            }
        }
        last_score
    }

    /// Greedy coordinate hill-climb of one whisker's action. Returns true
    /// if the action changed.
    fn improve_leaf(
        &self,
        trees: &mut [WhiskerTree],
        slot: usize,
        leaf: LeafId,
        scenarios: &std::sync::Arc<[crate::scenario::ConcreteScenario]>,
        score: &mut f64,
        cfg: &EvalConfig,
    ) -> bool {
        let mut changed = false;
        for &scale in &self.cfg.scales {
            loop {
                let current = match trees[slot].leaf_by_id(leaf) {
                    Some(w) => w.action,
                    None => return changed,
                };
                let mut best = *score;
                let mut best_action = None;
                for cand in current.neighbors(scale) {
                    trees[slot].set_leaf_action(leaf, cand);
                    let r = self.pool.evaluate_shared(scenarios, trees, cfg);
                    if r.mean_utility > best + IMPROVEMENT_EPS {
                        best = r.mean_utility;
                        best_action = Some(cand);
                    }
                }
                match best_action {
                    Some(a) => {
                        trees[slot].set_leaf_action(leaf, a);
                        *score = best;
                        changed = true;
                    }
                    None => {
                        trees[slot].set_leaf_action(leaf, current);
                        break;
                    }
                }
            }
        }
        changed
    }
}

/// Choose the dimension to split a whisker along: the enabled signal with
/// the widest domain relative to its full scale (the memory axis where the
/// whisker is least specialized).
fn split_dimension(tree: &WhiskerTree, leaf: LeafId) -> usize {
    let Some(w) = tree.leaf_by_id(leaf) else {
        return 0;
    };
    let mut best_dim = 0;
    let mut best_width = -1.0;
    for (d, &max) in SIGNAL_MAX.iter().enumerate() {
        let rel = w.domain.width(d) / max;
        if rel > best_width {
            best_width = rel;
            best_dim = d;
        }
    }
    best_dim
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_scenarios;
    use protocols::Action;

    #[test]
    fn smoke_optimization_improves_over_bad_start() {
        // Start from a deliberately poor action; even a tiny budget must
        // find something better on the calibration network.
        let specs = vec![ScenarioSpec::calibration()];
        let mut cfg = OptimizerConfig::smoke();
        cfg.seed = 1;
        let opt = Optimizer::new(specs.clone(), cfg.clone());

        let bad = WhiskerTree::uniform(Action::new(1.0, 0.0, 500.0)); // ~3 pkt/s pacing
        let trained = opt.optimize_from(bad.clone(), "smoke");

        // Score the two trees on identical fresh scenarios.
        let scenarios = draw_scenarios(&specs, 4, 999);
        let ecfg = EvalConfig {
            sim_duration_s: 4.0,
            event_budget: 3_000_000,
            ..Default::default()
        };
        let u_bad = evaluate_scenarios(&scenarios, std::slice::from_ref(&bad), &ecfg).mean_utility;
        let u_trained =
            evaluate_scenarios(&scenarios, std::slice::from_ref(&trained.tree), &ecfg).mean_utility;
        assert!(
            u_trained > u_bad,
            "training must help: bad={u_bad:.3} trained={u_trained:.3}"
        );
    }

    #[test]
    fn optimization_is_deterministic() {
        let specs = vec![ScenarioSpec::calibration()];
        let mut cfg = OptimizerConfig::smoke();
        cfg.threads = 2;
        let a = Optimizer::new(specs.clone(), cfg.clone()).optimize("a");
        let b = Optimizer::new(specs, cfg).optimize("b");
        assert_eq!(a.tree, b.tree, "same seed and budget, same protocol");
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn threads_knob_is_honored_and_equivalent() {
        // Regression for the dead-knob bug: `OptimizerConfig::threads`
        // must size the optimizer's persistent pool, and training with
        // threads: 1 vs threads: N must produce bit-identical protocols.
        let specs = vec![ScenarioSpec::calibration()];
        let mut cfg = OptimizerConfig::smoke();
        cfg.seed = 5;
        cfg.threads = 1;
        let serial_opt = Optimizer::new(specs.clone(), cfg.clone());
        assert_eq!(serial_opt.pool().size(), 1);
        let serial = serial_opt.optimize("serial");

        cfg.threads = 4;
        let parallel_opt = Optimizer::new(specs, cfg);
        assert_eq!(parallel_opt.pool().size(), 4);
        let parallel = parallel_opt.optimize("parallel");

        assert_eq!(
            serial.tree, parallel.tree,
            "thread count changed the protocol"
        );
        assert_eq!(serial.score, parallel.score);
    }

    #[test]
    fn split_dimension_prefers_widest_axis() {
        let mut tree = WhiskerTree::default_tree();
        // Shrink dim 0 by splitting on it; the next split should prefer
        // another (still full-width) axis.
        tree.split_leaf(LeafId(0), 0);
        let d = split_dimension(&tree, LeafId(0));
        assert_ne!(d, 0, "dim 0 is now half-width, pick a full-width axis");
    }

    #[test]
    fn co_optimize_returns_one_protocol_per_slot() {
        let specs = vec![ScenarioSpec::diversity()];
        let mut cfg = OptimizerConfig::smoke();
        cfg.rounds = 1;
        cfg.draws_per_eval = 2;
        let opt = Optimizer::new(specs, cfg);
        let out = opt.co_optimize(
            vec![WhiskerTree::default_tree(), WhiskerTree::default_tree()],
            1,
            &["tpt", "del"],
        );
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].name, "tpt");
        assert_eq!(out[1].name, "del");
        assert!(out.iter().all(|p| p.score.is_finite()));
    }
}
