//! Parallel evaluation of candidate protocols on training scenarios.
//!
//! The optimizer's inner loop: simulate a whisker tree (or several, for
//! co-optimization) on a batch of sampled scenarios and average the
//! objective. Batches evaluate in parallel across threads (the paper's
//! Remy runs used an 80-core machine; we use crossbeam scoped threads).
//! Candidate comparisons reuse the *same* scenario draws — common random
//! numbers — so action improvements are judged on identical workloads.

use crate::objective::Objective;
use crate::scenario::{ConcreteScenario, Role, ScenarioSpec};
use netsim::prelude::*;
use netsim::transport::CongestionControl;
use protocols::{NewReno, SignalMask, TaoCc, WhiskerTree};

/// Evaluation knobs.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Simulated seconds per scenario.
    pub sim_duration_s: f64,
    /// Hard cap on events per simulation (protects against degenerate
    /// candidate actions with near-zero pacing).
    pub event_budget: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Per-slot signal-knockout masks (§3.4). Empty = all signals enabled
    /// for every slot.
    pub masks: Vec<SignalMask>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            sim_duration_s: 12.0,
            event_budget: 40_000_000,
            threads: 0,
            masks: Vec::new(),
        }
    }
}

impl EvalConfig {
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of evaluating trees on a scenario batch.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Mean (over scenarios) of the mean per-Tao-flow utility.
    pub mean_utility: f64,
    /// Per-scenario utilities, in input order.
    pub per_scenario: Vec<f64>,
    /// Trees carrying merged whisker-usage counts from all runs.
    pub usage: Vec<WhiskerTree>,
}

/// Draw `draws` concrete scenarios from each spec, deterministically in
/// `seed`.
pub fn draw_scenarios(specs: &[ScenarioSpec], draws: usize, seed: u64) -> Vec<ConcreteScenario> {
    let mut out = Vec::with_capacity(specs.len() * draws);
    for (si, spec) in specs.iter().enumerate() {
        for d in 0..draws {
            out.push(spec.sample(seed ^ ((si as u64) << 32) ^ d as u64));
        }
    }
    out
}

/// Instantiate the protocol stack for a scenario.
pub fn build_protocols(
    scenario: &ConcreteScenario,
    trees: &[WhiskerTree],
    masks: &[SignalMask],
) -> Vec<Box<dyn CongestionControl>> {
    scenario
        .roles
        .iter()
        .map(|role| -> Box<dyn CongestionControl> {
            match *role {
                Role::Tao { slot } => {
                    let mask = masks.get(slot).copied().unwrap_or_default();
                    Box::new(TaoCc::with_mask(
                        trees[slot].clone(),
                        mask,
                        format!("tao-slot{slot}"),
                    ))
                }
                Role::Aimd => Box::new(NewReno::new()),
            }
        })
        .collect()
}

/// Simulate one scenario; returns the mean utility across Tao flows and
/// the per-slot usage-annotated trees.
pub fn run_scenario(
    scenario: &ConcreteScenario,
    trees: &[WhiskerTree],
    cfg: &EvalConfig,
) -> (f64, Vec<WhiskerTree>) {
    let protocols = build_protocols(scenario, trees, &cfg.masks);
    let mut sim = Simulation::new(&scenario.net, protocols, scenario.seed);
    sim.set_event_budget(cfg.event_budget);
    let outcome = sim.run(SimDuration::from_secs_f64(cfg.sim_duration_s));

    // Objective: mean utility of the Tao-role flows that had offered load
    // (AIMD cross-traffic is environment, not objective).
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, role) in scenario.roles.iter().enumerate() {
        if matches!(role, Role::Tao { .. }) {
            let obj = Objective::new(scenario.deltas[i]);
            if let Some(u) = obj.flow_utility(&outcome.flows[i]) {
                total += u;
                counted += 1;
            }
        }
    }
    let utility = if counted == 0 {
        // No Tao flow ever turned on in this draw: neutral evidence.
        0.0
    } else {
        total / counted as f64
    };

    // Pull whisker-usage statistics back out of the Tao executors.
    let mut usage: Vec<WhiskerTree> = trees
        .iter()
        .map(|t| {
            let mut c = t.clone();
            c.reset_counts();
            c
        })
        .collect();
    for (i, cc) in sim.into_protocols().into_iter().enumerate() {
        if let Role::Tao { slot } = scenario.roles[i] {
            if let Some(any) = cc.as_any() {
                if let Some(tao) = any.downcast_ref::<TaoCc>() {
                    usage[slot].absorb_counts(tao.tree());
                }
            }
        }
    }
    (utility, usage)
}

/// Evaluate `trees` on a batch of scenarios, in parallel.
pub fn evaluate_scenarios(
    scenarios: &[ConcreteScenario],
    trees: &[WhiskerTree],
    cfg: &EvalConfig,
) -> EvalResult {
    assert!(!scenarios.is_empty(), "empty scenario batch");
    let threads = cfg.effective_threads().min(scenarios.len()).max(1);

    let mut per_scenario = vec![0.0; scenarios.len()];
    let mut usage: Vec<WhiskerTree> = trees
        .iter()
        .map(|t| {
            let mut c = t.clone();
            c.reset_counts();
            c
        })
        .collect();

    if threads == 1 {
        for (i, sc) in scenarios.iter().enumerate() {
            let (u, use_trees) = run_scenario(sc, trees, cfg);
            per_scenario[i] = u;
            for (slot, ut) in use_trees.iter().enumerate() {
                usage[slot].absorb_counts(ut);
            }
        }
    } else {
        let chunk = scenarios.len().div_ceil(threads);
        let results: Vec<Vec<(usize, f64, Vec<WhiskerTree>)>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = scenarios
                .chunks(chunk)
                .enumerate()
                .map(|(ci, batch)| {
                    s.spawn(move |_| {
                        batch
                            .iter()
                            .enumerate()
                            .map(|(j, sc)| {
                                let (u, ut) = run_scenario(sc, trees, cfg);
                                (ci * chunk + j, u, ut)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .expect("evaluation threads panicked");
        for batch in results {
            for (idx, u, use_trees) in batch {
                per_scenario[idx] = u;
                for (slot, ut) in use_trees.iter().enumerate() {
                    usage[slot].absorb_counts(ut);
                }
            }
        }
    }

    let mean_utility = per_scenario.iter().sum::<f64>() / per_scenario.len() as f64;
    EvalResult {
        mean_utility,
        per_scenario,
        usage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::Action;

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            sim_duration_s: 4.0,
            event_budget: 2_000_000,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn draws_are_deterministic_and_distinct() {
        let specs = [ScenarioSpec::link_speed_range(1.0, 100.0)];
        let a = draw_scenarios(&specs, 5, 9);
        let b = draw_scenarios(&specs, 5, 9);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.net, y.net);
            assert_eq!(x.seed, y.seed);
        }
        let rates: std::collections::HashSet<u64> = a
            .iter()
            .map(|s| s.net.links[0].rate_bps.to_bits())
            .collect();
        assert!(rates.len() > 1, "draws explore the range");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 3, 11);
        let tree = WhiskerTree::default_tree();
        let cfg = quick_cfg();
        let r1 = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg);
        let r2 = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg);
        assert_eq!(r1.per_scenario, r2.per_scenario);
        assert_eq!(r1.mean_utility, r2.mean_utility);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 4, 3);
        let tree = WhiskerTree::default_tree();
        let serial = evaluate_scenarios(
            &scenarios,
            std::slice::from_ref(&tree),
            &EvalConfig {
                threads: 1,
                ..quick_cfg()
            },
        );
        let parallel = evaluate_scenarios(
            &scenarios,
            std::slice::from_ref(&tree),
            &EvalConfig {
                threads: 4,
                ..quick_cfg()
            },
        );
        assert_eq!(serial.per_scenario, parallel.per_scenario);
        assert_eq!(serial.usage, parallel.usage);
    }

    #[test]
    fn usage_counts_accumulate() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 2, 5);
        let tree = WhiskerTree::default_tree();
        let r = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &quick_cfg());
        assert!(
            r.usage[0].total_uses() > 0,
            "acks must hit the tree during evaluation"
        );
    }

    #[test]
    fn better_action_scores_higher_on_same_draws() {
        // On the calibration network, a sane growth action must beat a
        // pathologically conservative one (tiny fixed window, huge pacing).
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 4, 21);
        let cfg = quick_cfg();
        let sane = WhiskerTree::uniform(Action::new(1.0, 1.0, 0.25));
        let starved = WhiskerTree::uniform(Action::new(0.0, 0.0, 900.0));
        let r_sane = evaluate_scenarios(&scenarios, &[sane], &cfg);
        let r_starved = evaluate_scenarios(&scenarios, &[starved], &cfg);
        assert!(
            r_sane.mean_utility > r_starved.mean_utility,
            "sane={} starved={}",
            r_sane.mean_utility,
            r_starved.mean_utility
        );
    }

    #[test]
    fn aimd_roles_run_but_do_not_score() {
        let specs = [ScenarioSpec::tcp_aware()];
        let scenarios = draw_scenarios(&specs, 6, 2);
        // find a draw where the second sender is AIMD
        let mixed = scenarios
            .iter()
            .find(|s| s.roles.contains(&Role::Aimd))
            .expect("p=0.5 over 6 draws");
        let tree = WhiskerTree::default_tree();
        let (u, usage) = run_scenario(mixed, std::slice::from_ref(&tree), &quick_cfg());
        assert!(u.is_finite());
        assert!(usage[0].total_uses() > 0, "the Tao sender used its tree");
    }
}
