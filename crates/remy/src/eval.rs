//! Parallel evaluation of candidate protocols on training scenarios.
//!
//! The optimizer's inner loop: simulate a whisker tree (or several, for
//! co-optimization) on a batch of sampled scenarios and average the
//! objective. Candidate comparisons reuse the *same* scenario draws —
//! common random numbers — so action improvements are judged on identical
//! workloads.
//!
//! # Performance architecture
//!
//! This is the hottest code in the repo: `improve_leaf` evaluates every
//! candidate action × scale × hill-climb step on the full scenario batch,
//! thousands of evaluations per training run. Three design decisions keep
//! the constant factors down:
//!
//! 1. **Compile once, share everywhere.** Each call compiles the whisker
//!    trees into [`CompiledTree`] arenas behind `Arc`s; every sender in
//!    every scenario walks the same compilation and accumulates usage in
//!    its own flat [`UsageCounts`] buffer. No per-scenario tree clones,
//!    no recursive boxed-node walks on the per-ack path.
//! 2. **Persistent pool, work-stealing queue.** [`EvalPool`] spawns its
//!    workers once (per [`Optimizer`](crate::Optimizer) run, or once per
//!    process for the shared [`EvalPool::global`] pool) and feeds them
//!    through a channel; scenarios are claimed with an atomic index, so
//!    skewed scenario costs never idle a core and no threads are spawned
//!    or joined per candidate evaluation.
//! 3. **Deterministic merge.** Per-scenario results land in index-order
//!    slots and are folded on the calling thread in input order, so the
//!    result is bit-identical for any worker count — `threads: 1` and
//!    `threads: N` produce the same utilities *and* the same usage trees.

use crate::objective::Objective;
use crate::scenario::{ConcreteScenario, Role, ScenarioSpec};
use netsim::prelude::*;
use netsim::transport::CongestionControl;
use protocols::{CompiledTree, NewReno, SignalMask, TaoCc, UsageCounts, WhiskerTree};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Evaluation knobs.
#[derive(Clone, Debug)]
pub struct EvalConfig {
    /// Simulated seconds per scenario.
    pub sim_duration_s: f64,
    /// Hard cap on events per simulation (protects against degenerate
    /// candidate actions with near-zero pacing).
    pub event_budget: u64,
    /// Worker threads (0 = all available cores).
    pub threads: usize,
    /// Per-slot signal-knockout masks (§3.4). Empty = all signals enabled
    /// for every slot.
    pub masks: Vec<SignalMask>,
    /// Event-scheduler backend for every simulation in the batch. Both
    /// backends are order-equivalent, so this never changes results —
    /// only per-event cost (calendar is the fast default).
    pub scheduler: SchedulerKind,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            sim_duration_s: 12.0,
            event_budget: 40_000_000,
            threads: 0,
            masks: Vec::new(),
            scheduler: SchedulerKind::default(),
        }
    }
}

impl EvalConfig {
    pub fn effective_threads(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Result of evaluating trees on a scenario batch.
#[derive(Clone, Debug)]
pub struct EvalResult {
    /// Mean (over scenarios) of the mean per-Tao-flow utility.
    pub mean_utility: f64,
    /// Per-scenario utilities, in input order.
    pub per_scenario: Vec<f64>,
    /// Trees carrying merged whisker-usage counts from all runs.
    pub usage: Vec<WhiskerTree>,
}

/// Draw `draws` concrete scenarios from each spec, deterministically in
/// `seed`.
pub fn draw_scenarios(specs: &[ScenarioSpec], draws: usize, seed: u64) -> Vec<ConcreteScenario> {
    let mut out = Vec::with_capacity(specs.len() * draws);
    for (si, spec) in specs.iter().enumerate() {
        for d in 0..draws {
            out.push(spec.sample(seed ^ ((si as u64) << 32) ^ d as u64));
        }
    }
    out
}

/// Instantiate the protocol stack for a scenario over pre-compiled trees.
pub fn build_protocols(
    scenario: &ConcreteScenario,
    trees: &[Arc<CompiledTree>],
    masks: &[SignalMask],
) -> Vec<Box<dyn CongestionControl>> {
    scenario
        .roles
        .iter()
        .map(|role| -> Box<dyn CongestionControl> {
            match *role {
                Role::Tao { slot } => {
                    let mask = masks.get(slot).copied().unwrap_or_default();
                    Box::new(TaoCc::from_compiled(
                        trees[slot].clone(),
                        mask,
                        format!("tao-slot{slot}"),
                    ))
                }
                Role::Aimd => Box::new(NewReno::new()),
            }
        })
        .collect()
}

/// Simulate one scenario against compiled trees; returns the mean utility
/// across Tao flows and the flat per-slot whisker-usage counters.
pub fn run_scenario_compiled(
    scenario: &ConcreteScenario,
    trees: &[Arc<CompiledTree>],
    cfg: &EvalConfig,
) -> (f64, Vec<UsageCounts>) {
    let protocols = build_protocols(scenario, trees, &cfg.masks);
    let mut sim =
        Simulation::with_scheduler(&scenario.net, protocols, scenario.seed, cfg.scheduler);
    sim.set_event_budget(cfg.event_budget);
    let outcome = sim.run(SimDuration::from_secs_f64(cfg.sim_duration_s));

    // Objective: mean utility of the Tao-role flows that had offered load
    // (AIMD cross-traffic is environment, not objective).
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, role) in scenario.roles.iter().enumerate() {
        if matches!(role, Role::Tao { .. }) {
            let obj = Objective::new(scenario.deltas[i]);
            if let Some(u) = obj.flow_utility(&outcome.flows[i]) {
                total += u;
                counted += 1;
            }
        }
    }
    let utility = if counted == 0 {
        // No Tao flow ever turned on in this draw: neutral evidence.
        0.0
    } else {
        total / counted as f64
    };

    // Pull whisker-usage counters back out of the Tao executors.
    let mut usage: Vec<UsageCounts> = trees
        .iter()
        .map(|t| UsageCounts::new(t.num_leaves()))
        .collect();
    for (i, cc) in sim.into_protocols().into_iter().enumerate() {
        if let Role::Tao { slot } = scenario.roles[i] {
            if let Some(any) = cc.as_any() {
                if let Some(tao) = any.downcast_ref::<TaoCc>() {
                    usage[slot].merge(tao.usage());
                }
            }
        }
    }
    (utility, usage)
}

/// Simulate one scenario from editing-form trees (compiles them first);
/// returns the mean Tao utility and usage-annotated tree clones. Prefer
/// [`run_scenario_compiled`] in loops — this convenience recompiles per
/// call.
pub fn run_scenario(
    scenario: &ConcreteScenario,
    trees: &[WhiskerTree],
    cfg: &EvalConfig,
) -> (f64, Vec<WhiskerTree>) {
    let compiled: Vec<Arc<CompiledTree>> = trees.iter().map(CompiledTree::compile_shared).collect();
    let (utility, counts) = run_scenario_compiled(scenario, &compiled, cfg);
    let usage = trees
        .iter()
        .zip(&counts)
        .map(|(t, c)| {
            let mut annotated = t.clone();
            annotated.reset_counts();
            annotated.absorb_usage(c);
            annotated
        })
        .collect();
    (utility, usage)
}

/// Utility and per-slot usage counters from one scenario run.
type ScenarioOutput = (f64, Vec<UsageCounts>);

/// One evaluation batch shared with pool workers.
struct JobState {
    scenarios: Arc<[ConcreteScenario]>,
    trees: Vec<Arc<CompiledTree>>,
    cfg: EvalConfig,
    /// Work-stealing cursor: next unclaimed scenario index.
    next: AtomicUsize,
    /// Per-scenario result slots (index-aligned with `scenarios`).
    results: Vec<Mutex<Option<ScenarioOutput>>>,
    /// Count of scenarios still running, with completion signaling.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload from any thread's scenario run; re-raised on
    /// the calling thread so a crash can't deadlock the wait below.
    panic: Mutex<Option<String>>,
}

impl JobState {
    /// Claim-and-run loop shared by workers and the calling thread.
    fn work(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.scenarios.len() {
                return;
            }
            // A panicking scenario must still count down `remaining`
            // (and keep the worker alive), or `evaluate` would wait on
            // the condvar forever and the pool would leak capacity.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_scenario_compiled(&self.scenarios[i], &self.trees, &self.cfg)
            }));
            match outcome {
                Ok(res) => {
                    *self.results[i].lock().expect("result slot poisoned") = Some(res);
                }
                Err(payload) => {
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "scenario evaluation panicked".to_string());
                    self.panic
                        .lock()
                        .expect("panic slot poisoned")
                        .get_or_insert(msg);
                }
            }
            let mut rem = self.remaining.lock().expect("remaining poisoned");
            *rem -= 1;
            if *rem == 0 {
                self.done.notify_all();
            }
        }
    }
}

type Job = Arc<JobState>;

/// Persistent evaluation worker pool.
///
/// Workers are spawned once and fed jobs through a channel; each job's
/// scenarios are claimed via an atomic cursor (work stealing), so skewed
/// scenario costs don't idle threads and nothing is spawned per
/// evaluation. The calling thread always participates, so a pool sized
/// `threads` uses `threads - 1` spawned workers, and `threads == 1` is
/// pure serial execution.
pub struct EvalPool {
    injector: Mutex<Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    size: usize,
}

impl EvalPool {
    /// Pool sized for `threads` concurrent evaluators (0 = all cores).
    pub fn new(threads: usize) -> Self {
        let size = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            threads
        };
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..size.saturating_sub(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("remy-eval-{i}"))
                    .spawn(move || Self::worker_loop(rx))
                    .expect("spawn eval worker")
            })
            .collect();
        EvalPool {
            injector: Mutex::new(tx),
            handles,
            size,
        }
    }

    fn worker_loop(rx: Arc<Mutex<Receiver<Job>>>) {
        loop {
            let job = match rx.lock() {
                Ok(guard) => guard.recv(),
                Err(_) => return,
            };
            match job {
                Ok(job) => job.work(),
                Err(_) => return, // pool dropped
            }
        }
    }

    /// Total evaluator slots (spawned workers + the calling thread).
    pub fn size(&self) -> usize {
        self.size
    }

    /// The process-wide shared pool (sized to all cores), used by the free
    /// [`evaluate_scenarios`] function.
    pub fn global() -> &'static EvalPool {
        static POOL: OnceLock<EvalPool> = OnceLock::new();
        POOL.get_or_init(|| EvalPool::new(0))
    }

    /// Evaluate `trees` on a borrowed scenario batch. Convenience over
    /// [`evaluate_shared`](Self::evaluate_shared): when helpers kick in,
    /// the batch is copied once into an `Arc`. Callers that reuse one
    /// batch across many evaluations (the optimizer's hill climb) should
    /// hold the `Arc` themselves and call `evaluate_shared`.
    pub fn evaluate(
        &self,
        scenarios: &[ConcreteScenario],
        trees: &[WhiskerTree],
        cfg: &EvalConfig,
    ) -> EvalResult {
        assert!(!scenarios.is_empty(), "empty scenario batch");
        if self.helpers_for(scenarios.len(), cfg) == 0 {
            return self.evaluate_inner(scenarios, None, trees, cfg);
        }
        let shared: Arc<[ConcreteScenario]> = scenarios.to_vec().into();
        self.evaluate_shared(&shared, trees, cfg)
    }

    /// Evaluate each tree *independently* (as a single-slot population
    /// member, not co-optimized slots) on one shared common-random-number
    /// batch; returns mean utilities in input order. The population
    /// trainer's fitness pass: each genome's scenarios are claimed by
    /// atomic index and folded deterministically, so the fitness vector
    /// is bit-identical for any thread count.
    pub fn evaluate_each(
        &self,
        scenarios: &Arc<[ConcreteScenario]>,
        trees: &[WhiskerTree],
        cfg: &EvalConfig,
    ) -> Vec<f64> {
        trees
            .iter()
            .map(|t| {
                self.evaluate_shared(scenarios, std::slice::from_ref(t), cfg)
                    .mean_utility
            })
            .collect()
    }

    /// Evaluate `trees` on a shared scenario batch without copying it. At
    /// most `cfg.effective_threads()` threads touch the batch regardless
    /// of pool size; results are bit-identical for any thread count.
    pub fn evaluate_shared(
        &self,
        scenarios: &Arc<[ConcreteScenario]>,
        trees: &[WhiskerTree],
        cfg: &EvalConfig,
    ) -> EvalResult {
        assert!(!scenarios.is_empty(), "empty scenario batch");
        self.evaluate_inner(scenarios, Some(scenarios), trees, cfg)
    }

    /// Helpers beyond the calling thread: capped by the config's thread
    /// knob, the pool size, and the batch length.
    fn helpers_for(&self, batch_len: usize, cfg: &EvalConfig) -> usize {
        cfg.effective_threads()
            .min(self.size)
            .min(batch_len)
            .saturating_sub(1)
    }

    fn evaluate_inner(
        &self,
        scenarios: &[ConcreteScenario],
        shared: Option<&Arc<[ConcreteScenario]>>,
        trees: &[WhiskerTree],
        cfg: &EvalConfig,
    ) -> EvalResult {
        let compiled: Vec<Arc<CompiledTree>> =
            trees.iter().map(CompiledTree::compile_shared).collect();
        let helpers = self.helpers_for(scenarios.len(), cfg);

        let (per_scenario, slot_usage) = if helpers == 0 {
            // Serial fast path: no job allocation, no scenario clones.
            let mut per_scenario = Vec::with_capacity(scenarios.len());
            let mut slot_usage: Vec<UsageCounts> = compiled
                .iter()
                .map(|t| UsageCounts::new(t.num_leaves()))
                .collect();
            for sc in scenarios {
                let (u, counts) = run_scenario_compiled(sc, &compiled, cfg);
                per_scenario.push(u);
                for (slot, c) in counts.iter().enumerate() {
                    slot_usage[slot].merge(c);
                }
            }
            (per_scenario, slot_usage)
        } else {
            let job: Job = Arc::new(JobState {
                scenarios: Arc::clone(shared.expect("parallel path requires a shared batch")),
                trees: compiled.clone(),
                cfg: cfg.clone(),
                next: AtomicUsize::new(0),
                results: (0..scenarios.len()).map(|_| Mutex::new(None)).collect(),
                remaining: Mutex::new(scenarios.len()),
                done: Condvar::new(),
                panic: Mutex::new(None),
            });
            {
                let tx = self.injector.lock().expect("injector poisoned");
                for _ in 0..helpers {
                    // A ticket per helper; idle workers pick them up. Stale
                    // tickets (job already drained) exit immediately.
                    tx.send(Arc::clone(&job)).expect("pool channel closed");
                }
            }
            job.work();
            let mut rem = job.remaining.lock().expect("remaining poisoned");
            while *rem > 0 {
                rem = job.done.wait(rem).expect("wait poisoned");
            }
            drop(rem);
            if let Some(msg) = job.panic.lock().expect("panic slot poisoned").take() {
                panic!("scenario evaluation panicked: {msg}");
            }

            // Deterministic fold in input order, independent of which
            // worker ran what.
            let mut per_scenario = Vec::with_capacity(scenarios.len());
            let mut slot_usage: Vec<UsageCounts> = compiled
                .iter()
                .map(|t| UsageCounts::new(t.num_leaves()))
                .collect();
            for slot in &job.results {
                let (u, counts) = slot
                    .lock()
                    .expect("result slot poisoned")
                    .take()
                    .expect("scenario result missing");
                per_scenario.push(u);
                for (s, c) in counts.iter().enumerate() {
                    slot_usage[s].merge(c);
                }
            }
            (per_scenario, slot_usage)
        };

        let usage: Vec<WhiskerTree> = trees
            .iter()
            .zip(&slot_usage)
            .map(|(t, c)| {
                let mut annotated = t.clone();
                annotated.reset_counts();
                annotated.absorb_usage(c);
                annotated
            })
            .collect();
        let mean_utility = per_scenario.iter().sum::<f64>() / per_scenario.len() as f64;
        EvalResult {
            mean_utility,
            per_scenario,
            usage,
        }
    }
}

impl Drop for EvalPool {
    fn drop(&mut self) {
        // Replacing the sender closes the channel; workers drain pending
        // jobs and exit on the recv error.
        {
            let (tx, _rx) = channel::<Job>();
            *self.injector.lock().expect("injector poisoned") = tx;
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Evaluate `trees` on a batch of scenarios using the process-wide shared
/// [`EvalPool`]. `cfg.threads` caps the concurrency; results are
/// bit-identical for any thread count.
pub fn evaluate_scenarios(
    scenarios: &[ConcreteScenario],
    trees: &[WhiskerTree],
    cfg: &EvalConfig,
) -> EvalResult {
    EvalPool::global().evaluate(scenarios, trees, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::Action;

    fn quick_cfg() -> EvalConfig {
        EvalConfig {
            sim_duration_s: 4.0,
            event_budget: 2_000_000,
            threads: 2,
            ..Default::default()
        }
    }

    #[test]
    fn draws_are_deterministic_and_distinct() {
        let specs = [ScenarioSpec::link_speed_range(1.0, 100.0)];
        let a = draw_scenarios(&specs, 5, 9);
        let b = draw_scenarios(&specs, 5, 9);
        assert_eq!(a.len(), 5);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.net, y.net);
            assert_eq!(x.seed, y.seed);
        }
        let rates: std::collections::HashSet<u64> = a
            .iter()
            .map(|s| s.net.links[0].rate_bps.to_bits())
            .collect();
        assert!(rates.len() > 1, "draws explore the range");
    }

    #[test]
    fn evaluation_is_deterministic() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 3, 11);
        let tree = WhiskerTree::default_tree();
        let cfg = quick_cfg();
        let r1 = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg);
        let r2 = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg);
        assert_eq!(r1.per_scenario, r2.per_scenario);
        assert_eq!(r1.mean_utility, r2.mean_utility);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 4, 3);
        let tree = WhiskerTree::default_tree();
        let serial = evaluate_scenarios(
            &scenarios,
            std::slice::from_ref(&tree),
            &EvalConfig {
                threads: 1,
                ..quick_cfg()
            },
        );
        let parallel = evaluate_scenarios(
            &scenarios,
            std::slice::from_ref(&tree),
            &EvalConfig {
                threads: 4,
                ..quick_cfg()
            },
        );
        assert_eq!(serial.per_scenario, parallel.per_scenario);
        assert_eq!(serial.usage, parallel.usage);
    }

    #[test]
    fn dedicated_pool_matches_global_pool() {
        // The threads knob flows into a per-optimizer pool; a dedicated
        // pool of any size must agree bit-for-bit with the shared one.
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 3, 17);
        let tree = WhiskerTree::default_tree();
        let cfg = quick_cfg();
        let shared = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &cfg);
        for pool_threads in [1usize, 2, 8] {
            let pool = EvalPool::new(pool_threads);
            assert_eq!(pool.size(), pool_threads, "pool honors its sizing");
            let r = pool.evaluate(&scenarios, std::slice::from_ref(&tree), &cfg);
            assert_eq!(
                r.per_scenario, shared.per_scenario,
                "pool size {pool_threads}"
            );
            assert_eq!(r.usage, shared.usage);
        }
    }

    #[test]
    fn usage_counts_accumulate() {
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 2, 5);
        let tree = WhiskerTree::default_tree();
        let r = evaluate_scenarios(&scenarios, std::slice::from_ref(&tree), &quick_cfg());
        assert!(
            r.usage[0].total_uses() > 0,
            "acks must hit the tree during evaluation"
        );
    }

    #[test]
    fn better_action_scores_higher_on_same_draws() {
        // On the calibration network, a sane growth action must beat a
        // pathologically conservative one (tiny fixed window, huge pacing).
        let specs = [ScenarioSpec::calibration()];
        let scenarios = draw_scenarios(&specs, 4, 21);
        let cfg = quick_cfg();
        let sane = WhiskerTree::uniform(Action::new(1.0, 1.0, 0.25));
        let starved = WhiskerTree::uniform(Action::new(0.0, 0.0, 900.0));
        let r_sane = evaluate_scenarios(&scenarios, &[sane], &cfg);
        let r_starved = evaluate_scenarios(&scenarios, &[starved], &cfg);
        assert!(
            r_sane.mean_utility > r_starved.mean_utility,
            "sane={} starved={}",
            r_sane.mean_utility,
            r_starved.mean_utility
        );
    }

    #[test]
    fn aimd_roles_run_but_do_not_score() {
        let specs = [ScenarioSpec::tcp_aware()];
        let scenarios = draw_scenarios(&specs, 6, 2);
        // find a draw where the second sender is AIMD
        let mixed = scenarios
            .iter()
            .find(|s| s.roles.contains(&Role::Aimd))
            .expect("p=0.5 over 6 draws");
        let tree = WhiskerTree::default_tree();
        let (u, usage) = run_scenario(mixed, std::slice::from_ref(&tree), &quick_cfg());
        assert!(u.is_finite());
        assert!(usage[0].total_uses() > 0, "the Tao sender used its tree");
    }
}
