//! Mechanistic verification of trained protocols.
//!
//! The paper's conclusion asks: "While our experimental results suggest
//! qualitatively that Remy-generated protocols do not carry a substantial
//! risk of catastrophic congestion collapse, can a protocol optimizer
//! maintain and verify this requirement mechanistically, as part of the
//! design process?" This module is that check: it sweeps a trained
//! whisker tree over a grid of adversarial scenarios — far outside any
//! training range — and flags collapse indicators:
//!
//! * **goodput collapse** — bottleneck utilization with retransmission
//!   ratio above 1 (more retransmissions than deliveries, the classic
//!   collapse signature the paper's footnote 2 recalls);
//! * **starvation** — a sender that was ON but delivered (almost)
//!   nothing;
//! * **runaway queues** — standing queueing delay beyond a multiple of
//!   the path RTT on a no-drop buffer.

use crate::scenario::{BufferSpec, ConcreteScenario, Role, ScenarioSpec};
use netsim::prelude::*;
use protocols::{TaoCc, WhiskerTree};
use serde::{Deserialize, Serialize};

/// Verification thresholds.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct VerifyConfig {
    /// Flag if retransmissions / deliveries exceeds this (collapse).
    pub max_retx_ratio: f64,
    /// Flag if an ON sender's goodput falls below
    /// `min(equal_share × min_share_fraction, starvation_floor_bps)` —
    /// the absolute floor keeps merely-conservative protocols on very
    /// fast links from being misread as collapsed.
    pub min_share_fraction: f64,
    pub starvation_floor_bps: f64,
    /// Flag if queueing delay exceeds this multiple of the minimum RTT
    /// (no-drop buffers only).
    pub max_queue_rtt_multiple: f64,
    /// Simulated seconds per probe.
    pub sim_duration_s: f64,
    /// Seeds per probe.
    pub seeds: u64,
    /// Event cap per probe simulation.
    pub event_budget: u64,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            // Collapse means *sustained* waste, not a thrashed 2-packet
            // buffer: require retransmissions to double deliveries.
            max_retx_ratio: 2.0,
            min_share_fraction: 0.05,
            starvation_floor_bps: 100_000.0,
            max_queue_rtt_multiple: 20.0,
            sim_duration_s: 12.0,
            seeds: 2,
            event_budget: 10_000_000,
        }
    }
}

/// One flagged probe.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Violation {
    pub probe: String,
    pub kind: ViolationKind,
    pub detail: String,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ViolationKind {
    RetransmissionCollapse,
    Starvation,
    RunawayQueue,
}

/// Verification verdict for one protocol.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct VerifyReport {
    pub protocol: String,
    pub probes_run: usize,
    pub violations: Vec<Violation>,
}

impl VerifyReport {
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The adversarial probe grid: deliberately *outside* typical training
/// ranges — slow and fast links, tiny buffers, no-drop buffers, and heavy
/// multiplexing.
pub fn adversarial_probes() -> Vec<(String, ScenarioSpec)> {
    let mut probes = Vec::new();
    for &(label, mbps, senders, buffer) in &[
        (
            "slow-link-tiny-buffer",
            0.5,
            2u32,
            BufferSpec::BdpMultiple(0.5),
        ),
        ("fast-link", 500.0, 2, BufferSpec::BdpMultiple(1.0)),
        ("heavy-mux-finite", 15.0, 64, BufferSpec::BdpMultiple(1.0)),
        ("heavy-mux-nodrop", 15.0, 64, BufferSpec::Infinite),
        ("lone-sender-nodrop", 10.0, 1, BufferSpec::Infinite),
    ] {
        probes.push((
            label.to_string(),
            ScenarioSpec {
                topology: crate::scenario::TopologySpec::Dumbbell {
                    link_mbps: crate::scenario::Sample::Fixed(mbps),
                    rtt_ms: crate::scenario::Sample::Fixed(100.0),
                },
                classes: vec![crate::scenario::SenderClassSpec {
                    role: crate::scenario::RoleSpec::Tao { slot: 0 },
                    count: crate::scenario::CountSpec::Fixed(senders),
                    workload: WorkloadSpec::almost_continuous(),
                    delta: 1.0,
                }],
                buffer,
            },
        ));
    }
    probes
}

fn is_no_drop(s: &ConcreteScenario) -> bool {
    s.net.links.iter().all(|l| {
        matches!(
            l.queue,
            netsim::queue::QueueSpec::DropTail {
                capacity_bytes: None
            }
        )
    })
}

/// Verify one trained tree against the probe grid.
pub fn verify(tree: &WhiskerTree, protocol: &str, cfg: &VerifyConfig) -> VerifyReport {
    let mut violations = Vec::new();
    let probes = adversarial_probes();
    let probes_run = probes.len() * cfg.seeds as usize;

    for (label, spec) in &probes {
        for seed in 0..cfg.seeds {
            let scenario = spec.sample(0xFEED_0000 + seed);
            let protocols: Vec<Box<dyn netsim::transport::CongestionControl>> = scenario
                .roles
                .iter()
                .map(|r| -> Box<dyn netsim::transport::CongestionControl> {
                    match r {
                        Role::Tao { .. } => Box::new(TaoCc::new(tree.clone(), protocol)),
                        Role::Aimd => Box::new(protocols::NewReno::new()),
                    }
                })
                .collect();
            let mut sim = Simulation::new(&scenario.net, protocols, scenario.seed);
            sim.set_event_budget(cfg.event_budget);
            let out = sim.run(SimDuration::from_secs_f64(cfg.sim_duration_s));

            let n = out.flows.len() as f64;
            let rate = scenario.net.links[0].rate_bps;
            let rtt = scenario.net.min_rtt(0).as_secs_f64();
            for f in &out.flows {
                if f.on_time_s <= rtt {
                    continue; // not enough airtime to judge
                }
                let retx_ratio = if f.packets_delivered > 0 {
                    f.retransmissions as f64 / f.packets_delivered as f64
                } else if f.retransmissions > 0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                if retx_ratio > cfg.max_retx_ratio {
                    violations.push(Violation {
                        probe: format!("{label}/seed{seed}"),
                        kind: ViolationKind::RetransmissionCollapse,
                        detail: format!(
                            "flow {}: retx/delivered = {:.2} ({} retx, {} delivered)",
                            f.flow, retx_ratio, f.retransmissions, f.packets_delivered
                        ),
                    });
                }
                let share = rate / n;
                let starve_below = (share * cfg.min_share_fraction).min(cfg.starvation_floor_bps);
                if f.throughput_bps < starve_below {
                    violations.push(Violation {
                        probe: format!("{label}/seed{seed}"),
                        kind: ViolationKind::Starvation,
                        detail: format!(
                            "flow {}: {:.0} bps below starvation line {:.0} bps (share {:.0})",
                            f.flow, f.throughput_bps, starve_below, share
                        ),
                    });
                }
                if is_no_drop(&scenario)
                    && f.avg_queueing_delay_s > cfg.max_queue_rtt_multiple * rtt
                {
                    violations.push(Violation {
                        probe: format!("{label}/seed{seed}"),
                        kind: ViolationKind::RunawayQueue,
                        detail: format!(
                            "flow {}: queueing delay {:.2}s > {}x RTT",
                            f.flow, f.avg_queueing_delay_s, cfg.max_queue_rtt_multiple
                        ),
                    });
                }
            }
        }
    }

    VerifyReport {
        protocol: protocol.to_string(),
        probes_run,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use protocols::Action;

    fn quick_cfg() -> VerifyConfig {
        VerifyConfig {
            sim_duration_s: 5.0,
            seeds: 1,
            event_budget: 400_000,
            ..Default::default()
        }
    }

    #[test]
    fn sane_protocol_passes() {
        // window <- 0.5w + 1, lightly paced: steady 2-packet window,
        // harmless even on the 2-packet adversarial buffer.
        let tree = WhiskerTree::uniform(Action::new(0.5, 1.0, 2.0));
        let report = verify(&tree, "sane", &quick_cfg());
        assert!(
            report.passed(),
            "sane protocol flagged: {:?}",
            report.violations
        );
        assert!(report.probes_run >= 5);
    }

    #[test]
    fn blaster_is_flagged() {
        // Maximal aggression with negligible pacing: floods every buffer.
        let tree = WhiskerTree::uniform(Action::new(2.0, 32.0, 0.002));
        let report = verify(&tree, "blaster", &quick_cfg());
        assert!(!report.passed(), "the blaster must trip the verifier");
        // It should specifically show queue or retransmission pathologies.
        assert!(report.violations.iter().any(|v| matches!(
            v.kind,
            ViolationKind::RetransmissionCollapse | ViolationKind::RunawayQueue
        )));
    }

    #[test]
    fn zombie_is_flagged_as_starved() {
        // A protocol that effectively never sends (maximal pacing).
        let tree = WhiskerTree::uniform(Action::new(0.0, 0.0, 1000.0));
        let report = verify(&tree, "zombie", &quick_cfg());
        assert!(report
            .violations
            .iter()
            .any(|v| v.kind == ViolationKind::Starvation));
    }

    #[test]
    fn report_serializes() {
        let tree = WhiskerTree::uniform(Action::new(0.9, 1.0, 1.0));
        let report = verify(&tree, "sane", &quick_cfg());
        let json = serde_json::to_string(&report).unwrap();
        let back: VerifyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.protocol, "sane");
        assert_eq!(back.probes_run, report.probes_run);
    }
}
