//! # remy — the automatic protocol-design tool
//!
//! A reimplementation of the Remy optimizer (Winstein & Balakrishnan,
//! *TCP ex Machina*, SIGCOMM 2013) as used by *An Experimental Study of
//! the Learnability of Congestion Control* (SIGCOMM 2014) to produce
//! "tractable attempts at optimal" (Tao) congestion-control protocols.
//!
//! The pipeline:
//!
//! 1. Describe the designer's network model as [`scenario::ScenarioSpec`]s
//!    — distributions over link speeds, RTTs, multiplexing, buffers, and
//!    cross-traffic (§3.1).
//! 2. Pick an [`objective::Objective`]: `log(throughput) − δ·log(delay)`
//!    (§3.2).
//! 3. Run the [`optimizer::Optimizer`]: hill-climb whisker actions and
//!    split busy whiskers until the budget is exhausted (§3.3).
//! 4. Save the resulting protocol with [`serialize`], and execute it with
//!    [`protocols::TaoCc`].
//!
//! ```no_run
//! use remy::prelude::*;
//!
//! let specs = vec![ScenarioSpec::link_speed_range(22.0, 44.0)];
//! let opt = Optimizer::new(specs, OptimizerConfig::default());
//! let trained = opt.optimize("tao-2x");
//! println!("score {:.3}\n{}", trained.score, trained.tree);
//! ```
//!
//! # Performance architecture
//!
//! Training cost = (candidate evaluations) × (scenario simulations per
//! evaluation) × (per-simulation cost); `improve_leaf` multiplies the
//! first factor into the thousands, so the evaluation path is built for
//! throughput (see [`eval`] for the full design):
//!
//! * **Compiled whisker trees.** Each evaluation compiles the candidate
//!   [`WhiskerTree`](protocols::WhiskerTree) once into an immutable
//!   [`protocols::CompiledTree`] arena shared (`Arc`) by every sender in
//!   every scenario; per-ack lookups walk contiguous nodes, and usage
//!   statistics accumulate in flat per-executor
//!   [`protocols::UsageCounts`] buffers instead of per-scenario tree
//!   clones.
//! * **Persistent evaluation pool.** An [`eval::EvalPool`] is created
//!   once per [`Optimizer`] (and once per process for the free
//!   [`evaluate_scenarios`] function); scenarios are claimed from a
//!   work-stealing atomic cursor, so no threads are spawned per
//!   candidate and skewed scenario costs don't idle cores.
//!   `OptimizerConfig::threads` sizes the pool; results are
//!   bit-identical for any thread count.
//!
//! Benchmarks: `cargo bench -p bench --bench optimizer` (evaluation
//! scaling, spec costs) and `--bench hotpath` (lookup + pool paths);
//! `cargo run --release -p bench --bin perf_snapshot -- --write` records
//! the training wall-time trajectory in `BENCH_optimizer.json`.

pub mod eval;
pub mod objective;
pub mod optimizer;
pub mod scenario;
pub mod serialize;
pub mod space;
pub mod trainer;
pub mod verifier;

pub use eval::{draw_scenarios, evaluate_scenarios, EvalConfig, EvalPool, EvalResult};
pub use objective::Objective;
pub use optimizer::{Optimizer, OptimizerConfig, TrainedProtocol};
pub use scenario::{
    BufferSpec, ConcreteScenario, CountSpec, Role, RoleSpec, Sample, ScenarioSpec, SenderClassSpec,
    TopologySpec,
};
pub use space::{Axis, AxisKind, ScenarioSpace};
pub use trainer::{GeneticTrainer, TrainBudget, TrainCost, Trainer, TreeTrainer};
pub use verifier::{verify, VerifyConfig, VerifyReport};

/// Common imports for optimizer users.
pub mod prelude {
    pub use crate::eval::{EvalConfig, EvalResult};
    pub use crate::objective::Objective;
    pub use crate::optimizer::{Optimizer, OptimizerConfig, TrainedProtocol};
    pub use crate::scenario::{
        BufferSpec, ConcreteScenario, CountSpec, Role, RoleSpec, Sample, ScenarioSpec,
        SenderClassSpec, TopologySpec,
    };
    pub use crate::space::{Axis, AxisKind, ScenarioSpace};
    pub use crate::trainer::{GeneticTrainer, TrainBudget, TrainCost, Trainer, TreeTrainer};
}
