//! Training-scenario specifications (§3.1 of the paper).
//!
//! A [`ScenarioSpec`] is the designer's (possibly imperfect) model of the
//! target network: distributions over link speeds, propagation delays,
//! degrees of multiplexing, buffer sizes, and the mix of sender behaviours
//! (including incumbent AIMD cross-traffic for the TCP-awareness
//! experiments, and multiple Tao classes with different objectives for the
//! sender-diversity experiment). Sampling a spec yields a
//! [`ConcreteScenario`]: a fully specified network plus sender roles,
//! ready to simulate.

use crate::objective::Objective;
use crate::space::ScenarioSpace;
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::rng::SimRng;
use netsim::workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// A scalar drawn per scenario sample.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Sample {
    Fixed(f64),
    /// Uniform in `[lo, hi]`.
    Uniform {
        lo: f64,
        hi: f64,
    },
    /// Log-uniform in `[lo, hi]` — how the paper samples link speeds.
    LogUniform {
        lo: f64,
        hi: f64,
    },
}

impl Sample {
    pub fn draw(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Sample::Fixed(v) => v,
            Sample::Uniform { lo, hi } => rng.uniform(lo, hi),
            Sample::LogUniform { lo, hi } => rng.log_uniform(lo, hi),
        }
    }

    /// Midpoint of the range (geometric for log-uniform); used for
    /// deterministic "center of the training range" probes.
    pub fn center(&self) -> f64 {
        match *self {
            Sample::Fixed(v) => v,
            Sample::Uniform { lo, hi } => (lo + hi) / 2.0,
            Sample::LogUniform { lo, hi } => (lo * hi).sqrt(),
        }
    }

    /// Closed range `[lo, hi]` of values this sample can take.
    pub fn bounds(&self) -> (f64, f64) {
        match *self {
            Sample::Fixed(v) => (v, v),
            Sample::Uniform { lo, hi } | Sample::LogUniform { lo, hi } => (lo, hi),
        }
    }

    /// Clamp `v` into this sample's bounds (non-finite values collapse to
    /// the lower bound), so mutated values can never escape the range.
    pub fn clamp(&self, v: f64) -> f64 {
        let (lo, hi) = self.bounds();
        if !v.is_finite() {
            return lo;
        }
        v.clamp(lo, hi)
    }
}

/// How many senders of a class appear in one sampled scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum CountSpec {
    Fixed(u32),
    /// Uniform integer in `[lo, hi]`.
    UniformInt {
        lo: u32,
        hi: u32,
    },
}

impl CountSpec {
    pub fn draw(&self, rng: &mut SimRng) -> u32 {
        match *self {
            CountSpec::Fixed(n) => n,
            CountSpec::UniformInt { lo, hi } => rng.uniform_u32(lo, hi),
        }
    }

    pub fn max(&self) -> u32 {
        match *self {
            CountSpec::Fixed(n) => n,
            CountSpec::UniformInt { hi, .. } => hi,
        }
    }
}

/// What protocol a sender of a class runs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum RoleSpec {
    /// A Tao sender running the tree in the given optimizer slot.
    Tao { slot: usize },
    /// Incumbent AIMD (NewReno-like) cross-traffic.
    Aimd,
    /// TCP-awareness training: with probability `p_aimd` this sender is
    /// AIMD; otherwise it runs the Tao tree in `slot` (Table 6a trains
    /// against TCP "half the time").
    TaoOrAimd { slot: usize, p_aimd: f64 },
}

/// Resolved role of one sender in a concrete scenario.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Role {
    Tao { slot: usize },
    Aimd,
}

/// A class of senders sharing role, workload, and objective.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SenderClassSpec {
    pub role: RoleSpec,
    pub count: CountSpec,
    pub workload: WorkloadSpec,
    /// δ of the objective this class is scored under.
    pub delta: f64,
}

impl SenderClassSpec {
    /// The common case: `count` Tao senders with 1 s ON/OFF and δ = 1.
    pub fn tao(slot: usize, count: CountSpec) -> Self {
        SenderClassSpec {
            role: RoleSpec::Tao { slot },
            count,
            workload: WorkloadSpec::on_off_1s(),
            delta: 1.0,
        }
    }
}

/// Bottleneck buffer model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BufferSpec {
    /// Drop-tail sized to a multiple of the bandwidth-delay product.
    BdpMultiple(f64),
    /// Infinite FIFO ("no drop").
    Infinite,
    /// Drop-tail with a fixed byte capacity (Fig 7 uses 250 kB).
    Bytes(u64),
}

impl BufferSpec {
    pub fn to_queue(&self, rate_bps: f64, min_rtt_s: f64) -> QueueSpec {
        match *self {
            BufferSpec::BdpMultiple(m) => QueueSpec::drop_tail_bdp(rate_bps, min_rtt_s, m),
            BufferSpec::Infinite => QueueSpec::infinite(),
            BufferSpec::Bytes(b) => QueueSpec::DropTail {
                capacity_bytes: Some(b),
            },
        }
    }
}

/// Network structure of the scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// Single bottleneck shared by all senders.
    Dumbbell { link_mbps: Sample, rtt_ms: Sample },
    /// The two-bottleneck parking lot of Fig 5; sender classes are laid
    /// out per [`netsim::topology::parking_lot`]: the first sender crosses
    /// both links, the second contends on link 1, the third on link 2.
    ParkingLot {
        link1_mbps: Sample,
        link2_mbps: Sample,
        per_link_delay_ms: f64,
    },
}

impl TopologySpec {
    /// The [`ScenarioSpace`] over this topology's sampled axes, in the
    /// exact order [`ScenarioSpec::sample`] draws them. This is what makes
    /// a Remy training-distribution draw one instance of the general
    /// scenario-space machinery: the spec's topology ranges *are* a
    /// (small) `ScenarioSpace`, and `sample` routes its draws through it.
    pub fn space(&self) -> ScenarioSpace {
        match *self {
            TopologySpec::Dumbbell { link_mbps, rtt_ms } => ScenarioSpace::new("dumbbell")
                .with_continuous("link_mbps", link_mbps)
                .with_continuous("rtt_ms", rtt_ms),
            TopologySpec::ParkingLot {
                link1_mbps,
                link2_mbps,
                ..
            } => ScenarioSpace::new("parking-lot")
                .with_continuous("link1_mbps", link1_mbps)
                .with_continuous("link2_mbps", link2_mbps),
        }
    }
}

/// A complete training-scenario specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    pub topology: TopologySpec,
    pub classes: Vec<SenderClassSpec>,
    pub buffer: BufferSpec,
}

impl ScenarioSpec {
    /// The calibration scenario of Table 1: 32 Mbps, 150 ms, 2 senders,
    /// 1 s ON/OFF, 5 BDP of buffer.
    pub fn calibration() -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::Fixed(32.0),
                rtt_ms: Sample::Fixed(150.0),
            },
            classes: vec![SenderClassSpec::tao(0, CountSpec::Fixed(2))],
            buffer: BufferSpec::BdpMultiple(5.0),
        }
    }

    /// Table 2a: link-speed range training, 2 senders, 150 ms.
    pub fn link_speed_range(lo_mbps: f64, hi_mbps: f64) -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::LogUniform {
                    lo: lo_mbps,
                    hi: hi_mbps,
                },
                rtt_ms: Sample::Fixed(150.0),
            },
            classes: vec![SenderClassSpec::tao(0, CountSpec::Fixed(2))],
            buffer: BufferSpec::BdpMultiple(5.0),
        }
    }

    /// Table 3a: multiplexing training at 15 Mbps, `n` senders.
    pub fn multiplexing(n_senders: u32, buffer: BufferSpec) -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::Fixed(15.0),
                rtt_ms: Sample::Fixed(150.0),
            },
            classes: vec![SenderClassSpec::tao(
                0,
                CountSpec::UniformInt {
                    lo: 1,
                    hi: n_senders.max(1),
                },
            )],
            buffer,
        }
    }

    /// Table 4a: propagation-delay training at 33 Mbps, 2 senders.
    pub fn rtt_range(lo_ms: f64, hi_ms: f64) -> Self {
        let rtt = if (hi_ms - lo_ms).abs() < 1e-9 {
            Sample::Fixed(lo_ms)
        } else {
            Sample::Uniform {
                lo: lo_ms,
                hi: hi_ms,
            }
        };
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::Fixed(33.0),
                rtt_ms: rtt,
            },
            classes: vec![SenderClassSpec::tao(0, CountSpec::Fixed(2))],
            buffer: BufferSpec::BdpMultiple(5.0),
        }
    }

    /// Table 5: simplified one-bottleneck model of the parking lot
    /// (10–100 Mbps, 150 ms, 2 senders).
    pub fn one_bottleneck_model() -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::LogUniform {
                    lo: 10.0,
                    hi: 100.0,
                },
                rtt_ms: Sample::Fixed(150.0),
            },
            classes: vec![SenderClassSpec::tao(0, CountSpec::Fixed(2))],
            buffer: BufferSpec::BdpMultiple(5.0),
        }
    }

    /// Table 5: the full two-bottleneck parking-lot model.
    pub fn two_bottleneck_model() -> Self {
        ScenarioSpec {
            topology: TopologySpec::ParkingLot {
                link1_mbps: Sample::LogUniform {
                    lo: 10.0,
                    hi: 100.0,
                },
                link2_mbps: Sample::LogUniform {
                    lo: 10.0,
                    hi: 100.0,
                },
                per_link_delay_ms: 75.0,
            },
            classes: vec![SenderClassSpec {
                role: RoleSpec::Tao { slot: 0 },
                count: CountSpec::Fixed(3),
                workload: WorkloadSpec::on_off_1s(),
                delta: 1.0,
            }],
            buffer: BufferSpec::BdpMultiple(5.0),
        }
    }

    /// Table 6a TCP-naive: 2 Tao senders, 9–11 Mbps, 100 ms, 2 BDP buffer.
    /// Workload is drawn between 5 s ON/OFF and nearly-continuous load.
    pub fn tcp_naive() -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::Uniform { lo: 9.0, hi: 11.0 },
                rtt_ms: Sample::Fixed(100.0),
            },
            classes: vec![SenderClassSpec {
                role: RoleSpec::Tao { slot: 0 },
                count: CountSpec::Fixed(2),
                workload: WorkloadSpec::OnOff {
                    mean_on_s: 5.0,
                    mean_off_s: 1.0,
                },
                delta: 1.0,
            }],
            buffer: BufferSpec::BdpMultiple(2.0),
        }
    }

    /// Table 6a TCP-aware: one sender is always Tao; the other is AIMD
    /// half the time.
    pub fn tcp_aware() -> Self {
        let mut spec = Self::tcp_naive();
        spec.classes = vec![
            SenderClassSpec {
                role: RoleSpec::Tao { slot: 0 },
                count: CountSpec::Fixed(1),
                workload: WorkloadSpec::OnOff {
                    mean_on_s: 5.0,
                    mean_off_s: 1.0,
                },
                delta: 1.0,
            },
            SenderClassSpec {
                role: RoleSpec::TaoOrAimd {
                    slot: 0,
                    p_aimd: 0.5,
                },
                count: CountSpec::Fixed(1),
                workload: WorkloadSpec::OnOff {
                    mean_on_s: 5.0,
                    mean_off_s: 1.0,
                },
                delta: 1.0,
            },
        ];
        spec
    }

    /// Table 7a: sender diversity. Two Tao classes (slots 0 and 1) with
    /// δ = 0.1 (throughput-sensitive) and δ = 10 (delay-sensitive); 0–2
    /// senders of each type on a 10 Mbps, 100 ms, no-drop dumbbell.
    pub fn diversity() -> Self {
        ScenarioSpec {
            topology: TopologySpec::Dumbbell {
                link_mbps: Sample::Fixed(10.0),
                rtt_ms: Sample::Fixed(100.0),
            },
            classes: vec![
                SenderClassSpec {
                    role: RoleSpec::Tao { slot: 0 },
                    count: CountSpec::UniformInt { lo: 0, hi: 2 },
                    workload: WorkloadSpec::on_off_1s(),
                    delta: Objective::throughput_sensitive().delta,
                },
                SenderClassSpec {
                    role: RoleSpec::Tao { slot: 1 },
                    count: CountSpec::UniformInt { lo: 0, hi: 2 },
                    workload: WorkloadSpec::on_off_1s(),
                    delta: Objective::delay_sensitive().delta,
                },
            ],
            buffer: BufferSpec::Infinite,
        }
    }

    /// Number of Tao tree slots this spec references (1 + highest slot).
    pub fn num_slots(&self) -> usize {
        self.classes
            .iter()
            .map(|c| match c.role {
                RoleSpec::Tao { slot } | RoleSpec::TaoOrAimd { slot, .. } => slot + 1,
                RoleSpec::Aimd => 0,
            })
            .max()
            .unwrap_or(0)
    }

    /// The [`ScenarioSpace`] this spec samples its topology from.
    pub fn space(&self) -> ScenarioSpace {
        self.topology.space()
    }

    /// Draw a concrete scenario. Deterministic in `seed`.
    pub fn sample(&self, seed: u64) -> ConcreteScenario {
        let mut rng = SimRng::from_seed(seed);
        // Topology axes are drawn through the spec's ScenarioSpace, in
        // declared order, from the same rng — the general sampler and the
        // historical inline draws produce bit-identical streams.
        let point = self.space().sample_with(&mut rng);
        match &self.topology {
            TopologySpec::Dumbbell { .. } => {
                let rate = point[0] * 1e6;
                let rtt_s = point[1] / 1e3;
                let mut roles = Vec::new();
                let mut deltas = Vec::new();
                let mut workloads = Vec::new();
                for class in &self.classes {
                    let n = class.count.draw(&mut rng);
                    for _ in 0..n {
                        let role = match class.role {
                            RoleSpec::Tao { slot } => Role::Tao { slot },
                            RoleSpec::Aimd => Role::Aimd,
                            RoleSpec::TaoOrAimd { slot, p_aimd } => {
                                if rng.chance(p_aimd) {
                                    Role::Aimd
                                } else {
                                    Role::Tao { slot }
                                }
                            }
                        };
                        roles.push(role);
                        deltas.push(class.delta);
                        workloads.push(class.workload.clone());
                    }
                }
                // A scenario with zero senders is degenerate; re-draw the
                // first class with one sender so every sample is usable
                // (matters for the diversity spec's 0..2 counts).
                if roles.is_empty() {
                    let class = &self.classes[0];
                    let role = match class.role {
                        RoleSpec::Tao { slot } | RoleSpec::TaoOrAimd { slot, .. } => {
                            Role::Tao { slot }
                        }
                        RoleSpec::Aimd => Role::Aimd,
                    };
                    roles.push(role);
                    deltas.push(class.delta);
                    workloads.push(class.workload.clone());
                }
                let queue = self.buffer.to_queue(rate, rtt_s);
                let net = netsim::topology::dumbbell_mixed(rate, rtt_s, queue, workloads);
                ConcreteScenario {
                    net,
                    roles,
                    deltas,
                    seed: rng.gen_u64(),
                }
            }
            TopologySpec::ParkingLot {
                per_link_delay_ms, ..
            } => {
                let r1 = point[0] * 1e6;
                let r2 = point[1] * 1e6;
                let delay_s = per_link_delay_ms / 1e3;
                let class = &self.classes[0];
                let (q1, q2) = (
                    self.buffer.to_queue(r1, 2.0 * delay_s),
                    self.buffer.to_queue(r2, 2.0 * delay_s),
                );
                let net =
                    netsim::topology::parking_lot(r1, r2, delay_s, q1, q2, class.workload.clone());
                let role = match class.role {
                    RoleSpec::Tao { slot } | RoleSpec::TaoOrAimd { slot, .. } => Role::Tao { slot },
                    RoleSpec::Aimd => Role::Aimd,
                };
                ConcreteScenario {
                    net,
                    roles: vec![role; 3],
                    deltas: vec![class.delta; 3],
                    seed: rng.gen_u64(),
                }
            }
        }
    }
}

/// A fully specified, simulatable scenario.
#[derive(Clone, Debug)]
pub struct ConcreteScenario {
    pub net: NetworkConfig,
    /// Per-flow protocol role (parallel to `net.flows`).
    pub roles: Vec<Role>,
    /// Per-flow objective δ.
    pub deltas: Vec<f64>,
    /// Seed for the simulation run itself.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        let spec = ScenarioSpec::link_speed_range(1.0, 1000.0);
        let a = spec.sample(7);
        let b = spec.sample(7);
        assert_eq!(a.net, b.net);
        assert_eq!(a.roles, b.roles);
        assert_eq!(a.seed, b.seed);
        let c = spec.sample(8);
        assert_ne!(
            a.net.links[0].rate_bps, c.net.links[0].rate_bps,
            "different seeds draw different speeds"
        );
    }

    #[test]
    fn link_speed_samples_stay_in_range() {
        let spec = ScenarioSpec::link_speed_range(10.0, 100.0);
        for seed in 0..200 {
            let s = spec.sample(seed);
            let mbps = s.net.links[0].rate_bps / 1e6;
            assert!((10.0..=100.0).contains(&mbps), "sampled {mbps}");
        }
    }

    #[test]
    fn calibration_matches_table_1() {
        let s = ScenarioSpec::calibration().sample(1);
        assert_eq!(s.net.links[0].rate_bps, 32e6);
        assert_eq!(
            s.net.min_rtt(0),
            netsim::time::SimDuration::from_millis(150)
        );
        assert_eq!(s.roles.len(), 2);
        // 5 BDP buffer = 3 MB
        match &s.net.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => assert_eq!(*c, 3_000_000),
            other => panic!("unexpected queue {other:?}"),
        }
    }

    #[test]
    fn multiplexing_counts_vary() {
        let spec = ScenarioSpec::multiplexing(100, BufferSpec::BdpMultiple(5.0));
        let mut seen = std::collections::HashSet::new();
        for seed in 0..100 {
            let n = spec.sample(seed).roles.len();
            assert!((1..=100).contains(&n));
            seen.insert(n);
        }
        assert!(seen.len() > 20, "counts should spread over the range");
    }

    #[test]
    fn tcp_aware_draws_aimd_half_the_time() {
        let spec = ScenarioSpec::tcp_aware();
        let mut aimd = 0;
        let total = 400;
        for seed in 0..total {
            let s = spec.sample(seed);
            assert_eq!(s.roles[0], Role::Tao { slot: 0 }, "first sender always Tao");
            if s.roles[1] == Role::Aimd {
                aimd += 1;
            }
        }
        let frac = aimd as f64 / total as f64;
        assert!((frac - 0.5).abs() < 0.1, "AIMD fraction {frac}");
    }

    #[test]
    fn diversity_always_has_a_sender() {
        let spec = ScenarioSpec::diversity();
        assert_eq!(spec.num_slots(), 2);
        for seed in 0..200 {
            let s = spec.sample(seed);
            assert!(!s.roles.is_empty(), "degenerate zero-sender draw");
            assert_eq!(s.roles.len(), s.deltas.len());
        }
    }

    #[test]
    fn parking_lot_spec_builds_three_flows() {
        let s = ScenarioSpec::two_bottleneck_model().sample(3);
        assert_eq!(s.net.flows.len(), 3);
        assert_eq!(s.net.links.len(), 2);
        assert_eq!(s.roles, vec![Role::Tao { slot: 0 }; 3]);
        // flow 0 sees 150 ms RTT
        assert_eq!(
            s.net.min_rtt(0),
            netsim::time::SimDuration::from_millis(150)
        );
    }

    #[test]
    fn rtt_range_degenerate_is_fixed() {
        let spec = ScenarioSpec::rtt_range(150.0, 150.0);
        match spec.topology {
            TopologySpec::Dumbbell { rtt_ms, .. } => assert_eq!(rtt_ms, Sample::Fixed(150.0)),
            _ => unreachable!(),
        }
    }

    #[test]
    fn sample_center() {
        assert_eq!(Sample::Fixed(5.0).center(), 5.0);
        assert_eq!(Sample::Uniform { lo: 2.0, hi: 4.0 }.center(), 3.0);
        let c = Sample::LogUniform {
            lo: 1.0,
            hi: 1000.0,
        }
        .center();
        assert!((c - 31.6227766).abs() < 1e-6);
    }

    #[test]
    fn specs_serialize() {
        for spec in [
            ScenarioSpec::calibration(),
            ScenarioSpec::tcp_aware(),
            ScenarioSpec::diversity(),
            ScenarioSpec::two_bottleneck_model(),
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back);
        }
    }
}
