//! Pluggable protocol trainers: one budget, several search strategies.
//!
//! The paper's learnability question is posed over one function class
//! (whisker trees) and one search strategy (the greedy improve-then-split
//! [`Optimizer`]). This module breaks the second hardcoding: a
//! [`Trainer`] is any procedure that turns training [`ScenarioSpec`]s
//! into a [`TrainedProtocol`] under a shared [`TrainBudget`], evaluating
//! candidates on a caller-provided [`EvalPool`].
//!
//! Two implementations ship today:
//!
//! * [`TreeTrainer`] — the existing Remy hill-climb, unchanged: it wraps
//!   [`Optimizer`] around the shared pool and produces **bit-identical**
//!   protocols for the same [`OptimizerConfig`] (the committed Tao assets
//!   and figure goldens do not move).
//! * [`GeneticTrainer`] — a population search over *serialized whisker
//!   genomes*: each genome is a whisker tree flattened into a point of a
//!   per-genome action [`ScenarioSpace`] (three axes per leaf), mutated
//!   with the same bounded [`ScenarioSpace::mutate_with`] step the
//!   adversarial search uses, selected by deterministic tournaments, and
//!   scored with the pool's claim-by-index parallel evaluation — so the
//!   result is bit-identical for any thread count and either scheduler
//!   backend, exactly like the sweep engine.
//!
//! All trainer randomness flows through one caller-supplied [`SimRng`]
//! on the calling thread; workers only simulate. That is what makes the
//! genetic search a pure function of `(specs, budget, rng seed)`.

use crate::eval::{draw_scenarios, EvalConfig, EvalPool};
use crate::optimizer::{Optimizer, OptimizerConfig, TrainedProtocol};
use crate::scenario::{Sample, ScenarioSpec};
use crate::space::ScenarioSpace;
use netsim::event::SchedulerKind;
use netsim::rng::SimRng;
use protocols::action::{
    MAX_INTERSEND_MS, MAX_WINDOW_INCREMENT, MAX_WINDOW_MULTIPLE, MIN_INTERSEND_MS,
    MIN_WINDOW_INCREMENT, MIN_WINDOW_MULTIPLE,
};
use protocols::whisker::{LeafId, SIGNAL_MAX};
use protocols::{Action, SignalMask, WhiskerTree};
use std::sync::Arc;

/// Cost class of a training spec: heavy specs (very fast links, 100-way
/// multiplexing) get shorter simulations so training budgets stay sane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainCost {
    Normal,
    Heavy,
}

/// The shared training budget every [`Trainer`] reads: evaluation batch
/// size, simulated time, outer rounds, structure cap, and determinism
/// knobs. [`TreeTrainer`] maps it 1:1 onto [`OptimizerConfig`];
/// [`GeneticTrainer`] reads `rounds` as generations and `max_leaves` as
/// the genome-size cap.
#[derive(Clone, Debug)]
pub struct TrainBudget {
    /// Scenario draws per spec per evaluation batch.
    pub draws_per_eval: usize,
    /// Simulated seconds per scenario.
    pub sim_duration_s: f64,
    /// Outer rounds (tree: improve-then-split cycles; genetic: generations).
    pub rounds: usize,
    /// Structure cap: maximum whiskers per tree / leaves per genome.
    pub max_leaves: usize,
    /// Hill-climb step scales, coarse to fine (tree trainer only).
    pub scales: Vec<f64>,
    /// Worker threads (0 = all cores). Never changes results.
    pub threads: usize,
    /// Root seed for scenario draws (and, via the caller's rng, trainer
    /// randomness).
    pub seed: u64,
    /// Per-simulation event cap.
    pub event_budget: u64,
    /// Per-slot signal-knockout masks (§3.4); empty = all signals.
    pub masks: Vec<SignalMask>,
    /// Event-scheduler backend (order-equivalent; never changes results).
    pub scheduler: SchedulerKind,
    /// Print progress to stderr.
    pub verbose: bool,
}

impl Default for TrainBudget {
    fn default() -> Self {
        TrainBudget::from_config(OptimizerConfig::default())
    }
}

impl TrainBudget {
    /// View an existing optimizer config as a budget (field-for-field).
    pub fn from_config(cfg: OptimizerConfig) -> Self {
        TrainBudget {
            draws_per_eval: cfg.draws_per_eval,
            sim_duration_s: cfg.sim_duration_s,
            rounds: cfg.rounds,
            max_leaves: cfg.max_leaves,
            scales: cfg.scales,
            threads: cfg.threads,
            seed: cfg.seed,
            event_budget: cfg.event_budget,
            masks: cfg.masks,
            scheduler: cfg.scheduler,
            verbose: cfg.verbose,
        }
    }

    /// A small budget for unit tests and smoke runs (mirrors
    /// [`OptimizerConfig::smoke`]).
    pub fn smoke() -> Self {
        TrainBudget::from_config(OptimizerConfig::smoke())
    }

    /// The standard budget used for all committed protocol assets — the
    /// single source of the per-fidelity presets formerly copied around
    /// the experiment modules.
    ///
    /// The paper burned a CPU-year per protocol on an 80-core machine;
    /// these budgets train in minutes and reproduce the *orderings* the
    /// study is about. `LEARNABILITY_FAST_TRAIN=1` slashes budgets
    /// further for time-boxed retrains (the committed assets' source of
    /// truth in CI), and `LEARNABILITY_VERBOSE` turns on progress logs.
    pub fn for_fidelity(cost: TrainCost) -> Self {
        let mut b = TrainBudget {
            draws_per_eval: 6,
            sim_duration_s: 8.0,
            rounds: 8,
            max_leaves: 8,
            scales: vec![4.0, 1.0],
            threads: 0,
            seed: 0x51C0_2014,
            event_budget: 8_000_000,
            masks: Vec::new(),
            scheduler: Default::default(),
            verbose: std::env::var("LEARNABILITY_VERBOSE").is_ok(),
        };
        if cost == TrainCost::Heavy {
            b.sim_duration_s = 3.0;
            b.draws_per_eval = 5;
            b.rounds = 5;
            b.max_leaves = 5;
            b.event_budget = 4_000_000;
        }
        if std::env::var("LEARNABILITY_FAST_TRAIN").is_ok() {
            b.rounds = b.rounds.min(4);
            b.max_leaves = b.max_leaves.min(4);
            b.draws_per_eval = b.draws_per_eval.min(4);
            b.sim_duration_s = b.sim_duration_s.min(5.0);
            b.scales = vec![4.0];
            b.event_budget = b.event_budget.min(2_000_000);
        }
        b
    }

    /// The equivalent whisker-tree optimizer config (field-for-field, so
    /// tree training through the trait is bit-identical to calling
    /// [`Optimizer`] directly).
    pub fn tree_config(&self) -> OptimizerConfig {
        OptimizerConfig {
            draws_per_eval: self.draws_per_eval,
            sim_duration_s: self.sim_duration_s,
            rounds: self.rounds,
            max_leaves: self.max_leaves,
            scales: self.scales.clone(),
            threads: self.threads,
            seed: self.seed,
            event_budget: self.event_budget,
            masks: self.masks.clone(),
            scheduler: self.scheduler,
            verbose: self.verbose,
        }
    }

    /// The evaluation knobs shared by every trainer.
    pub fn eval_config(&self) -> EvalConfig {
        EvalConfig {
            sim_duration_s: self.sim_duration_s,
            event_budget: self.event_budget,
            threads: self.threads,
            masks: self.masks.clone(),
            scheduler: self.scheduler,
        }
    }
}

/// A protocol-design strategy: turn training scenario models into one
/// trained protocol, evaluating candidates on the shared pool.
///
/// Contract: `train` must be a pure function of `(specs, the trainer's
/// own budget, rng state)` — in particular, bit-identical for any pool
/// size, `threads` setting, and scheduler backend. Trainer randomness
/// must be drawn from `rng` on the calling thread only.
pub trait Trainer {
    /// Short id, as spelled on the CLI (`--trainer tree|genetic`).
    fn id(&self) -> &'static str;

    /// Design a protocol named `name` for the training scenarios.
    fn train(
        &self,
        name: &str,
        specs: &[ScenarioSpec],
        pool: &Arc<EvalPool>,
        rng: &mut SimRng,
    ) -> TrainedProtocol;
}

/// The Remy greedy hill-climb (improve each whisker, split the busiest)
/// behind the [`Trainer`] trait. Thin wrapper over [`Optimizer`]: same
/// config, same RNG stream, bit-identical protocols.
pub struct TreeTrainer {
    cfg: OptimizerConfig,
}

impl TreeTrainer {
    pub fn new(budget: &TrainBudget) -> Self {
        TreeTrainer {
            cfg: budget.tree_config(),
        }
    }

    /// Wrap an exact optimizer config (bit-identity with direct
    /// [`Optimizer`] use is per-field, so this is the no-surprises path
    /// for retraining committed assets).
    pub fn from_config(cfg: OptimizerConfig) -> Self {
        TreeTrainer { cfg }
    }
}

impl Trainer for TreeTrainer {
    fn id(&self) -> &'static str {
        "tree"
    }

    fn train(
        &self,
        name: &str,
        specs: &[ScenarioSpec],
        pool: &Arc<EvalPool>,
        _rng: &mut SimRng,
    ) -> TrainedProtocol {
        // The tree search is fully determined by cfg.seed; the trait rng
        // is left untouched so tree output never depends on it.
        Optimizer::with_pool(specs.to_vec(), self.cfg.clone(), Arc::clone(pool)).optimize(name)
    }
}

/// Genetic population search over serialized whisker genomes.
///
/// Each genome is a [`WhiskerTree`]; its leaf actions serialize into a
/// point of a per-genome action [`ScenarioSpace`] (window multiple and
/// increment on linear axes, intersend on a log axis — the same shape
/// the hill-climb explores geometrically). One generation is:
///
/// 1. score every genome on a fresh common-random-number scenario batch
///    (claim-by-index parallel on the shared [`EvalPool`]);
/// 2. carry the `elites` best genomes over unchanged (deterministic
///    ranking: fitness, then input index);
/// 3. refill the population with tournament winners mutated by
///    [`ScenarioSpace::mutate_with`], occasionally splitting a leaf
///    (structural mutation) while under the budget's leaf cap.
pub struct GeneticTrainer {
    budget: TrainBudget,
    /// Genomes per generation.
    pub population: usize,
    /// Genomes drawn per tournament; the fittest becomes the parent.
    pub tournament: usize,
    /// Top genomes copied unchanged into the next generation.
    pub elites: usize,
    /// Bounded-mutation step as a fraction of each action axis range.
    pub strength: f64,
    /// Per-child probability of a structural split mutation.
    pub split_prob: f64,
}

impl GeneticTrainer {
    pub fn new(budget: TrainBudget) -> Self {
        GeneticTrainer {
            budget,
            population: 10,
            tournament: 3,
            elites: 2,
            strength: 0.15,
            split_prob: 0.2,
        }
    }

    pub fn budget(&self) -> &TrainBudget {
        &self.budget
    }

    /// The action box a genome of `leaves` leaves serializes into: three
    /// axes per leaf, intersend log-spaced like the optimizer's
    /// geometric τ steps.
    pub fn genome_space(leaves: usize) -> ScenarioSpace {
        let mut sp = ScenarioSpace::new("whisker-genome");
        for i in 0..leaves {
            sp = sp
                .with_continuous(
                    format!("m{i}"),
                    Sample::Uniform {
                        lo: MIN_WINDOW_MULTIPLE,
                        hi: MAX_WINDOW_MULTIPLE,
                    },
                )
                .with_continuous(
                    format!("b{i}"),
                    Sample::Uniform {
                        lo: MIN_WINDOW_INCREMENT,
                        hi: MAX_WINDOW_INCREMENT,
                    },
                )
                .with_continuous(
                    format!("tau{i}"),
                    Sample::LogUniform {
                        lo: MIN_INTERSEND_MS,
                        hi: MAX_INTERSEND_MS,
                    },
                );
        }
        sp
    }

    /// Serialize a genome: leaf actions in traversal order.
    pub fn genome_point(tree: &WhiskerTree) -> Vec<f64> {
        tree.leaves()
            .iter()
            .flat_map(|w| {
                [
                    w.action.window_multiple,
                    w.action.window_increment,
                    w.action.intersend_ms,
                ]
            })
            .collect()
    }

    /// Write a serialized point back into the genome's leaf actions.
    pub fn apply_point(tree: &mut WhiskerTree, point: &[f64]) {
        assert_eq!(point.len(), tree.num_leaves() * 3, "genome arity mismatch");
        for (i, chunk) in point.chunks_exact(3).enumerate() {
            tree.set_leaf_action(LeafId(i), Action::new(chunk[0], chunk[1], chunk[2]));
        }
    }

    /// One bounded mutation: maybe split a leaf (structural), then perturb
    /// the serialized action point with `mutate_with`.
    fn mutate_genome(&self, parent: &WhiskerTree, rng: &mut SimRng) -> WhiskerTree {
        let mut child = parent.clone();
        if child.num_leaves() < self.budget.max_leaves && rng.chance(self.split_prob) {
            let leaf = rng.uniform_u32(0, child.num_leaves() as u32 - 1) as usize;
            let dim = rng.uniform_u32(0, SIGNAL_MAX.len() as u32 - 1) as usize;
            child.split_leaf(LeafId(leaf), dim);
        }
        let space = Self::genome_space(child.num_leaves());
        let point = Self::genome_point(&child);
        let mutated = space.mutate_with(&point, rng, self.strength);
        Self::apply_point(&mut child, &mutated);
        child
    }

    /// Best of `tournament` uniform draws (ties go to the lower index, so
    /// selection is deterministic in the rng stream).
    fn tournament_pick(&self, fitness: &[f64], rng: &mut SimRng) -> usize {
        let n = fitness.len();
        let mut best = rng.uniform_u32(0, n as u32 - 1) as usize;
        for _ in 1..self.tournament.max(1) {
            let cand = rng.uniform_u32(0, n as u32 - 1) as usize;
            if fitness[cand] > fitness[best] || (fitness[cand] == fitness[best] && cand < best) {
                best = cand;
            }
        }
        best
    }
}

impl Trainer for GeneticTrainer {
    fn id(&self) -> &'static str {
        "genetic"
    }

    fn train(
        &self,
        name: &str,
        specs: &[ScenarioSpec],
        pool: &Arc<EvalPool>,
        rng: &mut SimRng,
    ) -> TrainedProtocol {
        assert!(
            !specs.is_empty(),
            "trainer needs at least one training spec"
        );
        let cfg = self.budget.eval_config();
        let pop_n = self.population.max(2);
        let generations = self.budget.rounds.max(1);

        // Seeded population: the default whisker plus bounded mutants.
        let seed_tree = WhiskerTree::default_tree();
        let mut population = vec![seed_tree.clone()];
        while population.len() < pop_n {
            population.push(self.mutate_genome(&seed_tree, rng));
        }

        let mut champion = (population[0].clone(), f64::NEG_INFINITY);
        for generation in 0..generations {
            // Fresh common-random-number draws per generation, same seed
            // schedule as the tree optimizer's rounds.
            let scenarios: Arc<[crate::scenario::ConcreteScenario]> = draw_scenarios(
                specs,
                self.budget.draws_per_eval,
                self.budget.seed ^ ((generation as u64 + 1) * 0x9E37),
            )
            .into();
            let fitness = pool.evaluate_each(&scenarios, &population, &cfg);

            // Deterministic ranking: fitness descending, input index as
            // the tie-break (NaN sinks to the bottom).
            let mut order: Vec<usize> = (0..population.len()).collect();
            order.sort_by(|&a, &b| {
                fitness[b]
                    .partial_cmp(&fitness[a])
                    .unwrap_or_else(|| fitness[b].is_nan().cmp(&fitness[a].is_nan()))
                    .then(a.cmp(&b))
            });
            champion = (population[order[0]].clone(), fitness[order[0]]);
            if self.budget.verbose {
                eprintln!(
                    "[genetic] generation {generation}: best {:.4}, {} leaves",
                    fitness[order[0]],
                    population[order[0]].num_leaves()
                );
            }
            if generation + 1 == generations {
                break;
            }

            let mut next = Vec::with_capacity(pop_n);
            for &e in order.iter().take(self.elites.min(pop_n)) {
                next.push(population[e].clone());
            }
            while next.len() < pop_n {
                let parent = self.tournament_pick(&fitness, rng);
                next.push(self.mutate_genome(&population[parent], rng));
            }
            population = next;
        }

        TrainedProtocol {
            name: name.into(),
            tree: champion.0,
            score: champion.1,
            description: format!(
                "genetic trainer: population {pop_n}, {generations} generation(s), \
                 tournament {}, elites {}, {} training spec(s), budget={:?}",
                self.tournament,
                self.elites,
                specs.len(),
                self.budget
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_budget() -> TrainBudget {
        let mut b = TrainBudget::smoke();
        b.rounds = 2;
        b.sim_duration_s = 3.0;
        b.event_budget = 2_000_000;
        b
    }

    #[test]
    fn budget_round_trips_through_optimizer_config() {
        let cfg = OptimizerConfig::default();
        let back = TrainBudget::from_config(cfg.clone()).tree_config();
        assert_eq!(format!("{cfg:?}"), format!("{back:?}"));
        let smoke = TrainBudget::smoke().tree_config();
        assert_eq!(
            format!("{smoke:?}"),
            format!("{:?}", OptimizerConfig::smoke())
        );
    }

    #[test]
    fn tree_trainer_matches_direct_optimizer_exactly() {
        // The trait wrapper must not perturb the optimizer's RNG stream:
        // same config -> bit-identical protocol (this is what keeps the
        // committed assets and goldens frozen across the refactor).
        let specs = vec![ScenarioSpec::calibration()];
        let mut cfg = OptimizerConfig::smoke();
        cfg.seed = 9;
        let direct = Optimizer::new(specs.clone(), cfg.clone()).optimize("direct");
        let pool = Arc::new(EvalPool::new(2));
        let via_trait = TreeTrainer::from_config(cfg).train(
            "via-trait",
            &specs,
            &pool,
            &mut SimRng::from_seed(0),
        );
        assert_eq!(direct.tree, via_trait.tree);
        assert_eq!(direct.score, via_trait.score);
    }

    #[test]
    fn genome_serialization_round_trips() {
        let mut tree = WhiskerTree::default_tree();
        tree.split_leaf(LeafId(0), 0);
        tree.split_leaf(LeafId(1), 2);
        let point = GeneticTrainer::genome_point(&tree);
        assert_eq!(point.len(), 9);
        let mut back = tree.clone();
        GeneticTrainer::apply_point(&mut back, &point);
        assert_eq!(tree, back, "identity round trip");
        let space = GeneticTrainer::genome_space(tree.num_leaves());
        assert!(space.contains(&point), "genome points live inside the box");
    }

    #[test]
    fn genetic_training_is_deterministic_and_improves() {
        let specs = vec![ScenarioSpec::calibration()];
        let trainer = GeneticTrainer::new(quick_budget());
        let pool = Arc::new(EvalPool::new(2));
        let a = trainer.train("a", &specs, &pool, &mut SimRng::from_seed(7));
        let b = trainer.train("b", &specs, &pool, &mut SimRng::from_seed(7));
        assert_eq!(a.tree, b.tree, "same rng seed, same genome");
        assert_eq!(a.score.to_bits(), b.score.to_bits());
        assert!(a.score.is_finite());
        assert!(a.tree.num_leaves() <= trainer.budget().max_leaves);
    }

    #[test]
    fn trainer_ids_are_the_cli_spellings() {
        assert_eq!(TreeTrainer::new(&TrainBudget::smoke()).id(), "tree");
        assert_eq!(GeneticTrainer::new(TrainBudget::smoke()).id(), "genetic");
    }
}
