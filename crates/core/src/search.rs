//! Adversarial scenario search: let the machine find the breaking points.
//!
//! Hand-picked sweeps only probe scenarios someone thought of. Because
//! networks, workloads, and faults are pure validated data, "a scenario"
//! is a point in a [`ScenarioSpace`] and "find where a scheme breaks" is
//! an optimization problem: *minimize* the scheme's omniscient-normalized
//! score over the bounded box spanned by [`adversarial_space`] — link
//! rate/delay/buffer, AQM discipline, workload/churn, reverse-path
//! slowdown, and the [`netsim::topology::FaultSpec`] dimensions
//! (Gilbert–Elliott severity, outage cadence, corruption rate).
//! [`adversarial_space_endpoints`] widens the same box with the
//! receiver-policy axes (stretch-ACK factor, delayed-ACK flush timer);
//! the original space is a frozen prefix of it, and [`realize`] is total
//! over points from either.
//!
//! The optimizer follows the whisker optimizer's coarse-to-fine pattern
//! one level up: a seeded random population first (global coverage), then
//! evolutionary refinement rounds that mutate the worst survivors with
//! [`ScenarioSpace::mutate_with`] (bounded steps, so candidates can never
//! leave the box). Every candidate population is executed through the
//! shared sweep engine ([`execute_sweep`] →
//! [`crate::runner::parallel_try_map_indexed`]), so one pathological
//! candidate becomes a poisoned-cell record, not a dead search.
//!
//! The product is a [`Certificate`]: the found config, its score gap
//! against the omniscient benchmark, and everything needed to replay the
//! exact measurement — seeds, duration, normalization constants, and the
//! IEEE-754 bits of the recorded score. `learnability replay` re-runs
//! committed certificates on both scheduler backends and fails on any
//! bit drift.

use crate::experiments::{mean_normalized_objective, Fidelity};
use crate::omniscient::omniscient;
use crate::runner::{execute_sweep, with_aqm, AqmKind, Scheme, SweepPoint, TEST_EVENT_BUDGET};
use netsim::event::SchedulerKind;
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::rng::SimRng;
use netsim::topology::{dumbbell, FaultSpec};
use netsim::transport::CongestionControl;
use netsim::workload::WorkloadSpec;
use remy::{Sample, ScenarioSpace};
use serde::{Deserialize, Serialize};

/// Axis names of [`adversarial_space`], in declared (draw) order.
pub const AXES: [&str; 11] = [
    "link_mbps",
    "rtt_ms",
    "buffer_bdp",
    "aqm",
    "workload",
    "churn_rate_hz",
    "reverse_slowdown",
    "fault",
    "ge_loss_bad",
    "outage_down_s",
    "corrupt_prob",
];

/// The searchable box: every scenario axis the stack can express as pure
/// data, bounded to ranges where the simulation stays affordable and the
/// omniscient benchmark meaningful. Categorical axes: `aqm` indexes
/// [`AqmKind::ALL`]; `workload` is 0 = 1 s ON/OFF, 1 = always-on,
/// 2 = M/G/∞ churn; `fault` is 0 = none, 1 = Gilbert–Elliott, 2 =
/// scheduled outage, 3 = corruption (the severity axes `ge_loss_bad`,
/// `outage_down_s`, `corrupt_prob` apply to the matching mode and are
/// inert otherwise).
pub fn adversarial_space() -> ScenarioSpace {
    ScenarioSpace::new("adversarial-dumbbell")
        .with_continuous("link_mbps", Sample::LogUniform { lo: 4.0, hi: 64.0 })
        .with_continuous(
            "rtt_ms",
            Sample::Uniform {
                lo: 40.0,
                hi: 300.0,
            },
        )
        .with_continuous("buffer_bdp", Sample::LogUniform { lo: 0.5, hi: 8.0 })
        .with_choice("aqm", AqmKind::ALL.len() as u32)
        .with_choice("workload", 3)
        .with_continuous("churn_rate_hz", Sample::LogUniform { lo: 0.25, hi: 2.0 })
        .with_continuous("reverse_slowdown", Sample::LogUniform { lo: 1.0, hi: 50.0 })
        .with_choice("fault", 4)
        .with_continuous("ge_loss_bad", Sample::Uniform { lo: 0.05, hi: 0.75 })
        .with_continuous("outage_down_s", Sample::LogUniform { lo: 0.05, hi: 1.0 })
        .with_continuous("corrupt_prob", Sample::Uniform { lo: 0.0, hi: 0.05 })
}

/// Stretch factors the `ack_every` choice axis of
/// [`adversarial_space_endpoints`] indexes into (index 0 = the paper's
/// immediate-ACK receiver).
pub const ACK_EVERY_CHOICES: [u32; 5] = [1, 2, 4, 8, 16];

/// [`adversarial_space`] extended with the receiver-policy axes the
/// endpoint redesign opened up: `ack_every` indexes
/// [`ACK_EVERY_CHOICES`] (stretch-ACK factor) and `ack_flush_ms` is the
/// delayed-ACK flush timer. The eleven original axes come first and in
/// the same order, so the base space's sampling sequence is a frozen
/// prefix of this one — committed certificates keep replaying and
/// [`realize`] is total over points from either space.
pub fn adversarial_space_endpoints() -> ScenarioSpace {
    adversarial_space()
        .with_choice("ack_every", ACK_EVERY_CHOICES.len() as u32)
        .with_continuous("ack_flush_ms", Sample::LogUniform { lo: 5.0, hi: 200.0 })
}

/// Realize a point of [`adversarial_space`] as a concrete two-sender
/// dumbbell. Total by construction: the point is first projected into the
/// box ([`ScenarioSpace::clamp`]), the link axes are then written through
/// the range-respecting `NetworkConfig` setters, and the fault spec goes
/// through `try_set_fault` — so even a hand-edited certificate point
/// yields a config that passes `NetworkConfig::validate`.
pub fn realize(space: &ScenarioSpace, point: &[f64]) -> NetworkConfig {
    let p = space.clamp(point);
    let v = |name: &str| space.value(&p, name);
    let workload = match v("workload") as u32 {
        0 => WorkloadSpec::on_off_1s(),
        1 => WorkloadSpec::AlwaysOn,
        _ => WorkloadSpec::churn_mginf(v("churn_rate_hz"), 1.0),
    };
    let mut net = dumbbell(2, 32e6, 0.150, QueueSpec::infinite(), workload);
    let rate = net.set_rate_clamped(0, v("link_mbps") * 1e6, 4.0e6, 64.0e6);
    let rtt = net.set_delay_clamped(0, v("rtt_ms") / 1e3, 0.040, 0.300);
    net.links[0].queue = QueueSpec::drop_tail_bdp(rate, rtt, v("buffer_bdp"));
    let mut net = with_aqm(&net, AqmKind::ALL[v("aqm") as usize]);
    // Strictly-above-1 slowdowns get a real reverse path; at the bottom of
    // the range the paper's uncongested reverse model stays reachable.
    let slowdown = v("reverse_slowdown");
    if slowdown > 1.05 {
        net = net.with_reverse_slowdown(slowdown);
    }
    let fault = match v("fault") as u32 {
        1 => Some(FaultSpec::gilbert_elliott(v("ge_loss_bad"), 0.02, 0.25)),
        2 => Some(FaultSpec::outage_scheduled(3.0, v("outage_down_s"), true)),
        3 => Some(FaultSpec::corruption(v("corrupt_prob"))),
        _ => None,
    };
    if let Some(f) = fault {
        net.try_set_fault(0, f)
            .expect("adversarial_space ranges only produce valid fault specs");
    }
    // Receiver-policy axes, present only in `adversarial_space_endpoints`
    // (guarded by axis_index so base-space points stay realizable).
    if space.axis_index("ack_every").is_some() {
        let k = ACK_EVERY_CHOICES[v("ack_every") as usize];
        let flush_s = match space.axis_index("ack_flush_ms") {
            Some(_) => v("ack_flush_ms") / 1e3,
            None => 0.040,
        };
        // k = 1 realizes the immediate fast path bit-for-bit, so the
        // search box contains the paper's receiver as an interior point.
        net = net.with_receiver(ReceiverSpec::delayed(k, flush_s));
    }
    net
}

/// Compact human-readable rendering of a point (table rows, notes).
pub fn describe(space: &ScenarioSpace, point: &[f64]) -> String {
    let p = space.clamp(point);
    let v = |name: &str| space.value(&p, name);
    let workload = match v("workload") as u32 {
        0 => "on/off 1s".to_string(),
        1 => "always-on".to_string(),
        _ => format!("M/G/inf {:.2}/s", v("churn_rate_hz")),
    };
    let fault = match v("fault") as u32 {
        1 => format!("GE loss {:.2}", v("ge_loss_bad")),
        2 => format!("outage {:.2}s", v("outage_down_s")),
        3 => format!("corrupt {:.3}", v("corrupt_prob")),
        _ => "no fault".to_string(),
    };
    let endpoints = match space.axis_index("ack_every") {
        Some(_) => format!(
            ", ack every {}{}",
            ACK_EVERY_CHOICES[v("ack_every") as usize],
            match space.axis_index("ack_flush_ms") {
                Some(_) => format!(" (flush {:.0} ms)", v("ack_flush_ms")),
                None => String::new(),
            }
        ),
        None => String::new(),
    };
    format!(
        "{:.1} Mbps, {:.0} ms, {:.1} BDP, {}, {}, rev 1/{:.1}x, {}{}",
        v("link_mbps"),
        v("rtt_ms"),
        v("buffer_bdp"),
        AqmKind::ALL[v("aqm") as usize].name(),
        workload,
        v("reverse_slowdown"),
        fault,
        endpoints
    )
}

/// A worst-case certificate: everything needed to state *and reproduce*
/// "this scheme scores `score` (omniscient-normalized) on this config".
/// Embedded verbatim (JSON) in the `adversarial` figure's notes and
/// consumed by `learnability replay`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Certificate {
    /// Scheme label (`tao`, `cubic`, ...).
    pub scheme: String,
    /// Tao asset name to reload the whisker tree from; `None` for the
    /// fixed TCP schemes.
    pub asset: Option<String>,
    /// The found point in [`adversarial_space`], axis order = [`AXES`].
    pub point: Vec<f64>,
    /// The realized network (self-contained: replay needs no sampler).
    pub net: NetworkConfig,
    /// Seeds the score averages over.
    pub seeds: Vec<u64>,
    /// Simulated seconds per run.
    pub duration_s: f64,
    /// Omniscient fair-share throughput used for normalization.
    pub fair_tpt_bps: f64,
    /// Omniscient base delay used for normalization.
    pub base_delay_s: f64,
    /// Mean normalized objective (omniscient = 0; lower is worse).
    pub score: f64,
    /// Exact IEEE-754 bits of `score`; replay compares against this, so
    /// "reproduces" means bit-identical, not approximately equal.
    pub score_bits: u64,
    /// How many candidate configs the search evaluated to find this one.
    pub candidates_evaluated: usize,
}

impl Certificate {
    /// Score gap to the omniscient benchmark (which sits at 0).
    pub fn gap(&self) -> f64 {
        -self.score
    }
}

/// Search budget knobs. Everything is deterministic in `seed`; `threads`
/// only changes wall-clock, never results.
#[derive(Clone, Debug)]
pub struct SearchConfig {
    /// Random candidates in the initial population.
    pub population: usize,
    /// Evolutionary refinement rounds after the random phase.
    pub generations: usize,
    /// Worst candidates kept as parents each round.
    pub survivors: usize,
    /// Mutants bred per parent per round.
    pub children_per_survivor: usize,
    /// Seeds each candidate is scored over.
    pub seeds: std::ops::Range<u64>,
    /// Simulated seconds per run.
    pub duration_s: f64,
    /// Root RNG seed of the search (sampling + mutation draws).
    pub seed: u64,
    /// Sweep-engine worker threads (0 = all cores).
    pub threads: usize,
    /// Mutation step size (fraction of each axis range).
    pub strength: f64,
}

impl SearchConfig {
    /// Budgets per fidelity: quick stays affordable on a 1-core CI box
    /// (14 candidate configs × 2 seeds × 8 s per scheme); full widens the
    /// population and refinement depth.
    pub fn for_fidelity(fidelity: Fidelity) -> Self {
        match fidelity {
            Fidelity::Quick => SearchConfig {
                population: 6,
                generations: 2,
                survivors: 2,
                children_per_survivor: 2,
                seeds: 0..2,
                duration_s: 8.0,
                seed: 0xAD5E_A12C,
                threads: 0,
                strength: 0.35,
            },
            Fidelity::Full => SearchConfig {
                population: 16,
                generations: 4,
                survivors: 3,
                children_per_survivor: 3,
                seeds: 0..4,
                duration_s: 16.0,
                seed: 0xAD5E_A12C,
                threads: 0,
                strength: 0.35,
            },
        }
    }
}

/// What one search produced: the worst case found (if any candidate
/// survived evaluation) plus the harness health trail.
pub struct SearchResult {
    pub certificate: Option<Certificate>,
    /// Candidate configs evaluated (including ones whose cells poisoned).
    pub evaluated: usize,
    /// `"candidate '<desc>' seed <seed>: <panic message>"` per poisoned
    /// cell — a crashing candidate is itself a finding worth surfacing.
    pub poisoned: Vec<String>,
}

/// One scored candidate in the search pool.
struct Scored {
    point: Vec<f64>,
    net: NetworkConfig,
    score: f64,
}

/// Score a batch of candidate points for one scheme through the sweep
/// engine. Candidates whose cells poisoned or whose score is non-finite
/// (no flow ever turned on) are dropped from the pool — a certificate
/// must replay cleanly over its full seed set.
fn evaluate_batch(
    space: &ScenarioSpace,
    batch: &[Vec<f64>],
    scheme: &Scheme,
    cfg: &SearchConfig,
    poisoned: &mut Vec<String>,
) -> Vec<Scored> {
    let points: Vec<SweepPoint> = batch
        .iter()
        .enumerate()
        .map(|(i, p)| {
            SweepPoint::homogeneous(
                format!("cand{i}"),
                i as f64,
                realize(space, p),
                scheme.clone(),
                cfg.seeds.clone(),
                cfg.duration_s,
            )
        })
        .collect();
    let outcomes = execute_sweep(points, cfg.threads);
    let mut scored = Vec::new();
    for (p, outcome) in batch.iter().zip(outcomes) {
        if !outcome.poisoned.is_empty() {
            for (seed, msg) in &outcome.poisoned {
                poisoned.push(format!(
                    "candidate '{}' seed {seed}: {msg}",
                    describe(space, p)
                ));
            }
            continue;
        }
        let omn = omniscient(&outcome.point.net);
        let score = mean_normalized_objective(&outcome.runs, omn[0].throughput_bps, omn[0].delay_s);
        if !score.is_finite() {
            continue;
        }
        scored.push(Scored {
            point: p.clone(),
            net: outcome.point.net,
            score,
        });
    }
    scored
}

/// Find the worst case of `scheme` over [`adversarial_space`]: seeded
/// random search, then `cfg.generations` rounds of bounded mutation around
/// the worst survivors. Deterministic in `cfg.seed` for any thread count.
pub fn find_worst_case(scheme: &Scheme, asset: Option<&str>, cfg: &SearchConfig) -> SearchResult {
    let space = adversarial_space();
    let mut rng = SimRng::from_seed(cfg.seed);
    let mut poisoned = Vec::new();
    let mut evaluated = 0usize;
    let mut pool: Vec<Scored> = Vec::new();
    for generation in 0..=cfg.generations {
        let batch: Vec<Vec<f64>> = if generation == 0 {
            (0..cfg.population)
                .map(|_| space.sample_with(&mut rng))
                .collect()
        } else {
            pool.iter()
                .take(cfg.survivors)
                .map(|s| s.point.clone())
                .collect::<Vec<_>>()
                .iter()
                .flat_map(|parent| {
                    (0..cfg.children_per_survivor)
                        .map(|_| space.mutate_with(parent, &mut rng, cfg.strength))
                        .collect::<Vec<_>>()
                })
                .collect()
        };
        evaluated += batch.len();
        pool.extend(evaluate_batch(&space, &batch, scheme, cfg, &mut poisoned));
        // Worst first. Scores are finite by construction and the sort is
        // stable, so ties resolve by insertion order — deterministic.
        pool.sort_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"));
    }
    let certificate = pool.into_iter().next().map(|best| Certificate {
        scheme: scheme.label(),
        asset: asset.map(str::to_string),
        point: best.point,
        net: best.net,
        seeds: cfg.seeds.clone().collect(),
        duration_s: cfg.duration_s,
        fair_tpt_bps: 0.0, // filled below from the winning net
        base_delay_s: 0.0,
        score: best.score,
        score_bits: best.score.to_bits(),
        candidates_evaluated: evaluated,
    });
    let certificate = certificate.map(|mut c| {
        let omn = omniscient(&c.net);
        c.fair_tpt_bps = omn[0].throughput_bps;
        c.base_delay_s = omn[0].delay_s;
        c
    });
    SearchResult {
        certificate,
        evaluated,
        poisoned,
    }
}

/// Reconstruct the scheme a certificate was issued against: Tao trees are
/// reloaded from the named committed asset, the fixed TCPs by label.
pub fn scheme_for_certificate(cert: &Certificate) -> Result<Scheme, String> {
    if let Some(asset) = &cert.asset {
        let path = remy::serialize::asset_path(asset);
        let trained = remy::serialize::load(&path)
            .map_err(|e| format!("cannot load asset '{asset}' from {}: {e}", path.display()))?;
        return Ok(Scheme::tao(trained.tree, cert.scheme.clone()));
    }
    match cert.scheme.as_str() {
        "cubic" => Ok(Scheme::Cubic),
        "newreno" => Ok(Scheme::NewReno),
        "vegas" => Ok(Scheme::Vegas),
        "pcc" => Ok(Scheme::Pcc),
        other => Err(format!("unknown scheme '{other}' (and no asset named)")),
    }
}

/// Re-measure a certificate's score on the chosen scheduler backend,
/// exactly as the sweep engine measured it: same config, same seeds, same
/// duration, same event budget, same normalization constants. The result
/// must equal `cert.score` bit for bit on *both* backends — that is the
/// reproducibility claim a certificate makes.
pub fn replay(cert: &Certificate, scheme: &Scheme, kind: SchedulerKind) -> f64 {
    let runs: Vec<RunOutcome> = cert
        .seeds
        .iter()
        .map(|&seed| {
            let protocols: Vec<Box<dyn CongestionControl>> =
                (0..cert.net.flows.len()).map(|_| scheme.build()).collect();
            let mut sim = Simulation::with_scheduler(&cert.net, protocols, seed, kind);
            sim.set_event_budget(TEST_EVENT_BUDGET);
            sim.run(SimDuration::from_secs_f64(cert.duration_s))
        })
        .collect();
    mean_normalized_objective(&runs, cert.fair_tpt_bps, cert.base_delay_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sampled_point_realizes_to_a_valid_config() {
        let space = adversarial_space();
        for seed in 0..150 {
            let p = space.sample(seed);
            let net = realize(&space, &p);
            net.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\npoint {p:?}"));
        }
    }

    #[test]
    fn mutation_chains_realize_to_valid_configs() {
        let space = adversarial_space();
        let mut p = space.center();
        for seed in 0..150 {
            p = space.mutate(&p, seed, 0.5);
            let net = realize(&space, &p);
            net.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\npoint {p:?}"));
        }
    }

    #[test]
    fn realize_is_total_even_off_the_box() {
        let space = adversarial_space();
        let wild = vec![1e12, -1.0, 0.0, 99.0, -3.0, 0.0, 1e6, 17.0, 5.0, -1.0, 2.0];
        realize(&space, &wild).validate().unwrap();
    }

    #[test]
    fn endpoints_space_is_a_frozen_superset() {
        let base = adversarial_space();
        let ext = adversarial_space_endpoints();
        for (i, name) in AXES.iter().enumerate() {
            assert_eq!(base.axis_index(name), Some(i));
            assert_eq!(ext.axis_index(name), Some(i), "prefix order frozen");
        }
        assert_eq!(ext.axis_index("ack_every"), Some(AXES.len()));
        assert_eq!(ext.axis_index("ack_flush_ms"), Some(AXES.len() + 1));
        // Sampling draws axis-by-axis, so the base space's sequence must
        // survive as a prefix: same seed, identical first eleven draws —
        // committed certificates' points stay meaningful.
        for seed in 0..20 {
            let b = base.sample(seed);
            let e = ext.sample(seed);
            assert_eq!(&e[..AXES.len()], &b[..], "seed {seed}");
        }
    }

    #[test]
    fn endpoint_points_realize_to_valid_receiver_configs() {
        let space = adversarial_space_endpoints();
        let mut saw_delayed = false;
        for seed in 0..60 {
            let p = space.sample(seed);
            let net = realize(&space, &p);
            net.validate()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\npoint {p:?}"));
            let k = ACK_EVERY_CHOICES[space.value(&space.clamp(&p), "ack_every") as usize];
            let r = net.flows[0]
                .receiver
                .as_ref()
                .expect("endpoint axis sets a receiver on every flow");
            assert_eq!(r.ack_every, k);
            assert_eq!(r.is_immediate(), k == 1);
            if k > 1 {
                saw_delayed = true;
            }
        }
        assert!(saw_delayed, "the choice axis must reach delayed policies");
    }

    #[test]
    fn endpoints_realize_is_total_off_the_box() {
        let space = adversarial_space_endpoints();
        let wild = vec![
            1e12, -1.0, 0.0, 99.0, -3.0, 0.0, 1e6, 17.0, 5.0, -1.0, 2.0, 42.0, -7.0,
        ];
        realize(&space, &wild).validate().unwrap();
    }

    #[test]
    fn describe_names_the_ack_policy_only_when_present() {
        let base = adversarial_space();
        assert!(!describe(&base, &base.center()).contains("ack every"));
        let ext = adversarial_space_endpoints();
        let mut p = ext.center();
        p[ext.axis_index("ack_every").unwrap()] = 2.0; // index 2 -> k = 4
        let d = describe(&ext, &p);
        assert!(d.contains("ack every 4"), "got: {d}");
        assert!(d.contains("flush"), "got: {d}");
    }

    #[test]
    fn describe_names_the_fault_mode() {
        let space = adversarial_space();
        let mut p = space.center();
        p[space.axis_index("fault").unwrap()] = 1.0;
        assert!(describe(&space, &p).contains("GE loss"));
        p[space.axis_index("fault").unwrap()] = 0.0;
        assert!(describe(&space, &p).contains("no fault"));
    }

    #[test]
    fn certificates_roundtrip_through_json() {
        let space = adversarial_space();
        let p = space.sample(11);
        let cert = Certificate {
            scheme: "cubic".into(),
            asset: None,
            net: realize(&space, &p),
            point: p,
            seeds: vec![0, 1],
            duration_s: 8.0,
            fair_tpt_bps: 16e6,
            base_delay_s: 0.075,
            score: -1.25,
            score_bits: (-1.25f64).to_bits(),
            candidates_evaluated: 14,
        };
        let json = serde_json::to_string(&cert).unwrap();
        let back: Certificate = serde_json::from_str(&json).unwrap();
        assert_eq!(cert, back);
        assert_eq!(back.gap(), 1.25);
    }

    #[test]
    fn tiny_search_finds_a_replayable_certificate() {
        // End-to-end on the cheapest possible budget: the certificate's
        // recorded score must replay bit-identically on both scheduler
        // backends (the acceptance contract of `learnability replay`).
        let cfg = SearchConfig {
            population: 2,
            generations: 1,
            survivors: 1,
            children_per_survivor: 1,
            seeds: 0..1,
            duration_s: 2.0,
            seed: 42,
            threads: 0,
            strength: 0.3,
        };
        let res = find_worst_case(&Scheme::Cubic, None, &cfg);
        assert_eq!(res.evaluated, 3);
        let cert = res.certificate.expect("search found a worst case");
        assert!(cert.score.is_finite());
        assert_eq!(cert.score_bits, cert.score.to_bits());
        let scheme = scheme_for_certificate(&cert).unwrap();
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let replayed = replay(&cert, &scheme, kind);
            assert_eq!(
                replayed.to_bits(),
                cert.score_bits,
                "{kind:?}: replayed {replayed} != recorded {}",
                cert.score
            );
        }
    }

    #[test]
    fn search_is_deterministic() {
        let cfg = SearchConfig {
            population: 2,
            generations: 0,
            survivors: 1,
            children_per_survivor: 1,
            seeds: 0..1,
            duration_s: 1.0,
            seed: 7,
            threads: 0,
            strength: 0.3,
        };
        let a = find_worst_case(&Scheme::NewReno, None, &cfg)
            .certificate
            .unwrap();
        let b = find_worst_case(&Scheme::NewReno, None, &cfg)
            .certificate
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn unknown_scheme_without_asset_errors() {
        let space = adversarial_space();
        let p = space.center();
        let cert = Certificate {
            scheme: "mystery".into(),
            asset: None,
            net: realize(&space, &p),
            point: p,
            seeds: vec![0],
            duration_s: 1.0,
            fair_tpt_bps: 1e6,
            base_delay_s: 0.1,
            score: 0.0,
            score_bits: 0f64.to_bits(),
            candidates_evaluated: 0,
        };
        assert!(scheme_for_certificate(&cert).is_err());
    }
}
