//! Plain-text tables and series for experiment output.
//!
//! Every figure and table regenerator prints its data through these types,
//! so `cargo run --bin fig2` produces the rows/series the paper plots.

use std::fmt;

/// A column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = w[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 3 * w.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// A named (x, y) series, one per scheme per figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Linear interpolation at `x` (clamped to the series range).
    pub fn value_at(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN x"));
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x >= x0 && x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
                return Some(y0 + t * (y1 - y0));
            }
        }
        None
    }

    /// Mean y over points whose x falls in `[lo, hi]`.
    pub fn mean_in(&self, lo: f64, hi: f64) -> Option<f64> {
        let ys: Vec<f64> = self
            .points
            .iter()
            .filter(|(x, _)| *x >= lo && *x <= hi)
            .map(|(_, y)| *y)
            .collect();
        if ys.is_empty() {
            None
        } else {
            Some(ys.iter().sum::<f64>() / ys.len() as f64)
        }
    }
}

/// Print a set of series as aligned columns (x, then one column each).
pub fn format_series(title: &str, x_label: &str, series: &[Series]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {title} ==").unwrap();
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs.dedup();
    write!(out, "{:>12}", x_label).unwrap();
    for s in series {
        write!(out, " {:>18}", s.name).unwrap();
    }
    writeln!(out).unwrap();
    for x in xs {
        write!(out, "{:>12.3}", x).unwrap();
        for s in series {
            match s.points.iter().find(|(px, _)| (px - x).abs() < 1e-9) {
                Some((_, y)) => write!(out, " {:>18.4}", y).unwrap(),
                None => write!(out, " {:>18}", "-").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    out
}

/// `log2(x)` convenience used across figure code.
pub fn log2(x: f64) -> f64 {
    x.max(1e-12).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new("demo", &["scheme", "tpt (Mbps)"]);
        t.row(vec!["cubic".into(), "9.41".into()]);
        t.row(vec!["tao-1000x".into(), "10.02".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| cubic     | 9.41       |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn series_interpolation() {
        let mut s = Series::new("t");
        s.push(1.0, 10.0);
        s.push(3.0, 30.0);
        assert_eq!(s.value_at(2.0), Some(20.0));
        assert_eq!(s.value_at(0.0), Some(10.0), "clamped low");
        assert_eq!(s.value_at(9.0), Some(30.0), "clamped high");
        assert_eq!(Series::new("e").value_at(1.0), None);
    }

    #[test]
    fn series_mean_in_window() {
        let mut s = Series::new("t");
        for i in 0..10 {
            s.push(i as f64, (i * 2) as f64);
        }
        assert_eq!(s.mean_in(2.0, 4.0), Some(6.0));
        assert_eq!(s.mean_in(100.0, 200.0), None);
    }

    #[test]
    fn format_series_merges_x_axes() {
        let mut a = Series::new("a");
        a.push(1.0, 0.5);
        let mut b = Series::new("b");
        b.push(2.0, 0.7);
        let out = format_series("fig", "x", &[a, b]);
        assert!(out.contains("fig"));
        // x=1 row has '-' for series b
        let row1: Vec<&str> = out
            .lines()
            .filter(|l| l.trim_start().starts_with("1.000"))
            .collect();
        assert_eq!(row1.len(), 1);
        assert!(row1[0].contains('-'));
    }

    #[test]
    fn log2_is_safe_at_zero() {
        assert!(log2(0.0).is_finite());
        assert_eq!(log2(8.0), 3.0);
    }
}
