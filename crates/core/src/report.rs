//! Structured experiment results and their human-readable rendering.
//!
//! Every experiment's [`summarize`](crate::experiments::Experiment::summarize)
//! produces a [`FigureData`] — a serde-serializable description of the
//! figure/table the paper reports. The JSON artifacts emitted by
//! `learnability run … --json` (under `assets/figures/`) are exactly these
//! structures, and the tables printed to stdout are rendered *from* them by
//! [`render_figure`], so the machine-readable and human-readable outputs can
//! never drift apart.
//!
//! # The `FigureData` schema (version [`FIGURE_SCHEMA_VERSION`])
//!
//! | field | type | meaning |
//! |---|---|---|
//! | `schema_version` | u32 | bumped on any breaking schema change |
//! | `id` | string | experiment id (the `learnability run <id>` key) |
//! | `paper_artifact` | string | which paper figure/table this reproduces |
//! | `charts` | [`ChartData`]\[\] | plotted series groups (one per figure panel) |
//! | `tables` | [`TableData`]\[\] | row/column tables (one per paper table) |
//! | `summary` | [`SummaryItem`]\[\] | headline scalars (ratios, gaps, penalties) |
//! | `notes` | string\[\] | prose findings, printed after the data |
//! | `meta` | [`RunMeta`] | provenance: fidelity, seed set, git describe |
//!
//! A [`ChartData`] holds named [`SeriesData`] whose [`PointData`] carry an
//! `x`, a `y` and an optional 1-σ error `err` (the ellipses of Figs 1, 7
//! and 9). A [`TableData`] is a title, headers and string rows. A
//! [`SummaryItem`] is a stable machine-readable key plus an f64 — the
//! numbers CI diffs across commits without parsing prose.
//!
//! A `threads` field in [`RunMeta`] is deliberately absent: results are
//! bit-identical for any worker count, so thread count is not provenance.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Version of the [`FigureData`] JSON schema. Bump on breaking changes and
/// regenerate `crates/core/tests/golden/figure_schema.json`.
pub const FIGURE_SCHEMA_VERSION: u32 = 1;

/// A column-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let w = self.widths();
        writeln!(f, "== {} ==", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut parts = Vec::new();
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = w[i]));
            }
            writeln!(f, "| {} |", parts.join(" | "))
        };
        line(f, &self.headers)?;
        let total: usize = w.iter().sum::<usize>() + 3 * w.len() + 1;
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// A named (x, y) series, one per scheme per figure.
#[derive(Clone, Debug, PartialEq)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Linear interpolation at `x` (clamped to the series range).
    pub fn value_at(&self, x: f64) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        let mut pts = self.points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN x"));
        if x <= pts[0].0 {
            return Some(pts[0].1);
        }
        if x >= pts[pts.len() - 1].0 {
            return Some(pts[pts.len() - 1].1);
        }
        for w in pts.windows(2) {
            let ((x0, y0), (x1, y1)) = (w[0], w[1]);
            if x >= x0 && x <= x1 {
                let t = if x1 > x0 { (x - x0) / (x1 - x0) } else { 0.0 };
                return Some(y0 + t * (y1 - y0));
            }
        }
        None
    }

    /// Mean y over points whose x falls in `[lo, hi]`.
    pub fn mean_in(&self, lo: f64, hi: f64) -> Option<f64> {
        let ys: Vec<f64> = self
            .points
            .iter()
            .filter(|(x, _)| *x >= lo && *x <= hi)
            .map(|(_, y)| *y)
            .collect();
        if ys.is_empty() {
            None
        } else {
            Some(ys.iter().sum::<f64>() / ys.len() as f64)
        }
    }
}

/// Print a set of series as aligned columns (x, then one column each).
pub fn format_series(title: &str, x_label: &str, series: &[Series]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "== {title} ==").unwrap();
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|(x, _)| *x))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs.dedup();
    write!(out, "{:>12}", x_label).unwrap();
    for s in series {
        write!(out, " {:>18}", s.name).unwrap();
    }
    writeln!(out).unwrap();
    for x in xs {
        write!(out, "{:>12.3}", x).unwrap();
        for s in series {
            match s.points.iter().find(|(px, _)| (px - x).abs() < 1e-9) {
                Some((_, y)) => write!(out, " {:>18.4}", y).unwrap(),
                None => write!(out, " {:>18}", "-").unwrap(),
            }
        }
        writeln!(out).unwrap();
    }
    out
}

/// `log2(x)` convenience used across figure code.
pub fn log2(x: f64) -> f64 {
    x.max(1e-12).log2()
}

// ---------------------------------------------------------------------------
// The serializable result schema.
// ---------------------------------------------------------------------------

/// One (x, y) sample of a plotted series, with an optional 1-σ error bar.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PointData {
    pub x: f64,
    pub y: f64,
    pub err: Option<f64>,
}

/// A named series of [`PointData`] (one scheme on one panel).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesData {
    pub name: String,
    pub points: Vec<PointData>,
}

impl SeriesData {
    /// View as a computational [`Series`] (drops error bars).
    pub fn to_series(&self) -> Series {
        Series {
            name: self.name.clone(),
            points: self.points.iter().map(|p| (p.x, p.y)).collect(),
        }
    }

    /// Lift a computational [`Series`] into the schema (no error bars).
    pub fn from_series(s: &Series) -> Self {
        SeriesData {
            name: s.name.clone(),
            points: s
                .points
                .iter()
                .map(|&(x, y)| PointData { x, y, err: None })
                .collect(),
        }
    }
}

/// One figure panel: a titled group of series over a common x axis.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChartData {
    pub title: String,
    pub x_label: String,
    pub series: Vec<SeriesData>,
}

impl ChartData {
    pub fn from_series(title: impl Into<String>, x_label: impl Into<String>, s: &[Series]) -> Self {
        ChartData {
            title: title.into(),
            x_label: x_label.into(),
            series: s.iter().map(SeriesData::from_series).collect(),
        }
    }
}

/// A paper table as structured rows.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TableData {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl TableData {
    pub fn to_table(&self) -> Table {
        Table {
            title: self.title.clone(),
            headers: self.headers.clone(),
            rows: self.rows.clone(),
        }
    }

    pub fn from_table(t: &Table) -> Self {
        TableData {
            title: t.title.clone(),
            headers: t.headers.clone(),
            rows: t.rows.clone(),
        }
    }
}

/// A headline scalar with a stable machine-readable key, e.g.
/// `("tao_fraction_of_omniscient", 0.94)`. CI diffs these without parsing
/// prose notes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SummaryItem {
    pub key: String,
    pub value: f64,
}

/// Provenance of a figure regeneration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunMeta {
    /// `"quick"` or `"full"`.
    pub fidelity: String,
    /// The seed set each statistics cell was run over. Illustrative trace
    /// cells (e.g. the Fig 8 time-domain runs) keep their pinned seeds
    /// and are not covered by this set.
    pub seeds: Vec<u64>,
    /// `git describe --always --dirty` of the generating tree, or
    /// `"unknown"` outside a git checkout.
    pub git_describe: String,
}

impl RunMeta {
    pub fn unknown() -> Self {
        RunMeta {
            fidelity: "unknown".into(),
            seeds: Vec::new(),
            git_describe: "unknown".into(),
        }
    }
}

/// The structured result of one experiment run — everything a figure of the
/// paper needs, serialized as a JSON artifact under `assets/figures/`.
/// See the module docs for the field-by-field schema.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    pub schema_version: u32,
    pub id: String,
    pub paper_artifact: String,
    pub charts: Vec<ChartData>,
    pub tables: Vec<TableData>,
    pub summary: Vec<SummaryItem>,
    pub notes: Vec<String>,
    pub meta: RunMeta,
}

impl FigureData {
    /// Empty result for an experiment; `summarize` fills the data fields,
    /// the runner fills `meta`.
    pub fn new(id: impl Into<String>, paper_artifact: impl Into<String>) -> Self {
        FigureData {
            schema_version: FIGURE_SCHEMA_VERSION,
            id: id.into(),
            paper_artifact: paper_artifact.into(),
            charts: Vec::new(),
            tables: Vec::new(),
            summary: Vec::new(),
            notes: Vec::new(),
            meta: RunMeta::unknown(),
        }
    }

    pub fn push_summary(&mut self, key: impl Into<String>, value: f64) {
        self.summary.push(SummaryItem {
            key: key.into(),
            value,
        });
    }

    pub fn summary_value(&self, key: &str) -> Option<f64> {
        self.summary.iter().find(|s| s.key == key).map(|s| s.value)
    }

    pub fn chart_series(&self, chart: usize, name: &str) -> Option<Series> {
        self.charts
            .get(chart)?
            .series
            .iter()
            .find(|s| s.name == name)
            .map(SeriesData::to_series)
    }

    /// Serialize to the canonical pretty-JSON artifact form.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("FigureData serializes")
    }

    pub fn from_json(s: &str) -> Result<FigureData, serde_json::Error> {
        serde_json::from_str(s)
    }
}

/// Render a [`FigureData`] as the human-readable report: tables, then
/// series panels, then notes. This is the *only* path from structured
/// results to stdout — figure text and JSON artifacts cannot diverge.
pub fn render_figure(fig: &FigureData) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for t in &fig.tables {
        write!(out, "{}", t.to_table()).unwrap();
    }
    for c in &fig.charts {
        let series: Vec<Series> = c.series.iter().map(SeriesData::to_series).collect();
        write!(out, "{}", format_series(&c.title, &c.x_label, &series)).unwrap();
    }
    for n in &fig.notes {
        writeln!(out, "{n}").unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_formats_aligned() {
        let mut t = Table::new("demo", &["scheme", "tpt (Mbps)"]);
        t.row(vec!["cubic".into(), "9.41".into()]);
        t.row(vec!["tao-1000x".into(), "10.02".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("| cubic     | 9.41       |"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn series_interpolation() {
        let mut s = Series::new("t");
        s.push(1.0, 10.0);
        s.push(3.0, 30.0);
        assert_eq!(s.value_at(2.0), Some(20.0));
        assert_eq!(s.value_at(0.0), Some(10.0), "clamped low");
        assert_eq!(s.value_at(9.0), Some(30.0), "clamped high");
        assert_eq!(Series::new("e").value_at(1.0), None);
    }

    #[test]
    fn series_mean_in_window() {
        let mut s = Series::new("t");
        for i in 0..10 {
            s.push(i as f64, (i * 2) as f64);
        }
        assert_eq!(s.mean_in(2.0, 4.0), Some(6.0));
        assert_eq!(s.mean_in(100.0, 200.0), None);
    }

    #[test]
    fn format_series_merges_x_axes() {
        let mut a = Series::new("a");
        a.push(1.0, 0.5);
        let mut b = Series::new("b");
        b.push(2.0, 0.7);
        let out = format_series("fig", "x", &[a, b]);
        assert!(out.contains("fig"));
        // x=1 row has '-' for series b
        let row1: Vec<&str> = out
            .lines()
            .filter(|l| l.trim_start().starts_with("1.000"))
            .collect();
        assert_eq!(row1.len(), 1);
        assert!(row1[0].contains('-'));
    }

    #[test]
    fn log2_is_safe_at_zero() {
        assert!(log2(0.0).is_finite());
        assert_eq!(log2(8.0), 3.0);
    }

    fn sample_figure() -> FigureData {
        let mut fig = FigureData::new("demo", "Fig 0");
        let mut s = Series::new("cubic");
        s.push(1.0, -0.5);
        s.push(10.0, -0.25);
        fig.charts
            .push(ChartData::from_series("demo chart", "Mbps", &[s]));
        fig.tables.push(TableData {
            title: "demo table".into(),
            headers: vec!["scheme".into(), "tpt".into()],
            rows: vec![vec!["cubic".into(), "9.41 Mbps".into()]],
        });
        fig.push_summary("gap", 0.25);
        fig.notes.push("a finding".into());
        fig.meta = RunMeta {
            fidelity: "quick".into(),
            seeds: vec![0, 1, 2],
            git_describe: "v0-test".into(),
        };
        fig
    }

    #[test]
    fn figure_data_roundtrips_through_json() {
        let fig = sample_figure();
        let json = fig.to_json();
        let back = FigureData::from_json(&json).unwrap();
        assert_eq!(fig, back);
    }

    #[test]
    fn render_shows_tables_series_and_notes() {
        let fig = sample_figure();
        let text = render_figure(&fig);
        assert!(text.contains("== demo table =="));
        assert!(text.contains("== demo chart =="));
        assert!(text.contains("cubic"));
        assert!(text.contains("a finding"));
    }

    #[test]
    fn series_conversions_are_lossless_on_xy() {
        let mut s = Series::new("t");
        s.push(1.0, 2.0);
        let sd = SeriesData::from_series(&s);
        assert_eq!(sd.points[0].err, None);
        assert_eq!(sd.to_series(), s);
    }

    #[test]
    fn summary_lookup() {
        let fig = sample_figure();
        assert_eq!(fig.summary_value("gap"), Some(0.25));
        assert_eq!(fig.summary_value("absent"), None);
        assert!(fig.chart_series(0, "cubic").is_some());
        assert!(fig.chart_series(0, "nope").is_none());
    }
}
