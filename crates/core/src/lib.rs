//! # lcc-core — the learnability-of-congestion-control study
//!
//! The experiment layer of the reproduction of *An Experimental Study of
//! the Learnability of Congestion Control* (SIGCOMM 2014). It combines:
//!
//! * the [`netsim`] simulator (testing substrate),
//! * the [`remy`] protocol-design tool (training substrate),
//! * the [`protocols`] zoo (Tao executor, Cubic, NewReno),
//! * the analytic [`omniscient()`] reference protocol, and
//! * one [`experiments`] module per paper figure/table, all behind the
//!   declarative [`Experiment`] trait.
//!
//! Everything is driven by the `learnability` CLI (in the `bench` crate):
//! `learnability list` enumerates the [`experiments::registry()`],
//! `learnability run <id|all>` executes an experiment's sweep on the
//! parallel engine ([`runner::execute_sweep`]) and emits a structured
//! [`FigureData`] JSON artifact per figure under `assets/figures/`, and
//! `learnability train <id|all>` builds any missing protocol assets under
//! `assets/` (`--force` retrains from scratch), mirroring the paper's
//! published Remy-produced protocols.

pub mod cli;
pub mod experiments;
pub mod omniscient;
pub mod report;
pub mod runner;
pub mod search;

pub use experiments::{run_experiment, run_train_job, Experiment, Fidelity, RunOptions, TrainJob};
#[doc(hidden)]
pub use omniscient as omniscient_mod;
pub use omniscient::{omniscient, proportional_fair, OmniscientFlow};
pub use report::{render_figure, FigureData, Series, Table};
pub use runner::{
    execute_sweep, flow_points, run_homogeneous, run_mix, run_seeds, summarize, with_sfq_codel,
    PointOutcome, Scheme, SummaryStat, SweepPoint,
};
pub use search::{
    adversarial_space, find_worst_case, replay, scheme_for_certificate, Certificate, SearchConfig,
    SearchResult,
};
