//! # lcc-core — the learnability-of-congestion-control study
//!
//! The experiment layer of the reproduction of *An Experimental Study of
//! the Learnability of Congestion Control* (SIGCOMM 2014). It combines:
//!
//! * the [`netsim`] simulator (testing substrate),
//! * the [`remy`] protocol-design tool (training substrate),
//! * the [`protocols`] zoo (Tao executor, Cubic, NewReno),
//! * the analytic [`omniscient()`] reference protocol, and
//! * one [`experiments`] module per paper figure/table.
//!
//! Regeneration binaries live in the `bench` crate (`cargo run --bin
//! fig1` … `fig9`, `sig_knockout`); each prints the same rows/series the
//! paper reports. Training is cached as JSON assets under `assets/`,
//! mirroring the paper's published Remy-produced protocols.

pub mod experiments;
pub mod omniscient;
pub mod report;
pub mod runner;

pub use experiments::Fidelity;
#[doc(hidden)]
pub use omniscient as omniscient_mod;
pub use omniscient::{omniscient, proportional_fair, OmniscientFlow};
pub use report::{Series, Table};
pub use runner::{
    flow_points, run_homogeneous, run_mix, run_seeds, summarize, with_sfq_codel, Scheme,
    SummaryStat,
};
