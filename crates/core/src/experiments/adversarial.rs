//! Extension — adversarial scenario search: instead of asking "how does
//! each scheme do on the scenarios we thought of?", ask the optimizer in
//! reverse: *find the scenario each scheme handles worst*.
//!
//! For every scheme in the study's calibration line-up (the calibration
//! Tao, Cubic, NewReno, Vegas) the [`crate::search`] subsystem minimizes
//! the scheme's omniscient-normalized score over the bounded
//! [`crate::search::adversarial_space`] box — link rate, RTT, buffering,
//! AQM discipline, workload/churn, reverse-path slowdown, and fault
//! processes. The figure's deliverable is one worst-case
//! [`Certificate`] per scheme: the found config, its score gap against
//! the omniscient benchmark, and the exact seeds/duration/normalization
//! needed to reproduce the measurement bit-for-bit (`learnability
//! replay` checks committed certificates on both scheduler backends).
//!
//! The sweep protocol keeps `summarize` a pure function of executed
//! points: `sweep` runs the search and emits one cell per scheme pinned
//! at the found config (the search trail rides in the cell key), and
//! `summarize` re-derives the certified score from that cell's actual
//! runs — so `--seeds` overrides, poisoned cells, and thread counts all
//! flow through the standard engine paths.

use super::{Experiment, Fidelity, TrainJob};
use crate::experiments::{calibration, mean_normalized_objective};
use crate::omniscient::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{PointOutcome, Scheme, SweepPoint};
use crate::search::{adversarial_space, describe, find_worst_case, Certificate, SearchConfig};

/// The schemes searched, in sweep order: the paper's calibration Tao,
/// the fixed TCP baselines, and the PCC-style online learner.
fn schemes() -> Vec<(Scheme, Option<&'static str>)> {
    let tao = calibration::trained_tao();
    vec![
        (Scheme::tao(tao.tree, "tao"), Some(calibration::ASSET)),
        (Scheme::Cubic, None),
        (Scheme::NewReno, None),
        (Scheme::Vegas, None),
        (Scheme::Pcc, None),
    ]
}

/// Cell key: `scheme|asset-or-dash|candidates-evaluated|point-csv`. The
/// point CSV uses `f64`'s shortest-roundtrip `Display`, so parsing it
/// back in `summarize` recovers the exact searched point.
fn encode_key(label: &str, asset: Option<&str>, evaluated: usize, point: &[f64]) -> String {
    let csv: Vec<String> = point.iter().map(|v| v.to_string()).collect();
    format!(
        "{label}|{}|{evaluated}|{}",
        asset.unwrap_or("-"),
        csv.join(",")
    )
}

fn decode_key(key: &str) -> Option<(String, Option<String>, usize, Vec<f64>)> {
    let mut parts = key.splitn(4, '|');
    let label = parts.next()?.to_string();
    let asset = match parts.next()? {
        "-" => None,
        a => Some(a.to_string()),
    };
    let evaluated = parts.next()?.parse().ok()?;
    let point: Option<Vec<f64>> = parts.next()?.split(',').map(|v| v.parse().ok()).collect();
    Some((label, asset, evaluated, point?))
}

/// The adversarial-search experiment (`learnability run adversarial`).
pub struct Adversarial;

impl Experiment for Adversarial {
    fn id(&self) -> &'static str {
        "adversarial"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — adversarial scenario search: per-scheme worst-case certificates \
         over the full scenario box"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno", "vegas", "pcc"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Attacks the published calibration protocol; trains nothing new.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let cfg = SearchConfig::for_fidelity(fidelity);
        let space = adversarial_space();
        schemes()
            .into_iter()
            .enumerate()
            .map(|(i, (scheme, asset))| {
                let res = find_worst_case(&scheme, asset, &cfg);
                // A search where every candidate poisoned still yields a
                // cell (the box center), so the figure always has one row
                // per scheme and the poisoned trail surfaces in notes.
                let (point, net) = match res.certificate {
                    Some(c) => (c.point, c.net),
                    None => {
                        let p = space.center();
                        let net = crate::search::realize(&space, &p);
                        (p, net)
                    }
                };
                SweepPoint::homogeneous(
                    encode_key(&scheme.label(), asset, res.evaluated, &point),
                    i as f64,
                    net,
                    scheme,
                    cfg.seeds.clone(),
                    cfg.duration_s,
                )
            })
            .collect()
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let space = adversarial_space();
        let mut t = Table::new(
            "adversarial search — worst scenario found per scheme (omniscient-normalized \
             score; 0 = omniscient, lower is worse)",
            &[
                "scheme",
                "worst-case scenario",
                "score",
                "gap",
                "candidates",
            ],
        );
        let mut series = Series::new("worst_case_score");
        for p in points {
            let Some((label, asset, evaluated, point)) = decode_key(p.key()) else {
                fig.notes
                    .push(format!("unparseable cell key '{}'", p.key()));
                continue;
            };
            if !p.poisoned.is_empty() || p.runs.is_empty() {
                fig.notes.push(format!(
                    "{label}: no certificate — worst-case cell poisoned \
                     ({} of {} seeds)",
                    p.poisoned.len(),
                    p.point.seeds.clone().count()
                ));
                continue;
            }
            let omn = omniscient(&p.point.net);
            let score = mean_normalized_objective(&p.runs, omn[0].throughput_bps, omn[0].delay_s);
            if !score.is_finite() {
                fig.notes.push(format!(
                    "{label}: no certificate — no flow turned on in the worst-case cell"
                ));
                continue;
            }
            let cert = Certificate {
                scheme: label.clone(),
                asset,
                net: p.point.net.clone(),
                point: point.clone(),
                seeds: p.point.seeds.clone().collect(),
                duration_s: p.point.duration_s,
                fair_tpt_bps: omn[0].throughput_bps,
                base_delay_s: omn[0].delay_s,
                score,
                score_bits: score.to_bits(),
                candidates_evaluated: evaluated,
            };
            t.row(vec![
                label.clone(),
                describe(&space, &point),
                format!("{score:.3}"),
                format!("{:.3}", cert.gap()),
                evaluated.to_string(),
            ]);
            series.push(p.x(), score);
            fig.push_summary(format!("{label}_worst_score"), score);
            fig.notes.push(format!(
                "CERTIFICATE: {}",
                serde_json::to_string(&cert).expect("certificates serialize")
            ));
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "worst-case normalized score by scheme (sweep order: tao, cubic, newreno, vegas, pcc)",
            "scheme index",
            &[series],
        ));
        fig.notes.push(
            "replay committed certificates with `learnability replay` — scores must \
             reproduce bit-identically on both scheduler backends"
                .into(),
        );
        fig
    }
}

/// Parse every `CERTIFICATE:` note out of a figure JSON payload.
pub fn certificates_from_figure(fig: &FigureData) -> Vec<Certificate> {
    fig.notes
        .iter()
        .filter_map(|n| n.strip_prefix("CERTIFICATE: "))
        .filter_map(|json| serde_json::from_str(json).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip_exactly() {
        let point = vec![27.345_678_912_345, 1.0 / 3.0, 0.5, 3.0, 2.0];
        let key = encode_key("tao", Some("tao-calibration"), 14, &point);
        let (label, asset, evaluated, back) = decode_key(&key).unwrap();
        assert_eq!(label, "tao");
        assert_eq!(asset.as_deref(), Some("tao-calibration"));
        assert_eq!(evaluated, 14);
        assert_eq!(back, point, "f64 Display must roundtrip bit-exactly");
        let (_, none_asset, _, _) = decode_key(&encode_key("cubic", None, 3, &point)).unwrap();
        assert_eq!(none_asset, None);
    }

    #[test]
    fn certificates_parse_back_out_of_notes() {
        let space = adversarial_space();
        let p = space.sample(3);
        let cert = Certificate {
            scheme: "cubic".into(),
            asset: None,
            net: crate::search::realize(&space, &p),
            point: p,
            seeds: vec![0, 1],
            duration_s: 8.0,
            fair_tpt_bps: 1e7,
            base_delay_s: 0.1,
            score: -0.5,
            score_bits: (-0.5f64).to_bits(),
            candidates_evaluated: 9,
        };
        let mut fig = FigureData::new("adversarial", "test");
        fig.notes.push("not a certificate".into());
        fig.notes.push(format!(
            "CERTIFICATE: {}",
            serde_json::to_string(&cert).unwrap()
        ));
        let got = certificates_from_figure(&fig);
        assert_eq!(got, vec![cert]);
    }
}
