//! Fig 9 / Table 7 — the price of sender diversity.
//!
//! Can two protocols with *different* objectives share a bottleneck? A
//! throughput-sensitive sender (δ = 0.1) and a delay-sensitive sender
//! (δ = 10) are designed two ways: **naive** — each optimized as if every
//! other sender were of its own type — and **co-optimized** — jointly
//! trained on a network carrying 0–2 senders of each type (Table 7a).
//! Testing (Table 7b) runs each pair on a 10 Mbps / 100 ms no-drop
//! dumbbell, homogeneously and mixed. The paper finds co-optimization lets
//! the delay-sensitive sender keep low delay in the mix, paid for by the
//! throughput-sensitive sender's "niceness".

use super::{fmt_stat, run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob};
use crate::report::{FigureData, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{
    BufferSpec, CountSpec, Objective, RoleSpec, Sample, ScenarioSpec, SenderClassSpec,
    TopologySpec, TrainedProtocol,
};

pub const ASSET_TPT_NAIVE: &str = "tao-tpt-naive";
pub const ASSET_DEL_NAIVE: &str = "tao-del-naive";
pub const ASSET_TPT_COOPT: &str = "tao-tpt-coopt";
pub const ASSET_DEL_COOPT: &str = "tao-del-coopt";

/// Naive training spec: 1–2 senders, all of one δ (Table 7a with the other
/// type absent).
fn naive_spec(delta: f64) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopologySpec::Dumbbell {
            link_mbps: Sample::Fixed(10.0),
            rtt_ms: Sample::Fixed(100.0),
        },
        classes: vec![SenderClassSpec {
            role: RoleSpec::Tao { slot: 0 },
            count: CountSpec::UniformInt { lo: 1, hi: 2 },
            workload: WorkloadSpec::on_off_1s(),
            delta,
        }],
        buffer: BufferSpec::Infinite,
    }
}

/// Train (or load) all four protocols: naive and co-optimized variants of
/// the throughput- and delay-sensitive senders, in
/// `[tpt-naive, del-naive, tpt-coopt, del-coopt]` order.
pub fn trained_taos() -> [TrainedProtocol; 4] {
    let protos: Vec<TrainedProtocol> = Diversity
        .train_specs()
        .iter()
        .flat_map(run_train_job)
        .collect();
    protos
        .try_into()
        .unwrap_or_else(|v: Vec<TrainedProtocol>| panic!("expected 4 protocols, got {}", v.len()))
}

/// Table 7b's network: 10 Mbps, 100 ms, no-drop buffer, 1 s ON/OFF.
pub fn test_network(n_senders: usize) -> NetworkConfig {
    dumbbell(
        n_senders,
        10e6,
        0.100,
        QueueSpec::infinite(),
        WorkloadSpec::on_off_1s(),
    )
}

/// The sweep rows: (group, config, [flow labels]).
const ROWS: [(&str, &str, [&str; 2]); 6] = [
    (
        "homogeneous",
        "2x tpt-naive",
        [ASSET_TPT_NAIVE, ASSET_TPT_NAIVE],
    ),
    (
        "homogeneous",
        "2x del-naive",
        [ASSET_DEL_NAIVE, ASSET_DEL_NAIVE],
    ),
    (
        "homogeneous",
        "2x tpt-coopt",
        [ASSET_TPT_COOPT, ASSET_TPT_COOPT],
    ),
    (
        "homogeneous",
        "2x del-coopt",
        [ASSET_DEL_COOPT, ASSET_DEL_COOPT],
    ),
    ("mixed", "naive mix", [ASSET_TPT_NAIVE, ASSET_DEL_NAIVE]),
    (
        "mixed",
        "co-optimized mix",
        [ASSET_TPT_COOPT, ASSET_DEL_COOPT],
    ),
];

/// The sender-diversity experiment (`learnability run diversity`).
pub struct Diversity;

impl Experiment for Diversity {
    fn id(&self) -> &'static str {
        "diversity"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig 9 / Table 7 — the price of sender diversity"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![
            TrainJob::single(
                ASSET_TPT_NAIVE,
                vec![naive_spec(Objective::throughput_sensitive().delta)],
                train_cfg(TrainCost::Normal),
            ),
            TrainJob::single(
                ASSET_DEL_NAIVE,
                vec![naive_spec(Objective::delay_sensitive().delta)],
                train_cfg(TrainCost::Normal),
            ),
            // Co-optimization trains both slots together on the diversity
            // spec, producing the pair as two assets of one run.
            TrainJob::co_optimized(
                &[ASSET_TPT_COOPT, ASSET_DEL_COOPT],
                vec![ScenarioSpec::diversity()],
                train_cfg(TrainCost::Normal),
                2,
            ),
        ]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let [tpt_naive, del_naive, tpt_coopt, del_coopt] = trained_taos();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let tree_of = |label: &str| match label {
            ASSET_TPT_NAIVE => &tpt_naive.tree,
            ASSET_DEL_NAIVE => &del_naive.tree,
            ASSET_TPT_COOPT => &tpt_coopt.tree,
            _ => &del_coopt.tree,
        };
        ROWS.iter()
            .map(|&(group, config, labels)| {
                let schemes: Vec<Scheme> = labels
                    .iter()
                    .map(|&l| Scheme::tao(tree_of(l).clone(), l))
                    .collect();
                SweepPoint::mix(
                    format!("{group}|{config}"),
                    0.0,
                    test_network(schemes.len()),
                    schemes,
                    seeds.clone(),
                    dur,
                )
            })
            .collect()
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let mut medians: Vec<(String, String, f64, f64)> = Vec::new();
        for (group, title) in [
            ("homogeneous", "Fig 9a — homogeneous (each pair by itself)"),
            (
                "mixed",
                "Fig 9b — mixed network (1 tpt-sender + 1 del-sender)",
            ),
        ] {
            let mut t = Table::new(
                title,
                &["configuration", "sender", "throughput", "queueing delay"],
            );
            for p in points {
                let Some(config) = p.key().strip_prefix(&format!("{group}|")) else {
                    continue;
                };
                for label in p.unique_labels() {
                    let (tpt, qd) = p.flow_points_labeled(&label);
                    let (tpt, qd) = (summarize(&tpt), summarize(&qd));
                    t.row(vec![
                        config.to_string(),
                        label.clone(),
                        fmt_stat(&tpt, " Mbps"),
                        fmt_stat(&qd, " ms"),
                    ]);
                    medians.push((config.to_string(), label, tpt.median, qd.median));
                }
            }
            fig.tables.push(TableData::from_table(&t));
        }

        // In the co-optimized mix, the delay-sensitive sender should see
        // less queueing delay than the throughput-sensitive one.
        let qd_of = |config: &str, label: &str| {
            medians
                .iter()
                .find(|(c, l, _, _)| c == config && l == label)
                .map(|&(_, _, _, qd)| qd)
        };
        if let (Some(tpt_qd), Some(del_qd)) = (
            qd_of("co-optimized mix", ASSET_TPT_COOPT),
            qd_of("co-optimized mix", ASSET_DEL_COOPT),
        ) {
            let gap = tpt_qd - del_qd;
            fig.push_summary("mixed_coopt_delay_gap_ms", gap);
            fig.notes.push(format!(
                "co-optimized mix: delay-sensitive sender sees {gap:.2} ms less queueing delay \
                 than the throughput-sensitive sender (paper: lower delay for Del. sender)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_specs_differ_only_in_delta() {
        let t = naive_spec(0.1);
        let d = naive_spec(10.0);
        assert_eq!(t.classes[0].delta, 0.1);
        assert_eq!(d.classes[0].delta, 10.0);
        assert_eq!(t.topology, d.topology);
        assert_eq!(t.buffer, BufferSpec::Infinite);
    }

    #[test]
    fn test_network_is_no_drop() {
        let net = test_network(2);
        assert_eq!(net.links[0].queue, QueueSpec::infinite());
        assert_eq!(net.links[0].rate_bps, 10e6);
    }

    #[test]
    fn train_specs_include_the_co_optimized_pair() {
        let jobs = Diversity.train_specs();
        assert_eq!(jobs.len(), 3);
        assert_eq!(jobs[2].co_alternations, Some(2));
        assert_eq!(
            jobs[2].assets,
            vec![ASSET_TPT_COOPT.to_string(), ASSET_DEL_COOPT.to_string()]
        );
        let all: Vec<String> = jobs.iter().flat_map(|j| j.assets.clone()).collect();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn rows_pair_the_right_senders() {
        assert_eq!(ROWS.iter().filter(|(g, _, _)| *g == "mixed").count(), 2);
        let coopt = ROWS.last().unwrap();
        assert_eq!(coopt.2, [ASSET_TPT_COOPT, ASSET_DEL_COOPT]);
    }
}
