//! Fig 9 / Table 7 — the price of sender diversity.
//!
//! Can two protocols with *different* objectives share a bottleneck? A
//! throughput-sensitive sender (δ = 0.1) and a delay-sensitive sender
//! (δ = 10) are designed two ways: **naive** — each optimized as if every
//! other sender were of its own type — and **co-optimized** — jointly
//! trained on a network carrying 0–2 senders of each type (Table 7a).
//! Testing (Table 7b) runs each pair on a 10 Mbps / 100 ms no-drop
//! dumbbell, homogeneously and mixed. The paper finds co-optimization lets
//! the delay-sensitive sender keep low delay in the mix, paid for by the
//! throughput-sensitive sender's "niceness".

use super::{fmt_stat, train_cfg, Fidelity, TrainCost};
use crate::report::Table;
use crate::runner::{flow_points, run_seeds, summarize, Scheme, SummaryStat};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{
    BufferSpec, CountSpec, Objective, RoleSpec, Sample, ScenarioSpec, SenderClassSpec,
    TopologySpec, TrainedProtocol,
};
use std::fmt;

pub const ASSET_TPT_NAIVE: &str = "tao-tpt-naive";
pub const ASSET_DEL_NAIVE: &str = "tao-del-naive";
pub const ASSET_TPT_COOPT: &str = "tao-tpt-coopt";
pub const ASSET_DEL_COOPT: &str = "tao-del-coopt";

/// Naive training spec: 1–2 senders, all of one δ (Table 7a with the other
/// type absent).
fn naive_spec(delta: f64) -> ScenarioSpec {
    ScenarioSpec {
        topology: TopologySpec::Dumbbell {
            link_mbps: Sample::Fixed(10.0),
            rtt_ms: Sample::Fixed(100.0),
        },
        classes: vec![SenderClassSpec {
            role: RoleSpec::Tao { slot: 0 },
            count: CountSpec::UniformInt { lo: 1, hi: 2 },
            workload: WorkloadSpec::on_off_1s(),
            delta,
        }],
        buffer: BufferSpec::Infinite,
    }
}

/// Train (or load) all four protocols: naive and co-optimized variants of
/// the throughput- and delay-sensitive senders.
pub fn trained_taos() -> [TrainedProtocol; 4] {
    let tpt_naive = super::tao_asset(
        ASSET_TPT_NAIVE,
        vec![naive_spec(Objective::throughput_sensitive().delta)],
        train_cfg(TrainCost::Normal),
    );
    let del_naive = super::tao_asset(
        ASSET_DEL_NAIVE,
        vec![naive_spec(Objective::delay_sensitive().delta)],
        train_cfg(TrainCost::Normal),
    );

    // Co-optimization trains both slots together on the diversity spec;
    // cache the pair as two assets produced by one run.
    let coopt_pair = || {
        let specs = vec![ScenarioSpec::diversity()];
        let cfg = train_cfg(TrainCost::Normal);
        let opt = remy::Optimizer::new(specs, cfg);
        opt.co_optimize(
            vec![
                protocols::WhiskerTree::default_tree(),
                protocols::WhiskerTree::default_tree(),
            ],
            2,
            &[ASSET_TPT_COOPT, ASSET_DEL_COOPT],
        )
    };
    let tpt_path = remy::serialize::asset_path(ASSET_TPT_COOPT);
    let del_path = remy::serialize::asset_path(ASSET_DEL_COOPT);
    let (tpt_coopt, del_coopt) = match (
        remy::serialize::load(&tpt_path),
        remy::serialize::load(&del_path),
    ) {
        (Ok(a), Ok(b)) => (a, b),
        _ => {
            eprintln!("[learnability] co-optimizing diversity pair (no committed assets)...");
            let mut pair = coopt_pair();
            let b = pair.pop().expect("two protocols");
            let a = pair.pop().expect("two protocols");
            remy::serialize::save(&a, &tpt_path).ok();
            remy::serialize::save(&b, &del_path).ok();
            (a, b)
        }
    };
    [tpt_naive, del_naive, tpt_coopt, del_coopt]
}

/// Table 7b's network: 10 Mbps, 100 ms, no-drop buffer, 1 s ON/OFF.
pub fn test_network(n_senders: usize) -> NetworkConfig {
    dumbbell(
        n_senders,
        10e6,
        0.100,
        QueueSpec::infinite(),
        WorkloadSpec::on_off_1s(),
    )
}

/// Measured operating point of one sender class in one configuration.
#[derive(Clone, Debug)]
pub struct DiversityPoint {
    pub config: String,
    pub sender: String,
    pub throughput: SummaryStat,
    pub queueing_delay: SummaryStat,
}

#[derive(Clone, Debug)]
pub struct DiversityResult {
    /// Fig 9a: each pair running homogeneously (2 senders of one type).
    pub homogeneous: Vec<DiversityPoint>,
    /// Fig 9b: mixed network (1 throughput-sensitive + 1 delay-sensitive).
    pub mixed: Vec<DiversityPoint>,
}

impl DiversityResult {
    pub fn point<'a>(
        rows: &'a [DiversityPoint],
        config: &str,
        sender: &str,
    ) -> Option<&'a DiversityPoint> {
        rows.iter()
            .find(|p| p.config == config && p.sender == sender)
    }

    /// In the co-optimized mix, the delay-sensitive sender should see less
    /// queueing delay than the throughput-sensitive one.
    pub fn mixed_coopt_delay_gap(&self) -> Option<f64> {
        let tpt = Self::point(&self.mixed, "co-optimized mix", ASSET_TPT_COOPT)?;
        let del = Self::point(&self.mixed, "co-optimized mix", ASSET_DEL_COOPT)?;
        Some(tpt.queueing_delay.median - del.queueing_delay.median)
    }
}

impl fmt::Display for DiversityResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (title, rows) in [
            (
                "Fig 9a — homogeneous (each pair by itself)",
                &self.homogeneous,
            ),
            (
                "Fig 9b — mixed network (1 tpt-sender + 1 del-sender)",
                &self.mixed,
            ),
        ] {
            let mut t = Table::new(
                title,
                &["configuration", "sender", "throughput", "queueing delay"],
            );
            for p in rows {
                t.row(vec![
                    p.config.clone(),
                    p.sender.clone(),
                    fmt_stat(&p.throughput, " Mbps"),
                    fmt_stat(&p.queueing_delay, " ms"),
                ]);
            }
            write!(f, "{t}")?;
        }
        if let Some(gap) = self.mixed_coopt_delay_gap() {
            writeln!(
                f,
                "co-optimized mix: delay-sensitive sender sees {:.2} ms less queueing delay \
                 than the throughput-sensitive sender (paper: lower delay for Del. sender)",
                gap
            )?;
        }
        Ok(())
    }
}

fn measure_pair(
    config: &str,
    schemes: &[Scheme],
    labels: &[&str],
    seeds: std::ops::Range<u64>,
    dur: f64,
) -> Vec<DiversityPoint> {
    let net = test_network(schemes.len());
    let outs = run_seeds(&net, schemes, seeds, dur);
    let mut uniq: Vec<&str> = Vec::new();
    for &l in labels {
        if !uniq.contains(&l) {
            uniq.push(l);
        }
    }
    uniq.into_iter()
        .map(|l| {
            let keep: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &x)| x == l)
                .map(|(i, _)| i)
                .collect();
            let (tpt, qd) = flow_points(&outs, |fl| keep.contains(&fl));
            DiversityPoint {
                config: config.into(),
                sender: l.into(),
                throughput: summarize(&tpt),
                queueing_delay: summarize(&qd),
            }
        })
        .collect()
}

/// Run the Fig 9 experiment.
pub fn run(fidelity: Fidelity) -> DiversityResult {
    let [tpt_naive, del_naive, tpt_coopt, del_coopt] = trained_taos();
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let s = |p: &TrainedProtocol, label: &str| Scheme::tao(p.tree.clone(), label);

    let mut homogeneous = Vec::new();
    for (config, proto, label) in [
        ("2x tpt-naive", &tpt_naive, ASSET_TPT_NAIVE),
        ("2x del-naive", &del_naive, ASSET_DEL_NAIVE),
        ("2x tpt-coopt", &tpt_coopt, ASSET_TPT_COOPT),
        ("2x del-coopt", &del_coopt, ASSET_DEL_COOPT),
    ] {
        homogeneous.extend(measure_pair(
            config,
            &[s(proto, label), s(proto, label)],
            &[label, label],
            seeds.clone(),
            dur,
        ));
    }

    let mut mixed = Vec::new();
    mixed.extend(measure_pair(
        "naive mix",
        &[
            s(&tpt_naive, ASSET_TPT_NAIVE),
            s(&del_naive, ASSET_DEL_NAIVE),
        ],
        &[ASSET_TPT_NAIVE, ASSET_DEL_NAIVE],
        seeds.clone(),
        dur,
    ));
    mixed.extend(measure_pair(
        "co-optimized mix",
        &[
            s(&tpt_coopt, ASSET_TPT_COOPT),
            s(&del_coopt, ASSET_DEL_COOPT),
        ],
        &[ASSET_TPT_COOPT, ASSET_DEL_COOPT],
        seeds,
        dur,
    ));

    DiversityResult { homogeneous, mixed }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_specs_differ_only_in_delta() {
        let t = naive_spec(0.1);
        let d = naive_spec(10.0);
        assert_eq!(t.classes[0].delta, 0.1);
        assert_eq!(d.classes[0].delta, 10.0);
        assert_eq!(t.topology, d.topology);
        assert_eq!(t.buffer, BufferSpec::Infinite);
    }

    #[test]
    fn test_network_is_no_drop() {
        let net = test_network(2);
        assert_eq!(net.links[0].queue, QueueSpec::infinite());
        assert_eq!(net.links[0].rate_bps, 10e6);
    }
}
