//! Extension — AQM generality: a Tao trained against drop-tail gateways
//! evaluated across queue disciplines it never saw.
//!
//! Every training scenario in the paper uses FIFO drop-tail queues (§3.1,
//! item 4); the only AQM the paper touches is sfqCoDel, and only under
//! Cubic. This experiment asks the learnability question along the
//! in-network axis instead: take the calibration Tao (designed for the
//! Table 1 drop-tail dumbbell) and run it — unchanged — behind RED, plain
//! CoDel and sfqCoDel gateways of the same buffer size, against Cubic and
//! NewReno under the identical substitution. An AQM reshapes the very
//! congestion signals the whiskers were fitted to (early random drops,
//! sojourn-time drops, per-flow fair queueing), so this probes whether the
//! learned protocol's assumptions about *loss semantics* generalize the
//! way its assumptions about link speed do.

use super::{fmt_stat, mean_normalized_objective, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, with_aqm, AqmKind, PointOutcome, Scheme, SweepPoint};

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

fn schemes(tao: &remy::TrainedProtocol) -> Vec<(String, Scheme)> {
    vec![
        ("tao".into(), Scheme::tao(tao.tree.clone(), "tao")),
        ("cubic".into(), Scheme::Cubic),
        ("newreno".into(), Scheme::NewReno),
    ]
}

/// The AQM-generality experiment (`learnability run aqm`).
pub struct Aqm;

impl Experiment for Aqm {
    fn id(&self) -> &'static str {
        "aqm"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — AQM generality: drop-tail-trained Tao vs RED/CoDel/sfqCoDel gateways"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Reuses the calibration asset: the whole point is evaluating a
        // protocol designed for drop-tail on disciplines it never saw.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let base = calibration::test_network();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for (ki, kind) in AqmKind::ALL.iter().enumerate() {
            let net = with_aqm(&base, *kind);
            for (label, scheme) in schemes(&tao) {
                points.push(SweepPoint::homogeneous(
                    format!("{}|{label}", kind.name()),
                    ki as f64,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let omn = omniscient::omniscient(&calibration::test_network());
        let (fair_tpt, base_delay) = (omn[0].throughput_bps, omn[0].delay_s);

        let mut t = Table::new(
            "AQM generality — 32 Mbps, 150 ms RTT, 2 senders, 5 BDP buffer",
            &[
                "gateway",
                "scheme",
                "throughput",
                "queueing delay",
                "norm. objective",
            ],
        );
        let mut series: Vec<Series> = SCHEMES.iter().map(|s| Series::new(*s)).collect();
        for p in points {
            let (kind, scheme) = p.key().split_once('|').expect("key is gateway|scheme");
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let obj = mean_normalized_objective(&p.runs, fair_tpt, base_delay);
            t.row(vec![
                kind.to_string(),
                scheme.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
                format!("{obj:.3}"),
            ]);
            let si = SCHEMES
                .iter()
                .position(|s| *s == scheme)
                .expect("known scheme");
            series[si].push(p.x(), obj);
            fig.push_summary(format!("{scheme}_{kind}_objective"), obj);
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "normalized objective by gateway discipline \
             (0 = droptail, 1 = red, 2 = codel, 3 = sfqcodel)",
            "gateway",
            &series,
        ));

        // Headline: how much of the Tao's drop-tail operating point
        // survives the worst foreign discipline.
        if let Some(tao) = fig.chart_series(0, "tao") {
            let home = tao.value_at(0.0).unwrap_or(f64::NEG_INFINITY);
            // Foreign disciplines only (x > 0): the home point must not
            // masquerade as its own worst case.
            let worst = tao
                .points
                .iter()
                .filter(|&&(x, _)| x > 0.0)
                .map(|&(_, y)| y)
                .fold(f64::INFINITY, f64::min);
            fig.push_summary("tao_droptail_minus_worst_aqm", home - worst);
            fig.notes.push(format!(
                "tao objective on its training discipline (droptail) {home:.3}; \
                 worst across RED/CoDel/sfqCoDel {worst:.3} \
                 (gap {:.3} — the cost of foreign loss semantics)",
                home - worst
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_every_discipline_and_scheme() {
        // cheap check on the declarative side only (no assets touched):
        // 4 gateways x 3 schemes when the asset is a fixture.
        assert_eq!(AqmKind::ALL.len() * SCHEMES.len(), 12);
        let jobs = Aqm.train_specs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].assets, vec![calibration::ASSET.to_string()]);
    }

    #[test]
    fn objective_normalization_matches_calibration_network() {
        let omn = omniscient::omniscient(&calibration::test_network());
        // p_on = 1/2, 2 senders on 32 Mbps: 24 Mbps expected share.
        assert!((omn[0].throughput_bps - 24e6).abs() / 24e6 < 1e-9);
    }
}
