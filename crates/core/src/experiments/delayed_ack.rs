//! Extension — delayed/stretch ACKs: ack-every-k receivers on a shared uplink.
//!
//! Every scenario in the paper assumes the receiver acknowledges each
//! packet the instant it arrives, so a sender sees one ack per delivered
//! packet and the densest possible congestion signal. Real receivers
//! coalesce: delayed-ACK and stretch-ACK policies (LRO/GRO offload,
//! Wi-Fi/DOCSIS aggregation) acknowledge every k-th packet, rescued by a
//! flush timer. That thins the very signal Remy-designed protocols were
//! trained to read — each ack now covers a k-packet batch, arrives k× less
//! often, and carries the *batch's* timing, not per-packet timing.
//!
//! This experiment crosses the stretch factor k (1 → 16, a 40 ms flush
//! timer) with the shared-uplink slowdown of
//! [`super::shared_uplink`]: ACK thinning matters most exactly where the
//! reverse path is scarce, because each surviving ack is also cheaper to
//! carry. The question is whether the learned protocol's advantage
//! survives an ack stream it never saw during design.

use super::{fmt_stat, mean_normalized_objective, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Senders on the bottleneck (the shared-uplink population, so the
/// reverse link sees real cross-flow ACK interleaving).
const SENDERS: usize = 4;

/// Delayed-ACK flush timer: the classic BSD 40 ms tick. A partial batch
/// never waits longer than this, so k bounds signal thinning, not
/// liveness.
const FLUSH_TIMER_S: f64 = 0.040;

/// Stretch factors swept (k = acknowledge every k-th packet; k = 1 is the
/// paper's immediate-ACK receiver and the bit-identical fast path).
fn stretch_factors(fidelity: Fidelity) -> Vec<u32> {
    match fidelity {
        Fidelity::Quick => vec![1, 4, 16],
        Fidelity::Full => vec![1, 2, 4, 8, 16],
    }
}

/// Reverse-path slowdown factors crossed with k (shared ACK uplink at
/// forward / slowdown, drop-tail).
fn slowdowns(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![1.0, 50.0],
        Fidelity::Full => vec![1.0, 8.0, 50.0],
    }
}

/// The forward network: the calibration bottleneck with four senders.
fn base_network() -> NetworkConfig {
    dumbbell(
        SENDERS,
        32e6,
        0.150,
        QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// The swept network: every receiver acknowledges every `k`-th packet
/// (40 ms flush), all ACKs through one shared drop-tail reverse link at
/// `forward / slowdown`.
fn delayed_network(k: u32, slowdown: f64) -> NetworkConfig {
    base_network()
        .with_shared_reverse(slowdown, |rate, _| {
            QueueSpec::drop_tail_bdp(rate, 0.150, 5.0)
        })
        .with_receiver(ReceiverSpec::delayed(k, FLUSH_TIMER_S))
}

/// The delayed-ACK experiment (`learnability run delayed_ack`).
pub struct DelayedAck;

impl Experiment for DelayedAck {
    fn id(&self) -> &'static str {
        "delayed_ack"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — delayed/stretch ACKs: ack-every-k receivers (k = 1 -> 16, \
         40 ms flush) crossed with a shared ACK uplink (1x -> 1/50x)"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // The calibration Tao: designed against per-packet acknowledgment,
        // evaluated under an ack stream thinned k-fold.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &slowdown in &slowdowns(fidelity) {
            for &k in &stretch_factors(fidelity) {
                let net = delayed_network(k, slowdown);
                for (label, scheme) in [
                    ("tao", Scheme::tao(tao.tree.clone(), "tao")),
                    ("cubic", Scheme::Cubic),
                    ("newreno", Scheme::NewReno),
                ] {
                    points.push(SweepPoint::homogeneous(
                        format!("{slowdown:.0}|{label}"),
                        k as f64,
                        net.clone(),
                        scheme,
                        seeds.clone(),
                        dur,
                    ));
                }
            }
        }
        points
    }

    fn summarize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let omn = omniscient::omniscient(&base_network());
        let (fair_tpt, base_delay) = (omn[0].throughput_bps, omn[0].delay_s);

        let mut t = Table::new(
            "delayed ACKs — 32 Mbps forward, 150 ms RTT, 4 senders, ack-every-k \
             receivers (40 ms flush), shared drop-tail ACK uplink",
            &[
                "ack every",
                "uplink slowdown",
                "scheme",
                "throughput",
                "queueing delay",
                "timeouts/run",
            ],
        );
        let mut series: Vec<Series> = slowdowns(fidelity)
            .iter()
            .flat_map(|sl| {
                SCHEMES
                    .iter()
                    .map(move |s| Series::new(format!("{s}@{sl:.0}x")))
            })
            .collect();
        for p in points {
            let (slowdown, label) = p.key().split_once('|').expect("key is slowdown|scheme");
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let obj = mean_normalized_objective(&p.runs, fair_tpt, base_delay);
            let timeouts: f64 = p
                .runs
                .iter()
                .map(|r| r.flows.iter().map(|f| f.timeouts).sum::<u64>() as f64)
                .sum::<f64>()
                / p.runs.len().max(1) as f64;
            t.row(vec![
                format!("{:.0}", p.x()),
                format!("1/{slowdown}x"),
                label.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
                format!("{timeouts:.1}"),
            ]);
            let name = format!("{label}@{slowdown}x");
            let si = series
                .iter()
                .position(|s| s.name == name)
                .expect("known series");
            series[si].push(p.x(), obj);
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "normalized objective vs ACK stretch factor, by shared-uplink slowdown",
            "k (receiver acknowledges every k-th packet)",
            &series,
        ));

        let k_max = *stretch_factors(fidelity).last().expect("non-empty") as f64;
        for sl in slowdowns(fidelity) {
            for s in SCHEMES {
                if let Some(sr) = fig.chart_series(0, &format!("{s}@{sl:.0}x")) {
                    let at_1 = sr.value_at(1.0).unwrap_or(f64::NEG_INFINITY);
                    let at_k = sr.value_at(k_max).unwrap_or(f64::NEG_INFINITY);
                    fig.push_summary(format!("{s}_{sl:.0}x_objective_at_k1"), at_1);
                    fig.push_summary(format!("{s}_{sl:.0}x_objective_at_k{k_max:.0}"), at_k);
                    fig.push_summary(format!("{s}_{sl:.0}x_stretch_degradation"), at_1 - at_k);
                }
            }
        }
        if let (Some(tao), Some(cubic)) = (
            fig.summary_value("tao_1x_stretch_degradation"),
            fig.summary_value("cubic_1x_stretch_degradation"),
        ) {
            fig.notes.push(format!(
                "ack stream thinned {k_max:.0}-fold on an uncongested uplink: tao \
                 loses {tao:.3} objective vs cubic's {cubic:.3} (positive gap = \
                 the learned protocol depends more on per-packet ack density \
                 than the human-designed baseline)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swept_networks_delay_every_receiver() {
        let net = delayed_network(4, 8.0);
        net.validate().unwrap();
        for f in &net.flows {
            let r = f.receiver.as_ref().expect("receiver spec on every flow");
            assert_eq!(r.ack_every, 4);
            assert_eq!(r.flush_timer_s, Some(FLUSH_TIMER_S));
            assert!(r.rwnd_packets.is_none(), "no rwnd in this sweep");
        }
        let rev = net.links[0].reverse.as_ref().expect("shared reverse");
        assert!(rev.shared);
        assert_eq!(rev.rate_bps, 32e6 / 8.0);
    }

    #[test]
    fn k1_is_the_immediate_fast_path() {
        // The k = 1 anchor must take the pre-redesign immediate-ACK path,
        // so the sweep's baseline is the paper's receiver bit-for-bit.
        let net = delayed_network(1, 1.0);
        for f in &net.flows {
            assert!(f.receiver.as_ref().expect("spec").is_immediate());
        }
    }

    #[test]
    fn grids_anchor_both_ends() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let ks = stretch_factors(f);
            assert_eq!(ks[0], 1, "k=1 anchors at the paper's receiver");
            assert_eq!(*ks.last().unwrap(), 16);
            let sl = slowdowns(f);
            assert_eq!(sl[0], 1.0);
            assert_eq!(*sl.last().unwrap(), 50.0);
        }
    }
}
