//! Extension — flow churn: Poisson flow arrivals swept against the static
//! ON/OFF multiplexing the protocols were trained for.
//!
//! The paper varies the *degree* of multiplexing (Fig 3) but every sender
//! follows the same stationary 1 s ON / 1 s OFF process. Real links see
//! churn: flows arrive as a Poisson process and drain after an
//! exponentially distributed transfer. This experiment fixes ten sender
//! slots on the Fig 3 dumbbell and sweeps the per-slot arrival rate from
//! well below to well above the trained operating point, evaluating the
//! 1–10-way multiplexing Tao (`tao-mux-10`) against Cubic and NewReno. At
//! λ = 1/s with 1 s mean duration the churn process is distributionally
//! identical to the paper's workload (memorylessness), which gives the
//! sweep a built-in consistency anchor against the static baseline; away
//! from it, arrival bursts change how often a protocol must re-acquire the
//! link from a cold start. A parking-lot cross-traffic mix (a churning Tao
//! sharing two bottlenecks with near-continuous NewReno flows) adds the
//! multi-hop contention case.

use super::{
    fmt_stat, mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost,
    TrainJob,
};
use crate::experiments::multiplexing;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::topology::{FlowSpec, LinkSpec};
use remy::{BufferSpec, ScenarioSpec};

/// Asset shared with the multiplexing experiment: the 1–10-way Tao.
pub const ASSET: &str = "tao-mux-10";

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Sender slots on the dumbbell (the trained multiplexing range's top).
const SLOTS: usize = 10;

/// Mean flow duration (seconds); λ sweeps around the paper's 1/s point.
const MEAN_DURATION_S: f64 = 1.0;

fn arrival_rates(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![0.2, 1.0, 5.0],
        Fidelity::Full => vec![0.1, 0.2, 0.5, 1.0, 2.0, 5.0],
    }
}

/// The churn dumbbell: Fig 3's network with churning sender slots.
fn churn_network(arrival_rate_hz: f64) -> NetworkConfig {
    dumbbell(
        SLOTS,
        15e6,
        0.150,
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
        WorkloadSpec::churn(arrival_rate_hz, MEAN_DURATION_S),
    )
}

/// The static-multiplexing baseline the protocols were trained against.
fn static_network() -> NetworkConfig {
    dumbbell(
        SLOTS,
        15e6,
        0.150,
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Parking-lot cross-traffic mix: flow 0 (the scheme under test) churns
/// across both bottlenecks; two near-continuous NewReno flows each pin one.
fn cross_traffic_network() -> NetworkConfig {
    let queue = |rate: f64| QueueSpec::drop_tail_bdp(rate, 0.150, 5.0);
    NetworkConfig {
        links: vec![
            LinkSpec::symmetric(10e6, 0.075, queue(10e6)),
            LinkSpec::symmetric(10e6, 0.075, queue(10e6)),
        ],
        flows: vec![
            FlowSpec {
                route: vec![0, 1],
                workload: WorkloadSpec::churn(1.0, MEAN_DURATION_S),
                receiver: None,
                reverse_data: false,
            },
            FlowSpec {
                route: vec![0],
                workload: WorkloadSpec::almost_continuous(),
                receiver: None,
                reverse_data: false,
            },
            FlowSpec {
                route: vec![1],
                workload: WorkloadSpec::almost_continuous(),
                receiver: None,
                reverse_data: false,
            },
        ],
    }
}

fn fair_share(net: &NetworkConfig) -> f64 {
    omniscient::omniscient(net)[0].throughput_bps
}

/// The flow-churn experiment (`learnability run churn`).
pub struct Churn;

impl Experiment for Churn {
    fn id(&self) -> &'static str {
        "churn"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — flow churn: Poisson arrival rate vs the static multiplexing baseline"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Identical job to the multiplexing experiment's tao-mux-10 slot,
        // so one committed asset serves both.
        vec![TrainJob::single(
            ASSET,
            vec![ScenarioSpec::multiplexing(
                multiplexing::RANGES[1].1,
                BufferSpec::BdpMultiple(5.0),
            )],
            train_cfg(TrainCost::Normal),
        )]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let schemes = |tree: &protocols::WhiskerTree| {
            [
                ("tao", Scheme::tao(tree.clone(), "tao")),
                ("cubic", Scheme::Cubic),
                ("newreno", Scheme::NewReno),
            ]
        };
        let mut points = Vec::new();
        for &rate in &arrival_rates(fidelity) {
            let net = churn_network(rate);
            for (label, scheme) in schemes(&tao.tree) {
                points.push(SweepPoint::homogeneous(
                    format!("churn|{label}"),
                    rate,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        // Static ON/OFF baseline (distributionally = churn at λ = 1/s).
        for (label, scheme) in schemes(&tao.tree) {
            points.push(SweepPoint::homogeneous(
                format!("static|{label}"),
                1.0,
                static_network(),
                scheme,
                seeds.clone(),
                dur,
            ));
        }
        // Parking-lot cross-traffic mix: scheme under test churns across
        // both hops against near-continuous NewReno.
        for (label, scheme) in schemes(&tao.tree) {
            points.push(SweepPoint::mix(
                format!("xtraffic|{label}"),
                0.0,
                cross_traffic_network(),
                vec![scheme, Scheme::NewReno, Scheme::NewReno],
                seeds.clone(),
                dur,
            ));
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let base_delay = 0.075;

        let mut series: Vec<Series> = SCHEMES.iter().map(|s| Series::new(*s)).collect();
        let mut static_obj: Vec<(String, f64)> = Vec::new();
        let mut xt = Table::new(
            "parking-lot cross-traffic (flow 0 churns over both hops, \
             NewReno pins each hop)",
            &["scheme under test", "side", "throughput", "queueing delay"],
        );
        for p in points {
            let (group, label) = p.key().split_once('|').expect("key is group|scheme");
            match group {
                "churn" => {
                    let obj =
                        mean_normalized_objective(&p.runs, fair_share(&p.point.net), base_delay);
                    let si = SCHEMES.iter().position(|s| *s == label).expect("known");
                    series[si].push(p.x(), obj);
                }
                "static" => {
                    let obj =
                        mean_normalized_objective(&p.runs, fair_share(&p.point.net), base_delay);
                    static_obj.push((label.to_string(), obj));
                    fig.push_summary(format!("{label}_static_objective"), obj);
                }
                "xtraffic" => {
                    for side in p.unique_labels() {
                        let (tpt, qd) = p.flow_points_labeled(&side);
                        xt.row(vec![
                            label.to_string(),
                            side.clone(),
                            fmt_stat(&summarize(&tpt), " Mbps"),
                            fmt_stat(&summarize(&qd), " ms"),
                        ]);
                    }
                }
                other => panic!("unknown point group '{other}'"),
            }
        }
        fig.charts.push(ChartData::from_series(
            "normalized objective vs per-slot flow arrival rate \
             (10 slots, mean flow duration 1 s)",
            "arrivals per second",
            &series,
        ));
        fig.tables.push(TableData::from_table(&xt));

        for name in SCHEMES {
            if let Some(s) = fig.chart_series(0, name) {
                if let Some(at_1) = s.value_at(1.0) {
                    fig.push_summary(format!("{name}_churn_objective_at_1hz"), at_1);
                }
                if let Some(&(x_max, y_max)) = s
                    .points
                    .iter()
                    .max_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN x"))
                {
                    fig.push_summary(format!("{name}_churn_objective_at_{x_max:.0}hz"), y_max);
                }
            }
        }
        // Consistency anchor: churn at λ = 1/s is the same process as the
        // static 1 s ON/OFF baseline, so the objectives should agree.
        for (label, s_obj) in &static_obj {
            if let Some(c_obj) = fig.summary_value(&format!("{label}_churn_objective_at_1hz")) {
                let gap = c_obj - *s_obj;
                fig.push_summary(format!("{label}_churn1hz_minus_static"), gap);
                if label == "tao" {
                    fig.notes.push(format!(
                        "consistency anchor: tao churn@1/s objective {c_obj:.3} vs static \
                         ON/OFF {s_obj:.3} (gap {gap:.3}; the processes are \
                         distributionally identical, residual gap is seed noise)"
                    ));
                }
            }
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_and_static_networks_share_everything_but_workload() {
        let c = churn_network(1.0);
        let s = static_network();
        assert_eq!(c.links, s.links);
        assert_eq!(c.flows.len(), s.flows.len());
        // λ = 1/s, d = 1 s: same stationary ON probability as 1s/1s ON/OFF
        assert_eq!(
            omniscient::on_probability(&c.flows[0].workload),
            omniscient::on_probability(&s.flows[0].workload),
        );
        c.validate().unwrap();
    }

    #[test]
    fn cross_traffic_topology_is_a_parking_lot() {
        let net = cross_traffic_network();
        net.validate().unwrap();
        assert_eq!(net.flows[0].route, vec![0, 1]);
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        assert!(matches!(net.flows[0].workload, WorkloadSpec::Churn { .. }));
    }

    #[test]
    fn train_job_matches_multiplexing_asset() {
        let ours = Churn.train_specs().remove(0);
        let theirs = multiplexing::Multiplexing
            .train_specs()
            .into_iter()
            .find(|j| j.assets == vec![ASSET.to_string()])
            .expect("multiplexing declares tao-mux-10");
        assert_eq!(ours.specs, theirs.specs, "one asset must serve both");
    }

    #[test]
    fn arrival_grids_bracket_the_trained_point() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let g = arrival_rates(f);
            assert!(g.contains(&1.0), "anchor at the static-equivalent rate");
            assert!(g.iter().any(|&r| r < 1.0) && g.iter().any(|&r| r > 1.0));
        }
    }
}
