//! Fig 2 / Table 2 — knowledge of link speed.
//!
//! Four Tao protocols are trained for nested link-speed ranges centered on
//! the geometric mean of 1 and 1000 Mbps: 1000× (1–1000), 100× (3.2–320),
//! 10× (10–100) and 2× (22–44). All are then tested across the full
//! 1–1000 Mbps sweep against Cubic and Cubic-over-sfqCoDel, plotting the
//! normalized objective (omniscient = 0). The paper finds only a weak
//! tradeoff between operating range and performance.

use super::{
    log_grid, mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost,
    TrainJob,
};
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series};
use crate::runner::{with_sfq_codel, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};

/// The four trained operating ranges, as (asset name, lo Mbps, hi Mbps).
pub const RANGES: [(&str, f64, f64); 4] = [
    ("tao-1000x", 1.0, 1000.0),
    ("tao-100x", 3.2, 320.0),
    ("tao-10x", 10.0, 100.0),
    ("tao-2x", 22.0, 44.0),
];

/// Train (or load) the four range protocols.
pub fn trained_taos() -> Vec<TrainedProtocol> {
    LinkSpeed
        .train_specs()
        .iter()
        .flat_map(run_train_job)
        .collect()
}

fn test_network(speed_mbps: f64) -> NetworkConfig {
    let rate = speed_mbps * 1e6;
    dumbbell(
        2,
        rate,
        0.150,
        QueueSpec::drop_tail_bdp(rate, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

fn speeds(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => log_grid(1.0, 1000.0, 7),
        Fidelity::Full => log_grid(1.0, 1000.0, 13),
    }
}

/// The link-speed operating-range experiment (`learnability run link_speed`).
pub struct LinkSpeed;

impl Experiment for LinkSpeed {
    fn id(&self) -> &'static str {
        "link_speed"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig 2 / Table 2 — operating range in link speed"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        RANGES
            .iter()
            .map(|&(name, lo, hi)| {
                let cost = if hi >= 300.0 {
                    TrainCost::Heavy // fast links = expensive simulations
                } else {
                    TrainCost::Normal
                };
                TrainJob::single(
                    name,
                    vec![ScenarioSpec::link_speed_range(lo, hi)],
                    train_cfg(cost),
                )
            })
            .collect()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let taos = trained_taos();
        let base_dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &speed in &speeds(fidelity) {
            let net = test_network(speed);
            // Scale test time down at very high speeds to bound event counts.
            let dur = if speed > 300.0 {
                base_dur.min(20.0)
            } else {
                base_dur
            };
            for tao in &taos {
                points.push(SweepPoint::homogeneous(
                    tao.name.clone(),
                    speed,
                    net.clone(),
                    Scheme::tao(tao.tree.clone(), &tao.name),
                    seeds.clone(),
                    dur,
                ));
            }
            points.push(SweepPoint::homogeneous(
                "cubic",
                speed,
                net.clone(),
                Scheme::Cubic,
                seeds.clone(),
                dur,
            ));
            points.push(SweepPoint::homogeneous(
                "cubic-sfqcodel",
                speed,
                with_sfq_codel(&net),
                Scheme::Cubic,
                seeds.clone(),
                dur,
            ));
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let names: Vec<String> = RANGES
            .iter()
            .map(|&(n, _, _)| n.to_string())
            .chain(["cubic".into(), "cubic-sfqcodel".into()])
            .collect();
        let mut series: Vec<Series> = names.iter().map(Series::new).collect();
        for p in points {
            // Omniscient reference for normalization at this speed.
            let omn = omniscient::omniscient(&test_network(p.x()));
            let obj = mean_normalized_objective(&p.runs, omn[0].throughput_bps, omn[0].delay_s);
            let si = names
                .iter()
                .position(|n| n == p.key())
                .expect("known series");
            series[si].push(p.x(), obj);
        }
        fig.charts.push(ChartData::from_series(
            "Fig 2 — normalized objective vs link speed (omniscient = 0)",
            "Mbps",
            &series,
        ));

        // Headline comparison: broad vs narrow protocol inside the 2x range.
        let mean_in = |name: &str, lo: f64, hi: f64| {
            series
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.mean_in(lo, hi))
        };
        if let (Some(broad), Some(narrow)) = (
            mean_in("tao-1000x", 22.0, 44.0),
            mean_in("tao-2x", 22.0, 44.0),
        ) {
            fig.push_summary("broad_vs_narrow_gap_in_2x_range", narrow - broad);
            fig.notes.push(format!(
                "in 22-44 Mbps: tao-1000x objective {broad:.3} vs tao-2x {narrow:.3} \
                 (gap {:.3}; paper found the broad protocol within a few percent \
                 of throughput at higher delay)",
                narrow - broad
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_nested_and_centered() {
        // every range centered on the geometric mean of 1 and 1000
        for &(_, lo, hi) in &RANGES {
            let center = (lo * hi).sqrt();
            assert!(
                (center - 31.62).abs() / 31.62 < 0.05,
                "range [{lo},{hi}] centered at {center}"
            );
        }
        // nested
        for w in RANGES.windows(2) {
            assert!(w[0].1 <= w[1].1 && w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn test_network_buffer_scales_with_speed() {
        let slow = test_network(1.0);
        let fast = test_network(1000.0);
        let cap = |n: &NetworkConfig| match n.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => c,
            _ => panic!("drop tail expected"),
        };
        assert_eq!(cap(&fast), cap(&slow) * 1000);
    }

    #[test]
    fn train_specs_cover_all_four_ranges() {
        let jobs = LinkSpeed.train_specs();
        assert_eq!(jobs.len(), 4);
        let names: Vec<&str> = jobs.iter().map(|j| j.assets[0].as_str()).collect();
        assert_eq!(names, vec!["tao-1000x", "tao-100x", "tao-10x", "tao-2x"]);
    }

    #[test]
    fn quick_sweep_covers_the_grid() {
        // 7 speeds x (4 taos + cubic + cubic-sfqcodel); sweep() would
        // train, so only check the grid shape here.
        assert_eq!(speeds(Fidelity::Quick).len(), 7);
        assert_eq!(speeds(Fidelity::Full).len(), 13);
    }
}
