//! Fig 2 / Table 2 — knowledge of link speed.
//!
//! Four Tao protocols are trained for nested link-speed ranges centered on
//! the geometric mean of 1 and 1000 Mbps: 1000× (1–1000), 100× (3.2–320),
//! 10× (10–100) and 2× (22–44). All are then tested across the full
//! 1–1000 Mbps sweep against Cubic and Cubic-over-sfqCoDel, plotting the
//! normalized objective (omniscient = 0). The paper finds only a weak
//! tradeoff between operating range and performance.

use super::{log_grid, mean_normalized_objective, tao_asset, train_cfg, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::{format_series, Series};
use crate::runner::{run_seeds, with_sfq_codel, Scheme};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};
use std::fmt;

/// The four trained operating ranges, as (asset name, lo Mbps, hi Mbps).
pub const RANGES: [(&str, f64, f64); 4] = [
    ("tao-1000x", 1.0, 1000.0),
    ("tao-100x", 3.2, 320.0),
    ("tao-10x", 10.0, 100.0),
    ("tao-2x", 22.0, 44.0),
];

/// Results for Fig 2: one normalized-objective series per scheme over the
/// link-speed sweep.
#[derive(Clone, Debug)]
pub struct LinkSpeedResult {
    pub series: Vec<Series>,
    pub speeds_mbps: Vec<f64>,
}

impl LinkSpeedResult {
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Mean objective of a scheme within a speed window (for the "within
    /// 3% of the 2x protocol in its design range" comparison).
    pub fn mean_in_range(&self, name: &str, lo: f64, hi: f64) -> Option<f64> {
        self.series_named(name)?.mean_in(lo, hi)
    }
}

impl fmt::Display for LinkSpeedResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            format_series(
                "Fig 2 — normalized objective vs link speed (omniscient = 0)",
                "Mbps",
                &self.series
            )
        )?;
        // Headline comparison: broad vs narrow protocol inside the 2x range.
        if let (Some(broad), Some(narrow)) = (
            self.mean_in_range("tao-1000x", 22.0, 44.0),
            self.mean_in_range("tao-2x", 22.0, 44.0),
        ) {
            writeln!(
                f,
                "in 22-44 Mbps: tao-1000x objective {broad:.3} vs tao-2x {narrow:.3} \
                 (gap {:.3}; paper found the broad protocol within a few percent \
                 of throughput at higher delay)",
                narrow - broad
            )?;
        }
        Ok(())
    }
}

/// Train (or load) the four range protocols.
pub fn trained_taos() -> Vec<TrainedProtocol> {
    RANGES
        .iter()
        .map(|&(name, lo, hi)| {
            let cost = if hi >= 300.0 {
                TrainCost::Heavy // fast links = expensive simulations
            } else {
                TrainCost::Normal
            };
            tao_asset(
                name,
                vec![ScenarioSpec::link_speed_range(lo, hi)],
                train_cfg(cost),
            )
        })
        .collect()
}

fn test_network(speed_mbps: f64) -> NetworkConfig {
    let rate = speed_mbps * 1e6;
    dumbbell(
        2,
        rate,
        0.150,
        QueueSpec::drop_tail_bdp(rate, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Run the Fig 2 sweep.
pub fn run(fidelity: Fidelity) -> LinkSpeedResult {
    let taos = trained_taos();
    let speeds = match fidelity {
        Fidelity::Quick => log_grid(1.0, 1000.0, 7),
        Fidelity::Full => log_grid(1.0, 1000.0, 13),
    };
    // Scale test time down at very high speeds to bound event counts.
    let base_dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let mut series: Vec<Series> = taos
        .iter()
        .map(|t| Series::new(t.name.clone()))
        .chain([Series::new("cubic"), Series::new("cubic-sfqcodel")])
        .collect();

    for &speed in &speeds {
        let net = test_network(speed);
        let sfq_net = with_sfq_codel(&net);
        let dur = if speed > 300.0 {
            base_dur.min(20.0)
        } else {
            base_dur
        };

        // Omniscient reference for normalization at this speed.
        let omn = omniscient::omniscient(&net);
        let fair = omn[0].throughput_bps;
        let base_delay = omn[0].delay_s;

        for (si, tao) in taos.iter().enumerate() {
            let mix = vec![Scheme::tao(tao.tree.clone(), &tao.name); 2];
            let outs = run_seeds(&net, &mix, seeds.clone(), dur);
            series[si].push(speed, mean_normalized_objective(&outs, fair, base_delay));
        }
        let cubic_outs = run_seeds(&net, &[Scheme::Cubic, Scheme::Cubic], seeds.clone(), dur);
        series[4].push(
            speed,
            mean_normalized_objective(&cubic_outs, fair, base_delay),
        );
        let sfq_outs = run_seeds(
            &sfq_net,
            &[Scheme::Cubic, Scheme::Cubic],
            seeds.clone(),
            dur,
        );
        series[5].push(
            speed,
            mean_normalized_objective(&sfq_outs, fair, base_delay),
        );
    }

    LinkSpeedResult {
        series,
        speeds_mbps: speeds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_are_nested_and_centered() {
        // every range centered on the geometric mean of 1 and 1000
        for &(_, lo, hi) in &RANGES {
            let center = (lo * hi).sqrt();
            assert!(
                (center - 31.62).abs() / 31.62 < 0.05,
                "range [{lo},{hi}] centered at {center}"
            );
        }
        // nested
        for w in RANGES.windows(2) {
            assert!(w[0].1 <= w[1].1 && w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn test_network_buffer_scales_with_speed() {
        let slow = test_network(1.0);
        let fast = test_network(1000.0);
        let cap = |n: &NetworkConfig| match n.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => c,
            _ => panic!("drop tail expected"),
        };
        assert_eq!(cap(&fast), cap(&slow) * 1000);
    }
}
