//! Extension — Internet-scale multiplexing: 10² → 10⁴ concurrent churn
//! flows on one bottleneck.
//!
//! Every sweep in the paper — and every extension so far — stops at ~100
//! senders. Real aggregation points multiplex orders of magnitude more:
//! a datacenter incast fan-in or a metro access ring carries thousands
//! of concurrent transfers, each a short M/G/∞ burst, with per-flow fair
//! shares far below one packet per RTT. This experiment sweeps the
//! degree of multiplexing from 10² to 10⁴ slots of unblocked Poisson
//! churn through two shapes:
//!
//! * **incast** — a datacenter-ish dumbbell: 400 Mbps bottleneck, 4 ms
//!   RTT, a 1-BDP drop-tail buffer. Shallow buffering and a tiny RTT
//!   make the regime loss-driven.
//! * **parkinglot** — an access-network two-bottleneck chain (100 Mbps
//!   per hop, 40 ms round-trip contribution each): half the slots cross
//!   both hops (80 ms RTT), the rest contend on a single hop, so
//!   long-path flows fight doubly-bottlenecked discrimination exactly as
//!   in the paper's Fig 5 — but against thousands of single-hop slots.
//!
//! Besides the usual normalized objective, the figure reports
//! *per-decile throughput fairness*: per-slot throughputs sorted and
//! averaged within each decile, plus Jain's index. Mean objective hides
//! starvation — a scheme can post a healthy average while its bottom
//! decile never completes a transfer; the decile profile makes the
//! difference between "fair at scale" and "lucky on average" visible.
//!
//! This sweep is also the engine's scale gate: a 10⁴-flow cell exercises
//! the dense calendar-queue paths, the packet arena and the transport
//! pre-sizing at the population the `sim_events_per_sec_10k` perf-gate
//! metric tracks.

use super::{
    fmt_stat, mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost,
    TrainJob,
};
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use remy::{BufferSpec, ScenarioSpec};

/// Asset shared with the multiplexing experiment's widest range: the
/// 1–100-way Tao, the closest committed protocol to this regime.
pub const ASSET: &str = "tao-mux-100";

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 4] = ["tao", "cubic", "newreno", "pcc"];

/// Topology variants, in series order.
const TOPOS: [&str; 2] = ["incast", "parkinglot"];

/// Mean transfer duration (seconds) of each M/G/∞ slot.
const MEAN_DURATION_S: f64 = 2.0;

/// Per-slot Poisson arrival rate (1/s). With the 2 s mean duration the
/// slot duty is `1 − e^(−λd)` = `1 − e^(−1)` ≈ 0.632, so a 10⁴-slot cell
/// keeps ~6.3k flows concurrently active.
const ARRIVAL_HZ: f64 = 0.5;

/// Incast bottleneck rate (bits/s).
const INCAST_RATE_BPS: f64 = 400e6;

/// Incast minimum RTT (seconds) — datacenter-ish.
const INCAST_RTT_S: f64 = 0.004;

/// Access-network per-hop rate (bits/s).
const ACCESS_RATE_BPS: f64 = 100e6;

/// Round-trip delay contribution of each access hop (seconds); long-path
/// slots cross two hops for an 80 ms RTT.
const ACCESS_HOP_DELAY_S: f64 = 0.040;

/// Slot counts swept (the degree-of-multiplexing axis, log-spaced).
fn flow_counts(fidelity: Fidelity) -> Vec<usize> {
    match fidelity {
        Fidelity::Quick => vec![100, 1_000, 10_000],
        Fidelity::Full => vec![100, 316, 1_000, 3_162, 10_000],
    }
}

/// Fraction of time an M/G/∞ slot is ON.
fn duty() -> f64 {
    1.0 - (-ARRIVAL_HZ * MEAN_DURATION_S).exp()
}

fn churn() -> WorkloadSpec {
    WorkloadSpec::churn_mginf(ARRIVAL_HZ, MEAN_DURATION_S)
}

/// The datacenter-ish incast dumbbell: `n` churn slots into one shallow
/// short-RTT bottleneck.
pub fn incast(n: usize) -> NetworkConfig {
    dumbbell(
        n,
        INCAST_RATE_BPS,
        INCAST_RTT_S,
        QueueSpec::drop_tail_bdp(INCAST_RATE_BPS, INCAST_RTT_S, 1.0),
        churn(),
    )
}

/// The access-network parking lot at scale: a two-bottleneck chain with
/// `n` churn slots. Slot `i` routes over both hops when `i` is even
/// (n/2 long-path flows), otherwise alternates between hop 0 and hop 1
/// (n/4 cross-traffic slots each), so each hop carries 3n/4 slots.
pub fn access_parking_lot(n: usize) -> NetworkConfig {
    let link = |_| LinkSpec {
        rate_bps: ACCESS_RATE_BPS,
        delay_s: ACCESS_HOP_DELAY_S,
        queue: QueueSpec::drop_tail_bdp(ACCESS_RATE_BPS, 2.0 * ACCESS_HOP_DELAY_S, 1.0),
        reverse: None,
        fault: None,
    };
    NetworkConfig {
        links: (0..2).map(link).collect(),
        flows: (0..n)
            .map(|i| FlowSpec {
                route: if i % 2 == 0 {
                    vec![0, 1]
                } else if i % 4 == 1 {
                    vec![0]
                } else {
                    vec![1]
                },
                workload: churn(),
                receiver: None,
                reverse_data: false,
            })
            .collect(),
    }
}

/// Exact proportional-fair expected share of one ON slot among `slots`
/// exchangeable M/G/∞ slots on a `cap_bps` link: `E[C/(K+1)]` with
/// `K ~ Binomial(slots−1, p)`, which collapses to the closed form
/// `C·(1−(1−p)^slots)/(slots·p)` — no O(n) pmf summation, so it stays
/// exact at 10⁴ slots where the subset-enumeration omniscient cannot go.
pub fn exchangeable_fair_share(cap_bps: f64, slots: usize, p_on: f64) -> f64 {
    let n = slots as f64;
    cap_bps * (1.0 - (1.0 - p_on).powf(n)) / (n * p_on)
}

/// Normalization constant for a cell: the incast uses the exact
/// single-link form; the parking lot normalizes every flow against the
/// share on one hop carrying its 3n/4 slots — an approximation (long-path
/// flows see two constraints), but a *constant per cell*, so per-scheme
/// comparisons at one x are unaffected by it.
fn fair_share(topo: &str, n: usize) -> f64 {
    match topo {
        "incast" => exchangeable_fair_share(INCAST_RATE_BPS, n, duty()),
        "parkinglot" => exchangeable_fair_share(ACCESS_RATE_BPS, (3 * n) / 4, duty()),
        other => unreachable!("unknown topology {other}"),
    }
}

/// Mean throughput within each sorted decile (ascending: `[0]` is the
/// most-starved tenth of slots, `[9]` the luckiest).
pub fn decile_means(values: &[f64]) -> [f64; 10] {
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let mut out = [0.0; 10];
    if sorted.is_empty() {
        return out;
    }
    let n = sorted.len();
    for (d, slot) in out.iter_mut().enumerate() {
        let lo = d * n / 10;
        let hi = ((d + 1) * n / 10).max(lo + 1).min(n);
        let chunk = &sorted[lo.min(n - 1)..hi];
        *slot = chunk.iter().sum::<f64>() / chunk.len() as f64;
    }
    out
}

/// Jain's fairness index: `(Σx)² / (n·Σx²)`, 1.0 for perfect equality,
/// `1/n` when one flow takes everything.
pub fn jain_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let s: f64 = values.iter().sum();
    let s2: f64 = values.iter().map(|x| x * x).sum();
    if s2 == 0.0 {
        return 1.0;
    }
    s * s / (values.len() as f64 * s2)
}

/// The Internet-scale multiplexing experiment (`learnability run many_flows`).
pub struct ManyFlows;

impl Experiment for ManyFlows {
    fn id(&self) -> &'static str {
        "many_flows"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — Internet-scale multiplexing: 10^2-10^4 M/G/inf churn flows \
         through incast and access parking-lot bottlenecks, objective + \
         per-decile throughput fairness"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno", "pcc"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Byte-identical to the multiplexing experiment's tao-mux-100
        // job, so the committed asset serves both and nothing retrains.
        vec![TrainJob::single(
            ASSET,
            vec![ScenarioSpec::multiplexing(
                100,
                BufferSpec::BdpMultiple(5.0),
            )],
            train_cfg(TrainCost::Heavy),
        )]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &n in &flow_counts(fidelity) {
            for topo in TOPOS {
                let net = match topo {
                    "incast" => incast(n),
                    _ => access_parking_lot(n),
                };
                for (label, scheme) in [
                    ("tao", Scheme::tao(tao.tree.clone(), "tao")),
                    ("cubic", Scheme::Cubic),
                    ("newreno", Scheme::NewReno),
                    ("pcc", Scheme::Pcc),
                ] {
                    points.push(SweepPoint::homogeneous(
                        format!("{topo}|{label}"),
                        n as f64,
                        net.clone(),
                        scheme,
                        seeds.clone(),
                        dur,
                    ));
                }
            }
        }
        points
    }

    fn summarize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let max_n = *flow_counts(fidelity).last().unwrap() as f64;

        let mut obj_series: Vec<Series> = TOPOS
            .iter()
            .flat_map(|t| SCHEMES.iter().map(move |s| Series::new(format!("{s}@{t}"))))
            .collect();
        let mut decile_series: Vec<Series> = TOPOS
            .iter()
            .flat_map(|t| SCHEMES.iter().map(move |s| Series::new(format!("{s}@{t}"))))
            .collect();
        let mut t = Table::new(
            "Internet-scale churn — incast (400 Mbps, 4 ms) and access \
             parking lot (2x100 Mbps, 80 ms long path), M/G/inf slots at \
             duty ~0.63",
            &[
                "slots",
                "topology",
                "scheme",
                "throughput",
                "queueing delay",
                "jain",
            ],
        );
        for p in points {
            let (topo, label) = p.key().split_once('|').expect("key is topo|scheme");
            let n = p.x() as usize;
            let share = fair_share(topo, n);
            let obj = mean_normalized_objective(&p.runs, share, base_delay(topo));
            let name = format!("{label}@{topo}");
            let si = obj_series
                .iter()
                .position(|s| s.name == name)
                .expect("known series");
            obj_series[si].push(p.x(), obj);
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let jain = jain_index(&tpt);
            t.row(vec![
                format!("{n}"),
                topo.to_string(),
                label.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
                format!("{jain:.3}"),
            ]);
            if p.x() == max_n {
                // Decile profile of the widest cell, normalized by the
                // cell's fair share so both topologies plot on one axis.
                for (d, m) in decile_means(&tpt).iter().enumerate() {
                    decile_series[si].push((d + 1) as f64, m * 1e6 / share);
                }
                fig.push_summary(format!("{label}_{topo}_jain_at_{n}"), jain);
                fig.push_summary(format!("{label}_{topo}_objective_at_{n}"), obj);
            }
        }
        fig.charts.push(ChartData::from_series(
            "normalized objective vs degree of multiplexing (M/G/inf churn slots)",
            "concurrent churn slots",
            &obj_series,
        ));
        fig.charts.push(ChartData::from_series(
            format!(
                "per-decile throughput (fraction of fair share) at {} slots — \
                 ascending deciles: [1] = most-starved tenth",
                max_n as usize
            ),
            "throughput decile",
            &decile_series,
        ));
        fig.tables.push(TableData::from_table(&t));

        if let (Some(tao), Some(cubic)) = (
            fig.summary_value(&format!("tao_incast_jain_at_{}", max_n as usize)),
            fig.summary_value(&format!("cubic_incast_jain_at_{}", max_n as usize)),
        ) {
            fig.notes.push(format!(
                "incast at {} slots: Jain fairness {tao:.3} (tao) vs {cubic:.3} \
                 (cubic) — per-flow fair share is ~{:.0} kbit/s, far below one \
                 packet per RTT, so the decile profile (chart 2) separates \
                 schemes that starve their bottom decile from schemes that \
                 degrade evenly",
                max_n as usize,
                fair_share("incast", max_n as usize) / 1e3,
            ));
        }
        fig
    }
}

/// Baseline one-way delay for the objective's delay normalization.
fn base_delay(topo: &str) -> f64 {
    match topo {
        "incast" => INCAST_RTT_S / 2.0,
        _ => ACCESS_HOP_DELAY_S, // long path: 2 hops x 20 ms one-way
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::multiplexing;
    use crate::omniscient;

    #[test]
    fn networks_validate_at_every_swept_scale() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            for &n in &flow_counts(f) {
                incast(n).validate().unwrap();
                access_parking_lot(n).validate().unwrap();
            }
        }
    }

    #[test]
    fn parking_lot_splits_slots_three_to_four_per_hop() {
        let net = access_parking_lot(1000);
        assert_eq!(net.flows.len(), 1000);
        let long = net.flows.iter().filter(|f| f.route.len() == 2).count();
        let hop0 = net.flows.iter().filter(|f| f.route.contains(&0)).count();
        let hop1 = net.flows.iter().filter(|f| f.route.contains(&1)).count();
        assert_eq!(long, 500);
        assert_eq!(hop0, 750);
        assert_eq!(hop1, 750);
    }

    #[test]
    fn closed_form_fair_share_matches_omniscient_binomial() {
        // The closed form must agree with the omniscient model's exact
        // binomial aggregation where the latter is computable.
        for n in [2usize, 5, 10, 50] {
            let net = incast(n);
            let expect = omniscient::omniscient(&net)[0].throughput_bps;
            let got = exchangeable_fair_share(INCAST_RATE_BPS, n, duty());
            assert!(
                (got - expect).abs() / expect < 1e-9,
                "n={n}: closed form {got} vs omniscient {expect}"
            );
        }
    }

    #[test]
    fn deciles_and_jain_on_known_vectors() {
        let even = vec![5.0; 40];
        assert!((jain_index(&even) - 1.0).abs() < 1e-12);
        assert!(decile_means(&even).iter().all(|&m| (m - 5.0).abs() < 1e-12));

        // 0..20: decile d averages its two members.
        let ramp: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let d = decile_means(&ramp);
        assert_eq!(d[0], 0.5);
        assert_eq!(d[9], 18.5);
        // One hog among n starving flows drives Jain toward 1/n.
        let mut hog = vec![0.0; 9];
        hog.push(100.0);
        assert!((jain_index(&hog) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn train_job_matches_multiplexing_asset() {
        let ours = ManyFlows.train_specs().remove(0);
        let theirs = multiplexing::Multiplexing
            .train_specs()
            .into_iter()
            .find(|j| j.assets == vec![ASSET.to_string()])
            .expect("multiplexing declares tao-mux-100");
        assert_eq!(ours.specs, theirs.specs, "one asset must serve both");
    }

    #[test]
    fn sweep_grid_reaches_ten_thousand() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let g = flow_counts(f);
            assert_eq!(*g.first().unwrap(), 100);
            assert_eq!(*g.last().unwrap(), 10_000);
        }
    }
}
