//! Fig 3 / Table 3 — knowledge of the degree of multiplexing.
//!
//! Five Tao protocols are trained on a 15 Mbps dumbbell with the number of
//! senders drawn from 1–2, 1–10, 1–20, 1–50 and 1–100, then all are tested
//! with 1 to 100 senders under two buffer models: 5 BDP drop-tail, and an
//! infinite "no drop" buffer. The paper finds a genuine tradeoff: training
//! for high multiplexing sacrifices performance with few senders, and
//! protocols trained for few senders collapse at 100 (large queues or
//! repeated drops).

use super::{mean_normalized_objective, tao_asset, train_cfg, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::{format_series, Series};
use crate::runner::{run_seeds, with_sfq_codel, Scheme};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{BufferSpec, ScenarioSpec, TrainedProtocol};
use std::fmt;

/// Trained multiplexing ranges: (asset name, max senders in training).
pub const RANGES: [(&str, u32); 5] = [
    ("tao-mux-2", 2),
    ("tao-mux-10", 10),
    ("tao-mux-20", 20),
    ("tao-mux-50", 50),
    ("tao-mux-100", 100),
];

/// One panel of Fig 3 (a buffer model) as a set of series.
#[derive(Clone, Debug)]
pub struct MultiplexingPanel {
    pub buffer_label: String,
    pub series: Vec<Series>,
}

#[derive(Clone, Debug)]
pub struct MultiplexingResult {
    pub panels: Vec<MultiplexingPanel>,
    pub sender_counts: Vec<usize>,
}

impl MultiplexingResult {
    pub fn panel(&self, label: &str) -> Option<&MultiplexingPanel> {
        self.panels.iter().find(|p| p.buffer_label == label)
    }
}

impl fmt::Display for MultiplexingResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.panels {
            write!(
                f,
                "{}",
                format_series(
                    &format!(
                        "Fig 3 ({}) — normalized objective vs number of senders",
                        p.buffer_label
                    ),
                    "senders",
                    &p.series
                )
            )?;
        }
        // Headline: the narrow protocol's collapse at the top of the range.
        if let Some(panel) = self.panels.first() {
            let at = |name: &str, x: f64| {
                panel
                    .series
                    .iter()
                    .find(|s| s.name == name)
                    .and_then(|s| s.value_at(x))
            };
            if let (Some(narrow), Some(broad)) = (at("tao-mux-2", 100.0), at("tao-mux-100", 100.0))
            {
                writeln!(
                    f,
                    "at 100 senders: tao-mux-2 objective {narrow:.3} vs tao-mux-100 {broad:.3} \
                     (paper: narrow training collapses at high multiplexing)"
                )?;
            }
            if let (Some(narrow), Some(broad)) = (at("tao-mux-2", 1.0), at("tao-mux-100", 1.0)) {
                writeln!(
                    f,
                    "at 1 sender:    tao-mux-2 objective {narrow:.3} vs tao-mux-100 {broad:.3} \
                     (paper: broad training costs throughput at low multiplexing)"
                )?;
            }
        }
        Ok(())
    }
}

/// Train (or load) the five multiplexing protocols (Table 3a).
pub fn trained_taos() -> Vec<TrainedProtocol> {
    RANGES
        .iter()
        .map(|&(name, n)| {
            let cost = if n >= 50 {
                TrainCost::Heavy
            } else {
                TrainCost::Normal
            };
            tao_asset(
                name,
                vec![ScenarioSpec::multiplexing(n, BufferSpec::BdpMultiple(5.0))],
                train_cfg(cost),
            )
        })
        .collect()
}

fn test_network(n_senders: usize, infinite_buffer: bool) -> NetworkConfig {
    let queue = if infinite_buffer {
        QueueSpec::infinite()
    } else {
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0)
    };
    dumbbell(n_senders, 15e6, 0.150, queue, WorkloadSpec::on_off_1s())
}

/// Expected per-sender omniscient throughput with `n` exchangeable ON/OFF
/// senders (p = 1/2) on 15 Mbps.
fn fair_share(n: usize) -> f64 {
    let net = test_network(n, true);
    omniscient::omniscient(&net)[0].throughput_bps
}

/// Run the Fig 3 sweep (both panels).
pub fn run(fidelity: Fidelity) -> MultiplexingResult {
    let taos = trained_taos();
    let counts: Vec<usize> = match fidelity {
        Fidelity::Quick => vec![1, 2, 10, 50, 100],
        Fidelity::Full => vec![1, 2, 5, 10, 20, 35, 50, 75, 100],
    };
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let mut panels = Vec::new();
    for (buffer_label, infinite) in [("buffer 5x BDP", false), ("no packet drops", true)] {
        let mut series: Vec<Series> = taos
            .iter()
            .map(|t| Series::new(t.name.clone()))
            .chain([Series::new("cubic"), Series::new("cubic-sfqcodel")])
            .collect();
        for &n in &counts {
            let net = test_network(n, infinite);
            let fair = fair_share(n);
            let base_delay = 0.075;
            for (si, tao) in taos.iter().enumerate() {
                let mix = vec![Scheme::tao(tao.tree.clone(), &tao.name); n];
                let outs = run_seeds(&net, &mix, seeds.clone(), dur);
                series[si].push(n as f64, mean_normalized_objective(&outs, fair, base_delay));
            }
            let cubic_mix = vec![Scheme::Cubic; n];
            let outs = run_seeds(&net, &cubic_mix, seeds.clone(), dur);
            series[taos.len()].push(n as f64, mean_normalized_objective(&outs, fair, base_delay));
            let sfq_net = with_sfq_codel(&net);
            let outs = run_seeds(&sfq_net, &cubic_mix, seeds.clone(), dur);
            series[taos.len() + 1]
                .push(n as f64, mean_normalized_objective(&outs, fair, base_delay));
        }
        panels.push(MultiplexingPanel {
            buffer_label: buffer_label.into(),
            series,
        });
    }

    MultiplexingResult {
        panels,
        sender_counts: counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_shrinks_with_senders() {
        let f1 = fair_share(1);
        let f10 = fair_share(10);
        let f100 = fair_share(100);
        assert!(f1 > f10 && f10 > f100);
        // Single ON/OFF sender alone gets the whole link when on.
        assert!((f1 - 15e6).abs() / 15e6 < 1e-9);
        // With 100 senders at p=1/2, a sender shares with ~49.5 others.
        assert!(f100 < 15e6 / 40.0 && f100 > 15e6 / 60.0, "f100={f100}");
    }

    #[test]
    fn test_networks_match_table_3b() {
        let finite = test_network(100, false);
        assert_eq!(finite.flows.len(), 100);
        assert_eq!(finite.links[0].rate_bps, 15e6);
        let infinite = test_network(3, true);
        assert_eq!(
            infinite.links[0].queue,
            QueueSpec::DropTail {
                capacity_bytes: None
            }
        );
    }
}
