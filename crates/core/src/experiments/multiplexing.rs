//! Fig 3 / Table 3 — knowledge of the degree of multiplexing.
//!
//! Five Tao protocols are trained on a 15 Mbps dumbbell with the number of
//! senders drawn from 1–2, 1–10, 1–20, 1–50 and 1–100, then all are tested
//! with 1 to 100 senders under two buffer models: 5 BDP drop-tail, and an
//! infinite "no drop" buffer. The paper finds a genuine tradeoff: training
//! for high multiplexing sacrifices performance with few senders, and
//! protocols trained for few senders collapse at 100 (large queues or
//! repeated drops).

use super::{
    mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob,
};
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series};
use crate::runner::{with_sfq_codel, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{BufferSpec, ScenarioSpec, TrainedProtocol};

/// Trained multiplexing ranges: (asset name, max senders in training).
pub const RANGES: [(&str, u32); 5] = [
    ("tao-mux-2", 2),
    ("tao-mux-10", 10),
    ("tao-mux-20", 20),
    ("tao-mux-50", 50),
    ("tao-mux-100", 100),
];

/// The two buffer models of Fig 3's panels: (panel label, infinite?).
const PANELS: [(&str, bool); 2] = [("buffer 5x BDP", false), ("no packet drops", true)];

/// Train (or load) the five multiplexing protocols (Table 3a).
pub fn trained_taos() -> Vec<TrainedProtocol> {
    Multiplexing
        .train_specs()
        .iter()
        .flat_map(run_train_job)
        .collect()
}

fn test_network(n_senders: usize, infinite_buffer: bool) -> NetworkConfig {
    let queue = if infinite_buffer {
        QueueSpec::infinite()
    } else {
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0)
    };
    dumbbell(n_senders, 15e6, 0.150, queue, WorkloadSpec::on_off_1s())
}

/// Expected per-sender omniscient throughput with `n` exchangeable ON/OFF
/// senders (p = 1/2) on 15 Mbps.
fn fair_share(n: usize) -> f64 {
    let net = test_network(n, true);
    omniscient::omniscient(&net)[0].throughput_bps
}

fn sender_counts(fidelity: Fidelity) -> Vec<usize> {
    match fidelity {
        Fidelity::Quick => vec![1, 2, 10, 50, 100],
        Fidelity::Full => vec![1, 2, 5, 10, 20, 35, 50, 75, 100],
    }
}

fn series_names() -> Vec<String> {
    RANGES
        .iter()
        .map(|&(n, _)| n.to_string())
        .chain(["cubic".into(), "cubic-sfqcodel".into()])
        .collect()
}

/// The degree-of-multiplexing experiment (`learnability run multiplexing`).
pub struct Multiplexing;

impl Experiment for Multiplexing {
    fn id(&self) -> &'static str {
        "multiplexing"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig 3 / Table 3 — degree of multiplexing"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        RANGES
            .iter()
            .map(|&(name, n)| {
                let cost = if n >= 50 {
                    TrainCost::Heavy
                } else {
                    TrainCost::Normal
                };
                TrainJob::single(
                    name,
                    vec![ScenarioSpec::multiplexing(n, BufferSpec::BdpMultiple(5.0))],
                    train_cfg(cost),
                )
            })
            .collect()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let taos = trained_taos();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for (panel, infinite) in PANELS {
            for &n in &sender_counts(fidelity) {
                let net = test_network(n, infinite);
                for tao in &taos {
                    points.push(SweepPoint::homogeneous(
                        format!("{panel}|{}", tao.name),
                        n as f64,
                        net.clone(),
                        Scheme::tao(tao.tree.clone(), &tao.name),
                        seeds.clone(),
                        dur,
                    ));
                }
                points.push(SweepPoint::homogeneous(
                    format!("{panel}|cubic"),
                    n as f64,
                    net.clone(),
                    Scheme::Cubic,
                    seeds.clone(),
                    dur,
                ));
                points.push(SweepPoint::homogeneous(
                    format!("{panel}|cubic-sfqcodel"),
                    n as f64,
                    with_sfq_codel(&net),
                    Scheme::Cubic,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let names = series_names();
        let base_delay = 0.075;
        for (panel, _) in PANELS {
            let mut series: Vec<Series> = names.iter().map(Series::new).collect();
            for p in points {
                let Some(name) = p.key().strip_prefix(&format!("{panel}|")) else {
                    continue;
                };
                let n = p.x() as usize;
                let obj = mean_normalized_objective(&p.runs, fair_share(n), base_delay);
                let si = names.iter().position(|x| x == name).expect("known series");
                series[si].push(p.x(), obj);
            }
            fig.charts.push(ChartData::from_series(
                format!("Fig 3 ({panel}) — normalized objective vs number of senders"),
                "senders",
                &series,
            ));
        }

        // Headline: the narrow protocol's collapse at the top of the range,
        // measured on the first (finite-buffer) panel.
        let at = |fig: &FigureData, name: &str, x: f64| {
            fig.chart_series(0, name).and_then(|s| s.value_at(x))
        };
        if let (Some(narrow), Some(broad)) =
            (at(&fig, "tao-mux-2", 100.0), at(&fig, "tao-mux-100", 100.0))
        {
            fig.push_summary("narrow_minus_broad_at_100_senders", narrow - broad);
            fig.notes.push(format!(
                "at 100 senders: tao-mux-2 objective {narrow:.3} vs tao-mux-100 {broad:.3} \
                 (paper: narrow training collapses at high multiplexing)"
            ));
        }
        if let (Some(narrow), Some(broad)) =
            (at(&fig, "tao-mux-2", 1.0), at(&fig, "tao-mux-100", 1.0))
        {
            fig.push_summary("narrow_minus_broad_at_1_sender", narrow - broad);
            fig.notes.push(format!(
                "at 1 sender:    tao-mux-2 objective {narrow:.3} vs tao-mux-100 {broad:.3} \
                 (paper: broad training costs throughput at low multiplexing)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_share_shrinks_with_senders() {
        let f1 = fair_share(1);
        let f10 = fair_share(10);
        let f100 = fair_share(100);
        assert!(f1 > f10 && f10 > f100);
        // Single ON/OFF sender alone gets the whole link when on.
        assert!((f1 - 15e6).abs() / 15e6 < 1e-9);
        // With 100 senders at p=1/2, a sender shares with ~49.5 others.
        assert!(f100 < 15e6 / 40.0 && f100 > 15e6 / 60.0, "f100={f100}");
    }

    #[test]
    fn test_networks_match_table_3b() {
        let finite = test_network(100, false);
        assert_eq!(finite.flows.len(), 100);
        assert_eq!(finite.links[0].rate_bps, 15e6);
        let infinite = test_network(3, true);
        assert_eq!(
            infinite.links[0].queue,
            QueueSpec::DropTail {
                capacity_bytes: None
            }
        );
    }

    #[test]
    fn train_specs_scale_cost_with_multiplexing() {
        let jobs = Multiplexing.train_specs();
        assert_eq!(jobs.len(), 5);
        // heavy budgets for the 50- and 100-way protocols
        assert!(jobs[3].cfg.sim_duration_s < jobs[0].cfg.sim_duration_s);
        assert!(jobs[4].cfg.sim_duration_s < jobs[0].cfg.sim_duration_s);
    }

    #[test]
    fn panel_keys_roundtrip() {
        // summarize splits keys back into (panel, series); the names must
        // cover both cubic baselines and all five taos.
        assert_eq!(series_names().len(), 7);
        assert_eq!(sender_counts(Fidelity::Quick).len(), 5);
        assert_eq!(sender_counts(Fidelity::Full).len(), 9);
    }
}
