//! Offline-learned vs online-learned congestion control (§6 discussion).
//!
//! The paper's Tao protocols bake the scenario model in at *design time*;
//! a PCC-style sender learns *at run time* from rate micro-experiments
//! and carries no model at all. This experiment puts the two learning
//! regimes side by side on the link-speed sweep the study uses everywhere
//! else: the broad-range `tao-1000x` protocol (offline, trained for
//! 1–1000 Mbps), the online [`Scheme::Pcc`] learner, and Cubic as the
//! human-designed yardstick — all normalized against the omniscient
//! reference, so 0 means "as good as knowing the network exactly".

use super::{
    log_grid, mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost,
    TrainJob,
};
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series};
use crate::runner::{PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};

/// The offline-learned contender: the broadest-range Tao from the
/// link-speed experiment (same asset name, so training is shared).
pub const ASSET: &str = "tao-1000x";

/// The per-sweep scheme labels, in series order.
const NAMES: [&str; 3] = ["tao-1000x", "pcc", "cubic"];

fn trained_tao() -> TrainedProtocol {
    run_train_job(&TrainJob::single(
        ASSET,
        vec![ScenarioSpec::link_speed_range(1.0, 1000.0)],
        train_cfg(TrainCost::Heavy),
    ))
    .remove(0)
}

fn test_network(speed_mbps: f64) -> NetworkConfig {
    let rate = speed_mbps * 1e6;
    dumbbell(
        2,
        rate,
        0.150,
        QueueSpec::drop_tail_bdp(rate, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

fn speeds(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => log_grid(1.0, 1000.0, 7),
        Fidelity::Full => log_grid(1.0, 1000.0, 13),
    }
}

/// The offline-vs-online learning experiment
/// (`learnability run learned_vs_online`).
pub struct LearnedVsOnline;

impl Experiment for LearnedVsOnline {
    fn id(&self) -> &'static str {
        "learned_vs_online"
    }

    fn paper_artifact(&self) -> &'static str {
        "§6 discussion — offline-designed Tao vs online-learned (PCC-style) control"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "pcc", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![TrainJob::single(
            ASSET,
            vec![ScenarioSpec::link_speed_range(1.0, 1000.0)],
            train_cfg(TrainCost::Heavy),
        )]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = trained_tao();
        let base_dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &speed in &speeds(fidelity) {
            let net = test_network(speed);
            // Same high-speed event-count guard as the link-speed sweep.
            let dur = if speed > 300.0 {
                base_dur.min(20.0)
            } else {
                base_dur
            };
            for (key, scheme) in [
                ("tao-1000x", Scheme::tao(tao.tree.clone(), &tao.name)),
                ("pcc", Scheme::Pcc),
                ("cubic", Scheme::Cubic),
            ] {
                points.push(SweepPoint::homogeneous(
                    key,
                    speed,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let mut series: Vec<Series> = NAMES.iter().map(|n| Series::new(*n)).collect();
        for p in points {
            let omn = omniscient::omniscient(&test_network(p.x()));
            let obj = mean_normalized_objective(&p.runs, omn[0].throughput_bps, omn[0].delay_s);
            let si = NAMES
                .iter()
                .position(|n| *n == p.key())
                .expect("known series");
            series[si].push(p.x(), obj);
        }
        fig.charts.push(ChartData::from_series(
            "normalized objective vs link speed: offline Tao vs online PCC (omniscient = 0)",
            "Mbps",
            &series,
        ));

        // Headline: how much of the gap to the offline design does online
        // learning close relative to the human baseline, over the range
        // the Tao was actually trained for?
        let mean_of = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.mean_in(1.0, 1000.0))
        };
        if let (Some(tao), Some(pcc), Some(cubic)) =
            (mean_of("tao-1000x"), mean_of("pcc"), mean_of("cubic"))
        {
            fig.push_summary("tao_minus_pcc_mean_objective", tao - pcc);
            fig.push_summary("pcc_minus_cubic_mean_objective", pcc - cubic);
            fig.notes.push(format!(
                "mean normalized objective over 1-1000 Mbps: tao-1000x {tao:.3}, \
                 pcc {pcc:.3}, cubic {cubic:.3} (offline design carries the \
                 scenario model; online learning carries none)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn train_specs_reuse_the_link_speed_asset() {
        let jobs = LearnedVsOnline.train_specs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].assets, vec![ASSET.to_string()]);
        // Same asset name as link_speed's broadest range: training once
        // serves both experiments.
        assert_eq!(super::super::link_speed::RANGES[0].0, ASSET);
    }

    #[test]
    fn quick_sweep_covers_the_grid() {
        assert_eq!(speeds(Fidelity::Quick).len(), 7);
        assert_eq!(speeds(Fidelity::Full).len(), 13);
    }

    #[test]
    fn series_names_match_sweep_keys() {
        // sweep() would train; pin the label set structurally instead.
        assert_eq!(NAMES, ["tao-1000x", "pcc", "cubic"]);
    }
}
