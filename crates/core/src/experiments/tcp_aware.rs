//! Figs 7–8 / Table 6 — knowledge about incumbent endpoints.
//!
//! Two Tao protocols are trained on a 10 Mbps / 100 ms dumbbell with 2 BDP
//! (250 kB) of buffer and near-continuous offered load: **TCP-naive**
//! assumes all cross-traffic runs the same protocol; **TCP-aware** trains
//! against AIMD (NewReno-like) cross-traffic half the time. Fig 7 compares
//! them in homogeneous and mixed settings; Fig 8 inspects queue dynamics
//! in the time domain against a contrived TCP pulse (ON exactly during
//! t ∈ [5, 10) s).

use super::{fmt_stat, run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob};
use crate::report::{FigureData, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::packet::LinkId;
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell_mixed;
use netsim::trace::Trace;
use netsim::transport::CongestionControl;
use netsim::workload::WorkloadSpec;
use protocols::TaoCc;
use remy::TrainedProtocol;
use std::fmt;

pub const ASSET_NAIVE: &str = "tao-tcp-naive";
pub const ASSET_AWARE: &str = "tao-tcp-aware";

/// Fig 7's testing network: 10 Mbps, 100 ms RTT, 250 kB buffer
/// (2 BDP = 200 ms of maximum queueing delay), near-continuous load.
pub fn test_network() -> NetworkConfig {
    dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::almost_continuous(); 2],
    )
}

/// Train (or load) both protocols of Table 6a.
pub fn trained_taos() -> (TrainedProtocol, TrainedProtocol) {
    let mut protos: Vec<TrainedProtocol> = TcpAware
        .train_specs()
        .iter()
        .flat_map(run_train_job)
        .collect();
    let aware = protos.pop().expect("two protocols");
    let naive = protos.pop().expect("two protocols");
    (naive, aware)
}

/// The Fig 7 contention matrix: (group, row config) in table order.
const ROWS: [(&str, &str); 5] = [
    ("homogeneous", "2x tcp-naive"),
    ("homogeneous", "2x tcp-aware"),
    ("homogeneous", "2x newreno"),
    ("mixed", "tcp-naive vs newreno"),
    ("mixed", "tcp-aware vs newreno"),
];

fn row_schemes(config: &str, naive: &TrainedProtocol, aware: &TrainedProtocol) -> Vec<Scheme> {
    let naive_s = Scheme::tao(naive.tree.clone(), ASSET_NAIVE);
    let aware_s = Scheme::tao(aware.tree.clone(), ASSET_AWARE);
    match config {
        "2x tcp-naive" => vec![naive_s.clone(), naive_s],
        "2x tcp-aware" => vec![aware_s.clone(), aware_s],
        "2x newreno" => vec![Scheme::NewReno, Scheme::NewReno],
        "tcp-naive vs newreno" => vec![naive_s, Scheme::NewReno],
        _ => vec![aware_s, Scheme::NewReno],
    }
}

/// The incumbent-endpoint experiment (`learnability run tcp_aware`),
/// covering both the Fig 7 contention matrix and the Fig 8 time-domain
/// traces.
pub struct TcpAware;

impl Experiment for TcpAware {
    fn id(&self) -> &'static str {
        "tcp_aware"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figs 7-8 / Table 6 — knowledge about incumbent endpoints"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![
            TrainJob::single(
                ASSET_NAIVE,
                vec![remy::ScenarioSpec::tcp_naive()],
                train_cfg(TrainCost::Normal),
            ),
            TrainJob::single(
                ASSET_AWARE,
                vec![remy::ScenarioSpec::tcp_aware()],
                train_cfg(TrainCost::Normal),
            ),
        ]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let (naive, aware) = trained_taos();
        let net = test_network();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points: Vec<SweepPoint> = ROWS
            .iter()
            .map(|&(group, config)| {
                SweepPoint::mix(
                    format!("{group}|{config}"),
                    0.0,
                    net.clone(),
                    row_schemes(config, &naive, &aware),
                    seeds.clone(),
                    dur,
                )
            })
            .collect();
        // Fig 8: illustrative single-seed traced runs (seed pinned at 1,
        // exempt from --seeds overrides).
        for (label, tao) in [("TCP-aware", &aware), ("TCP-naive", &naive)] {
            points.push(
                SweepPoint::mix(
                    format!("fig8|{label}"),
                    0.0,
                    time_domain_network(),
                    vec![Scheme::tao(tao.tree.clone(), label), Scheme::NewReno],
                    1..2,
                    15.0,
                )
                .with_trace(vec![0], 100.0),
            );
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        // Fig 7: one table per group, sides split by per-flow scheme label.
        let mut medians: Vec<(String, String, f64, f64)> = Vec::new();
        for (group, title) in [
            ("homogeneous", "Fig 7 (left) — homogeneous network"),
            ("mixed", "Fig 7 (right) — mixed network"),
        ] {
            let mut t = Table::new(
                title,
                &["configuration", "side", "throughput", "queueing delay"],
            );
            for p in points {
                let Some(config) = p.key().strip_prefix(&format!("{group}|")) else {
                    continue;
                };
                for label in p.unique_labels() {
                    let (tpt, qd) = p.flow_points_labeled(&label);
                    let (tpt, qd) = (summarize(&tpt), summarize(&qd));
                    t.row(vec![
                        config.to_string(),
                        label.clone(),
                        fmt_stat(&tpt, " Mbps"),
                        fmt_stat(&qd, " ms"),
                    ]);
                    medians.push((config.to_string(), label, tpt.median, qd.median));
                }
            }
            fig.tables.push(TableData::from_table(&t));
        }

        let median_of = |config: &str, label: &str| {
            medians
                .iter()
                .find(|(c, l, _, _)| c == config && l == label)
                .map(|&(_, _, tpt, qd)| (tpt, qd))
        };
        // Queueing-delay cost of TCP-awareness in the homogeneous setting
        // (paper: the naive protocol achieved 55% less queueing delay).
        if let (Some((_, naive_qd)), Some((_, aware_qd))) = (
            median_of("2x tcp-naive", ASSET_NAIVE),
            median_of("2x tcp-aware", ASSET_AWARE),
        ) {
            let r = naive_qd / aware_qd;
            fig.push_summary("homogeneous_delay_ratio", r);
            fig.notes.push(format!(
                "homogeneous: naive/aware queueing delay = {r:.2} (paper: ~0.45, i.e. 55% less)"
            ));
        }
        // Mixed-setting throughput advantage of awareness (paper: +36%).
        if let (Some((naive_tpt, _)), Some((aware_tpt, _))) = (
            median_of("tcp-naive vs newreno", ASSET_NAIVE),
            median_of("tcp-aware vs newreno", ASSET_AWARE),
        ) {
            let g = aware_tpt / naive_tpt - 1.0;
            fig.push_summary("mixed_throughput_gain", g);
            fig.notes.push(format!(
                "mixed vs TCP: awareness throughput gain = {:+.1}% (paper: +36%)",
                g * 100.0
            ));
        }

        // Fig 8: phase means + sparkline per traced variant.
        for p in points {
            let Some(label) = p.key().strip_prefix("fig8|") else {
                continue;
            };
            let Some(trace) = p.traces.first().and_then(|t| t.as_ref()) else {
                continue;
            };
            let r = time_domain_from_trace(trace, label);
            fig.push_summary(
                format!("fig8_{label}_mean_queue_with_tcp"),
                r.phase_means[1],
            );
            fig.push_summary(format!("fig8_{label}_drops"), r.drops.len() as f64);
            for line in r.to_string().lines() {
                fig.notes.push(line.to_string());
            }
        }
        fig
    }
}

// ---------------------------------------------------------------------------
// Fig 8: time-domain queue dynamics against a contrived TCP pulse.
// ---------------------------------------------------------------------------

/// Fig 8's network: Tao sender always on; TCP cross-traffic on exactly
/// [5, 10) s.
fn time_domain_network() -> NetworkConfig {
    dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::AlwaysOn, WorkloadSpec::pulse(5.0, 10.0)],
    )
}

/// Queue-occupancy trace of one Tao variant against pulsed TCP.
#[derive(Debug)]
pub struct TimeDomainResult {
    pub label: String,
    /// (time s, queue packets) samples.
    pub queue: Vec<(f64, usize)>,
    /// Times of packet drops at the bottleneck.
    pub drops: Vec<f64>,
    /// Mean queue during [0,5) (Tao alone), [5,10) (both), [10,15) (after).
    pub phase_means: [f64; 3],
}

impl fmt::Display for TimeDomainResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 8 — {}: mean queue (pkts) alone={:.1}, with TCP={:.1}, after={:.1}; drops={}",
            self.label,
            self.phase_means[0],
            self.phase_means[1],
            self.phase_means[2],
            self.drops.len()
        )?;
        // coarse sparkline, one char per 500 ms
        let max = self.queue.iter().map(|&(_, q)| q).max().unwrap_or(1).max(1);
        let mut line = String::new();
        for &(_, q) in self.queue.iter().step_by(5) {
            let lvl = (q * 8 / max).min(7);
            line.push(['_', '.', ':', '-', '=', '+', '*', '#'][lvl]);
        }
        writeln!(f, "  queue [{line}] peak={max} pkts")
    }
}

/// Fold a bottleneck queue [`Trace`] into the Fig 8 summary.
pub fn time_domain_from_trace(trace: &Trace, label: &str) -> TimeDomainResult {
    let series = trace.series_for(LinkId(0)).expect("traced link");
    let queue: Vec<(f64, usize)> = series
        .iter()
        .map(|s| (s.at.as_secs_f64(), s.packets))
        .collect();
    let t = |s: f64| netsim::time::SimTime::from_secs_f64(s);
    let phase_means = [
        trace.mean_packets_in(LinkId(0), t(1.0), t(5.0)),
        trace.mean_packets_in(LinkId(0), t(6.0), t(10.0)),
        trace.mean_packets_in(LinkId(0), t(11.0), t(15.0)),
    ];
    TimeDomainResult {
        label: label.to_string(),
        queue,
        drops: trace.drop_times.iter().map(|d| d.as_secs_f64()).collect(),
        phase_means,
    }
}

/// Run the Fig 8 time-domain experiment for one protocol tree.
pub fn time_domain(tree: &protocols::WhiskerTree, label: &str, seed: u64) -> TimeDomainResult {
    let net = time_domain_network();
    let protocols: Vec<Box<dyn CongestionControl>> = vec![
        Box::new(TaoCc::new(tree.clone(), label.to_string())),
        Box::new(protocols::NewReno::new()),
    ];
    let mut sim = Simulation::new(&net, protocols, seed);
    sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(100));
    sim.run(SimDuration::from_secs(15));
    let trace: Trace = sim.take_trace().expect("trace enabled");
    time_domain_from_trace(&trace, label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_network_matches_fig_7_caption() {
        let net = test_network();
        assert_eq!(net.links[0].rate_bps, 10e6);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(100));
        match net.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => assert_eq!(c, 250_000),
            _ => panic!("drop-tail expected"),
        }
    }

    #[test]
    fn time_domain_tcp_pulse_builds_queue() {
        // A deliberately gentle tree (steady window ≈ 5 packets, well under
        // the BDP) leaves the queue empty when alone, so the TCP pulse's
        // queue buildup stands out.
        let tree = protocols::WhiskerTree::uniform(protocols::Action::new(0.8, 1.0, 1.0));
        let r = time_domain(&tree, "demo", 3);
        assert!(
            r.phase_means[1] > r.phase_means[2],
            "queue with TCP ({:.1}) should exceed queue after ({:.1})",
            r.phase_means[1],
            r.phase_means[2]
        );
        assert!(!r.queue.is_empty());
        // NewReno against a 250 kB buffer must overflow it eventually.
        assert!(!r.drops.is_empty(), "TCP pulse should cause drops");
        assert!(
            r.drops.iter().all(|&d| (5.0..10.5).contains(&d)),
            "drops happen while TCP active: {:?}",
            &r.drops[..r.drops.len().min(5)]
        );
    }

    #[test]
    fn contention_rows_cover_both_settings() {
        let homogeneous = ROWS.iter().filter(|(g, _)| *g == "homogeneous").count();
        let mixed = ROWS.iter().filter(|(g, _)| *g == "mixed").count();
        assert_eq!(homogeneous, 3);
        assert_eq!(mixed, 2);
        let jobs = TcpAware.train_specs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].assets[0], ASSET_NAIVE);
        assert_eq!(jobs[1].assets[0], ASSET_AWARE);
    }
}
