//! Figs 7–8 / Table 6 — knowledge about incumbent endpoints.
//!
//! Two Tao protocols are trained on a 10 Mbps / 100 ms dumbbell with 2 BDP
//! (250 kB) of buffer and near-continuous offered load: **TCP-naive**
//! assumes all cross-traffic runs the same protocol; **TCP-aware** trains
//! against AIMD (NewReno-like) cross-traffic half the time. Fig 7 compares
//! them in homogeneous and mixed settings; Fig 8 inspects queue dynamics
//! in the time domain against a contrived TCP pulse (ON exactly during
//! t ∈ [5, 10) s).

use super::{fmt_stat, tao_asset, train_cfg, Fidelity, TrainCost};
use crate::report::Table;
use crate::runner::{flow_points, run_seeds, summarize, Scheme, SummaryStat};
use netsim::packet::LinkId;
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell_mixed;
use netsim::trace::Trace;
use netsim::transport::CongestionControl;
use netsim::workload::WorkloadSpec;
use protocols::TaoCc;
use remy::{ScenarioSpec, TrainedProtocol};
use std::fmt;

pub const ASSET_NAIVE: &str = "tao-tcp-naive";
pub const ASSET_AWARE: &str = "tao-tcp-aware";

/// Fig 7's testing network: 10 Mbps, 100 ms RTT, 250 kB buffer
/// (2 BDP = 200 ms of maximum queueing delay), near-continuous load.
pub fn test_network() -> NetworkConfig {
    dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::almost_continuous(); 2],
    )
}

/// One row of Fig 7: a (sender population) configuration and the measured
/// per-side statistics.
#[derive(Clone, Debug)]
pub struct ContentionRow {
    pub config: String,
    /// Per participating side: (label, throughput Mbps, queueing delay ms).
    pub sides: Vec<(String, SummaryStat, SummaryStat)>,
}

#[derive(Clone, Debug)]
pub struct TcpAwareResult {
    pub homogeneous: Vec<ContentionRow>,
    pub mixed: Vec<ContentionRow>,
}

impl TcpAwareResult {
    pub fn find<'a>(rows: &'a [ContentionRow], config: &str) -> Option<&'a ContentionRow> {
        rows.iter().find(|r| r.config == config)
    }

    fn side<'a>(
        row: &'a ContentionRow,
        label: &str,
    ) -> Option<&'a (String, SummaryStat, SummaryStat)> {
        row.sides.iter().find(|(l, _, _)| l == label)
    }

    /// Queueing-delay cost of TCP-awareness in the homogeneous setting
    /// (paper: the naive protocol achieved 55% less queueing delay).
    pub fn homogeneous_delay_ratio(&self) -> Option<f64> {
        let naive = Self::find(&self.homogeneous, "2x tcp-naive")?;
        let aware = Self::find(&self.homogeneous, "2x tcp-aware")?;
        let naive_qd = Self::side(naive, ASSET_NAIVE)?.2.median;
        let aware_qd = Self::side(aware, ASSET_AWARE)?.2.median;
        Some(naive_qd / aware_qd)
    }

    /// Mixed-setting throughput advantage of awareness (paper: +36%).
    pub fn mixed_throughput_gain(&self) -> Option<f64> {
        let naive = Self::find(&self.mixed, "tcp-naive vs newreno")?;
        let aware = Self::find(&self.mixed, "tcp-aware vs newreno")?;
        let naive_tpt = Self::side(naive, ASSET_NAIVE)?.1.median;
        let aware_tpt = Self::side(aware, ASSET_AWARE)?.1.median;
        Some(aware_tpt / naive_tpt - 1.0)
    }
}

impl fmt::Display for TcpAwareResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (title, rows) in [
            ("Fig 7 (left) — homogeneous network", &self.homogeneous),
            ("Fig 7 (right) — mixed network", &self.mixed),
        ] {
            let mut t = Table::new(
                title,
                &["configuration", "side", "throughput", "queueing delay"],
            );
            for row in rows {
                for (label, tpt, qd) in &row.sides {
                    t.row(vec![
                        row.config.clone(),
                        label.clone(),
                        fmt_stat(tpt, " Mbps"),
                        fmt_stat(qd, " ms"),
                    ]);
                }
            }
            write!(f, "{t}")?;
        }
        if let Some(r) = self.homogeneous_delay_ratio() {
            writeln!(
                f,
                "homogeneous: naive/aware queueing delay = {:.2} (paper: ~0.45, i.e. 55% less)",
                r
            )?;
        }
        if let Some(g) = self.mixed_throughput_gain() {
            writeln!(
                f,
                "mixed vs TCP: awareness throughput gain = {:+.1}% (paper: +36%)",
                g * 100.0
            )?;
        }
        Ok(())
    }
}

/// Train (or load) both protocols of Table 6a.
pub fn trained_taos() -> (TrainedProtocol, TrainedProtocol) {
    let naive = tao_asset(
        ASSET_NAIVE,
        vec![ScenarioSpec::tcp_naive()],
        train_cfg(TrainCost::Normal),
    );
    let aware = tao_asset(
        ASSET_AWARE,
        vec![ScenarioSpec::tcp_aware()],
        train_cfg(TrainCost::Normal),
    );
    (naive, aware)
}

fn measure(
    net: &NetworkConfig,
    schemes: &[Scheme],
    labels: &[&str],
    seeds: std::ops::Range<u64>,
    dur: f64,
) -> Vec<(String, SummaryStat, SummaryStat)> {
    let outs = run_seeds(net, schemes, seeds, dur);
    // group flows by label
    let mut sides = Vec::new();
    let uniq: Vec<&str> = {
        let mut u = Vec::new();
        for &l in labels {
            if !u.contains(&l) {
                u.push(l);
            }
        }
        u
    };
    for l in uniq {
        let keep: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &x)| x == l)
            .map(|(i, _)| i)
            .collect();
        let (tpt, qd) = flow_points(&outs, |f| keep.contains(&f));
        sides.push((l.to_string(), summarize(&tpt), summarize(&qd)));
    }
    sides
}

/// Run the Fig 7 contention matrix.
pub fn run(fidelity: Fidelity) -> TcpAwareResult {
    let (naive, aware) = trained_taos();
    let net = test_network();
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let naive_s = Scheme::tao(naive.tree.clone(), ASSET_NAIVE);
    let aware_s = Scheme::tao(aware.tree.clone(), ASSET_AWARE);

    let homogeneous = vec![
        ContentionRow {
            config: "2x tcp-naive".into(),
            sides: measure(
                &net,
                &[naive_s.clone(), naive_s.clone()],
                &[ASSET_NAIVE, ASSET_NAIVE],
                seeds.clone(),
                dur,
            ),
        },
        ContentionRow {
            config: "2x tcp-aware".into(),
            sides: measure(
                &net,
                &[aware_s.clone(), aware_s.clone()],
                &[ASSET_AWARE, ASSET_AWARE],
                seeds.clone(),
                dur,
            ),
        },
        ContentionRow {
            config: "2x newreno".into(),
            sides: measure(
                &net,
                &[Scheme::NewReno, Scheme::NewReno],
                &["newreno", "newreno"],
                seeds.clone(),
                dur,
            ),
        },
    ];

    let mixed = vec![
        ContentionRow {
            config: "tcp-naive vs newreno".into(),
            sides: measure(
                &net,
                &[naive_s.clone(), Scheme::NewReno],
                &[ASSET_NAIVE, "newreno"],
                seeds.clone(),
                dur,
            ),
        },
        ContentionRow {
            config: "tcp-aware vs newreno".into(),
            sides: measure(
                &net,
                &[aware_s.clone(), Scheme::NewReno],
                &[ASSET_AWARE, "newreno"],
                seeds.clone(),
                dur,
            ),
        },
    ];

    TcpAwareResult { homogeneous, mixed }
}

// ---------------------------------------------------------------------------
// Fig 8: time-domain queue dynamics against a contrived TCP pulse.
// ---------------------------------------------------------------------------

/// Queue-occupancy trace of one Tao variant against pulsed TCP.
#[derive(Debug)]
pub struct TimeDomainResult {
    pub label: String,
    /// (time s, queue packets) samples.
    pub queue: Vec<(f64, usize)>,
    /// Times of packet drops at the bottleneck.
    pub drops: Vec<f64>,
    /// Mean queue during [0,5) (Tao alone), [5,10) (both), [10,15) (after).
    pub phase_means: [f64; 3],
}

impl fmt::Display for TimeDomainResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig 8 — {}: mean queue (pkts) alone={:.1}, with TCP={:.1}, after={:.1}; drops={}",
            self.label,
            self.phase_means[0],
            self.phase_means[1],
            self.phase_means[2],
            self.drops.len()
        )?;
        // coarse sparkline, one char per 500 ms
        let max = self.queue.iter().map(|&(_, q)| q).max().unwrap_or(1).max(1);
        let mut line = String::new();
        for &(_, q) in self.queue.iter().step_by(5) {
            let lvl = (q * 8 / max).min(7);
            line.push(['_', '.', ':', '-', '=', '+', '*', '#'][lvl]);
        }
        writeln!(f, "  queue [{line}] peak={max} pkts")
    }
}

/// Run the Fig 8 time-domain experiment for one protocol tree.
pub fn time_domain(tree: &protocols::WhiskerTree, label: &str, seed: u64) -> TimeDomainResult {
    // Tao sender always on; TCP cross-traffic on exactly [5, 10) s.
    let net = dumbbell_mixed(
        10e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(250_000),
        },
        vec![WorkloadSpec::AlwaysOn, WorkloadSpec::pulse(5.0, 10.0)],
    );
    let protocols: Vec<Box<dyn CongestionControl>> = vec![
        Box::new(TaoCc::new(tree.clone(), label.to_string())),
        Box::new(protocols::NewReno::new()),
    ];
    let mut sim = Simulation::new(&net, protocols, seed);
    sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(100));
    sim.run(SimDuration::from_secs(15));
    let trace: Trace = sim.take_trace().expect("trace enabled");
    let series = trace.series_for(LinkId(0)).expect("traced link");

    let queue: Vec<(f64, usize)> = series
        .iter()
        .map(|s| (s.at.as_secs_f64(), s.packets))
        .collect();
    let t = |s: f64| netsim::time::SimTime::from_secs_f64(s);
    let phase_means = [
        trace.mean_packets_in(LinkId(0), t(1.0), t(5.0)),
        trace.mean_packets_in(LinkId(0), t(6.0), t(10.0)),
        trace.mean_packets_in(LinkId(0), t(11.0), t(15.0)),
    ];
    TimeDomainResult {
        label: label.to_string(),
        queue,
        drops: trace.drop_times.iter().map(|d| d.as_secs_f64()).collect(),
        phase_means,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_network_matches_fig_7_caption() {
        let net = test_network();
        assert_eq!(net.links[0].rate_bps, 10e6);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(100));
        match net.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => assert_eq!(c, 250_000),
            _ => panic!("drop-tail expected"),
        }
    }

    #[test]
    fn time_domain_tcp_pulse_builds_queue() {
        // A deliberately gentle tree (steady window ≈ 5 packets, well under
        // the BDP) leaves the queue empty when alone, so the TCP pulse's
        // queue buildup stands out.
        let tree = protocols::WhiskerTree::uniform(protocols::Action::new(0.8, 1.0, 1.0));
        let r = time_domain(&tree, "demo", 3);
        assert!(
            r.phase_means[1] > r.phase_means[2],
            "queue with TCP ({:.1}) should exceed queue after ({:.1})",
            r.phase_means[1],
            r.phase_means[2]
        );
        assert!(!r.queue.is_empty());
        // NewReno against a 250 kB buffer must overflow it eventually.
        assert!(!r.drops.is_empty(), "TCP pulse should cause drops");
        assert!(
            r.drops.iter().all(|&d| (5.0..10.5).contains(&d)),
            "drops happen while TCP active: {:?}",
            &r.drops[..r.drops.len().min(5)]
        );
    }
}
