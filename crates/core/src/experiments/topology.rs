//! Figs 5–6 / Table 5 — structural knowledge.
//!
//! Two Tao protocols are trained for the two-bottleneck parking lot of
//! Fig 5: one with full knowledge of the topology (three flows, two links
//! of 75 ms each), and one designed for a simplified single-bottleneck
//! model (two senders, one 150 ms link). Both are then run on the real
//! parking lot while each link speed sweeps 10–100 Mbps, and Fig 6 plots
//! the throughput of Flow 1 (the flow crossing both bottlenecks) against
//! the slower link's speed, for the diagonal (faster = slower) and the
//! faster-link-pinned-at-100 edge of the locus.

use super::{run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob};
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series};
use crate::runner::{with_sfq_codel, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::parking_lot;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};

pub const ASSET_ONE: &str = "tao-onebottleneck";
pub const ASSET_TWO: &str = "tao-twobottleneck";

/// The two edges of Fig 6's locus: (key prefix, chart title).
const EDGES: [(&str, &str); 2] = [
    (
        "diagonal",
        "Fig 6 (diagonal: faster = slower) — Flow 1 throughput (Mbps)",
    ),
    (
        "faster100",
        "Fig 6 (faster link = 100 Mbps) — Flow 1 throughput (Mbps)",
    ),
];

/// Train (or load) both protocols of Table 5.
pub fn trained_taos() -> (TrainedProtocol, TrainedProtocol) {
    let mut protos: Vec<TrainedProtocol> = Topology
        .train_specs()
        .iter()
        .flat_map(run_train_job)
        .collect();
    let two = protos.pop().expect("two protocols");
    let one = protos.pop().expect("two protocols");
    (one, two)
}

/// The testing parking lot with given link speeds (Mbps).
pub fn test_network(link1_mbps: f64, link2_mbps: f64) -> NetworkConfig {
    let (r1, r2) = (link1_mbps * 1e6, link2_mbps * 1e6);
    parking_lot(
        r1,
        r2,
        0.075,
        QueueSpec::drop_tail_bdp(r1, 0.150, 5.0),
        QueueSpec::drop_tail_bdp(r2, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Omniscient Flow-1 throughput (Mbps) on the parking lot.
pub fn omniscient_flow1_mbps(link1_mbps: f64, link2_mbps: f64) -> f64 {
    let net = test_network(link1_mbps, link2_mbps);
    omniscient::omniscient(&net)[0].throughput_bps / 1e6
}

fn link_speeds(edge: &str, slower: f64) -> (f64, f64) {
    match edge {
        "diagonal" => (slower, slower),
        _ => (slower, 100.0),
    }
}

fn sweep_speeds(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![10.0, 30.0, 100.0],
        Fidelity::Full => vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 75.0, 100.0],
    }
}

fn scheme_names() -> [&'static str; 4] {
    [ASSET_ONE, ASSET_TWO, "cubic", "cubic-sfqcodel"]
}

/// The structural-knowledge experiment (`learnability run topology`).
pub struct Topology;

impl Experiment for Topology {
    fn id(&self) -> &'static str {
        "topology"
    }

    fn paper_artifact(&self) -> &'static str {
        "Figs 5-6 / Table 5 — one- vs two-bottleneck knowledge"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![
            TrainJob::single(
                ASSET_ONE,
                vec![ScenarioSpec::one_bottleneck_model()],
                train_cfg(TrainCost::Normal),
            ),
            TrainJob::single(
                ASSET_TWO,
                vec![ScenarioSpec::two_bottleneck_model()],
                train_cfg(TrainCost::Normal),
            ),
        ]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let (one, two) = trained_taos();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for (edge, _) in EDGES {
            for &slower in &sweep_speeds(fidelity) {
                let (l1, l2) = link_speeds(edge, slower);
                let net = test_network(l1, l2);
                for name in scheme_names() {
                    let (net_used, scheme) = match name {
                        ASSET_ONE => (net.clone(), Scheme::tao(one.tree.clone(), name)),
                        ASSET_TWO => (net.clone(), Scheme::tao(two.tree.clone(), name)),
                        "cubic" => (net.clone(), Scheme::Cubic),
                        _ => (with_sfq_codel(&net), Scheme::Cubic),
                    };
                    points.push(SweepPoint::homogeneous(
                        format!("{edge}|{name}"),
                        slower,
                        net_used,
                        scheme,
                        seeds.clone(),
                        dur,
                    ));
                }
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let mut edge_series: Vec<Vec<Series>> = Vec::new();
        for (edge, title) in EDGES {
            let mut series: Vec<Series> = scheme_names()
                .iter()
                .map(|&n| Series::new(n))
                .chain([Series::new("omniscient")])
                .collect();
            for p in points {
                let Some(name) = p.key().strip_prefix(&format!("{edge}|")) else {
                    continue;
                };
                // Flow 0 is the two-hop flow ("Flow 1" in the paper).
                let tpts: Vec<f64> = p
                    .runs
                    .iter()
                    .filter(|o| o.flows[0].on_time_s > 0.0)
                    .map(|o| o.flows[0].throughput_bps / 1e6)
                    .collect();
                let mean = if tpts.is_empty() {
                    0.0
                } else {
                    tpts.iter().sum::<f64>() / tpts.len() as f64
                };
                let si = scheme_names()
                    .iter()
                    .position(|&n| n == name)
                    .expect("known scheme");
                series[si].push(p.x(), mean);
            }
            // Analytic omniscient reference per swept speed.
            let xs: Vec<f64> = series[0].points.iter().map(|&(x, _)| x).collect();
            for x in xs {
                let (l1, l2) = link_speeds(edge, x);
                series[4].push(x, omniscient_flow1_mbps(l1, l2));
            }
            fig.charts
                .push(ChartData::from_series(title, "slower Mbps", &series));
            edge_series.push(series);
        }

        // Mean across both edges per scheme.
        let mut notes = vec!["mean Flow-1 throughput across sweep:".to_string()];
        let mut means = Vec::new();
        for (i, name) in scheme_names().iter().enumerate() {
            let ys: Vec<f64> = edge_series
                .iter()
                .flat_map(|s| s[i].points.iter().map(|&(_, y)| y))
                .collect();
            let mean = ys.iter().sum::<f64>() / ys.len().max(1) as f64;
            notes.push(format!("  {name:<18} {mean:>7.2} Mbps"));
            fig.push_summary(format!("mean_flow1_tpt_mbps_{name}"), mean);
            means.push((*name, mean));
        }
        fig.notes.extend(notes);

        let mean_of = |n: &str| means.iter().find(|(m, _)| *m == n).map(|&(_, v)| v);
        if let (Some(one), Some(two)) = (mean_of(ASSET_ONE), mean_of(ASSET_TWO)) {
            // The penalty of the simplified model: 1 − simplified/full
            // (paper: ~17%).
            let p = 1.0 - one / two;
            fig.push_summary("simplification_penalty", p);
            if p >= 0.0 {
                fig.notes.push(format!(
                    "simplified one-bottleneck model underperforms the full model by {:.1}% \
                     (paper: ~17%)",
                    p * 100.0
                ));
            } else {
                fig.notes.push(format!(
                    "simplified one-bottleneck model OUTPERFORMS the full model by {:.1}% \
                     (paper saw a ~17% penalty; at small training budgets the joint \
                     3-flow objective can under-serve the two-hop flow)",
                    -p * 100.0
                ));
            }
        }
        if let (Some(one), Some(cubic)) = (mean_of(ASSET_ONE), mean_of("cubic")) {
            fig.push_summary("simplified_vs_cubic_ratio", one / cubic);
            fig.notes.push(format!(
                "simplified Tao vs Cubic: {:.2}x (paper: ~7.2x)",
                one / cubic
            ));
        }
        if let (Some(one), Some(sfq)) = (mean_of(ASSET_ONE), mean_of("cubic-sfqcodel")) {
            fig.push_summary("simplified_vs_cubic_sfqcodel_ratio", one / sfq);
            fig.notes.push(format!(
                "simplified Tao vs Cubic-over-sfqCoDel: {:.2}x (paper: ~2.75x)",
                one / sfq
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniscient_flow1_symmetric_case() {
        // Equal links, always considering ON/OFF p=1/2: alone flow 0 gets
        // min(C1,C2); the expectation sits between C/3 and C.
        let v = omniscient_flow1_mbps(30.0, 30.0);
        assert!(v > 10.0 && v < 30.0, "got {v}");
    }

    #[test]
    fn omniscient_flow1_bounded_by_slower_link() {
        let v = omniscient_flow1_mbps(10.0, 100.0);
        assert!(v <= 10.0, "flow 1 can never beat its bottleneck: {v}");
        assert!(v > 3.0);
    }

    #[test]
    fn test_network_shape() {
        let net = test_network(10.0, 100.0);
        assert_eq!(net.links.len(), 2);
        assert_eq!(net.flows.len(), 3);
        assert_eq!(net.flows[0].route, vec![0, 1]);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(150));
    }

    #[test]
    fn edges_pin_the_faster_link() {
        assert_eq!(link_speeds("diagonal", 30.0), (30.0, 30.0));
        assert_eq!(link_speeds("faster100", 30.0), (30.0, 100.0));
        assert_eq!(sweep_speeds(Fidelity::Quick).len(), 3);
        assert_eq!(sweep_speeds(Fidelity::Full).len(), 8);
    }

    #[test]
    fn train_specs_cover_both_models() {
        let jobs = Topology.train_specs();
        assert_eq!(jobs.len(), 2);
        assert_eq!(jobs[0].assets[0], ASSET_ONE);
        assert_eq!(jobs[1].assets[0], ASSET_TWO);
    }
}
