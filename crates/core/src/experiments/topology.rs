//! Figs 5–6 / Table 5 — structural knowledge.
//!
//! Two Tao protocols are trained for the two-bottleneck parking lot of
//! Fig 5: one with full knowledge of the topology (three flows, two links
//! of 75 ms each), and one designed for a simplified single-bottleneck
//! model (two senders, one 150 ms link). Both are then run on the real
//! parking lot while each link speed sweeps 10–100 Mbps, and Fig 6 plots
//! the throughput of Flow 1 (the flow crossing both bottlenecks) against
//! the slower link's speed, for the diagonal (faster = slower) and the
//! faster-link-pinned-at-100 edge of the locus.

use super::{tao_asset, train_cfg, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::{format_series, Series};
use crate::runner::{run_seeds, with_sfq_codel, Scheme};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::parking_lot;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};
use std::fmt;

pub const ASSET_ONE: &str = "tao-onebottleneck";
pub const ASSET_TWO: &str = "tao-twobottleneck";

/// One boundary of Fig 6's locus.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepEdge {
    /// Both links at the same speed (lower boundary of the locus).
    Diagonal,
    /// Faster link pinned at 100 Mbps (upper boundary).
    Faster100,
}

#[derive(Clone, Debug)]
pub struct TopologyResult {
    /// Flow-1 throughput (Mbps) vs slower-link speed, per scheme, for each
    /// edge of the sweep.
    pub diagonal: Vec<Series>,
    pub faster100: Vec<Series>,
    /// Mean throughput of each scheme across the whole sweep (both edges),
    /// for the paper's ratio claims.
    pub mean_tpt_mbps: Vec<(String, f64)>,
}

impl TopologyResult {
    pub fn mean_of(&self, name: &str) -> Option<f64> {
        self.mean_tpt_mbps
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The penalty of the simplified model: 1 − simplified/full (paper: ~17%).
    pub fn simplification_penalty(&self) -> Option<f64> {
        let one = self.mean_of(ASSET_ONE)?;
        let two = self.mean_of(ASSET_TWO)?;
        Some(1.0 - one / two)
    }
}

impl fmt::Display for TopologyResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            format_series(
                "Fig 6 (diagonal: faster = slower) — Flow 1 throughput (Mbps)",
                "slower Mbps",
                &self.diagonal
            )
        )?;
        write!(
            f,
            "{}",
            format_series(
                "Fig 6 (faster link = 100 Mbps) — Flow 1 throughput (Mbps)",
                "slower Mbps",
                &self.faster100
            )
        )?;
        writeln!(f, "mean Flow-1 throughput across sweep:")?;
        for (name, v) in &self.mean_tpt_mbps {
            writeln!(f, "  {name:<18} {v:>7.2} Mbps")?;
        }
        if let Some(p) = self.simplification_penalty() {
            if p >= 0.0 {
                writeln!(
                    f,
                    "simplified one-bottleneck model underperforms the full model by {:.1}% \
                     (paper: ~17%)",
                    p * 100.0
                )?;
            } else {
                writeln!(
                    f,
                    "simplified one-bottleneck model OUTPERFORMS the full model by {:.1}% \
                     (paper saw a ~17% penalty; at small training budgets the joint \
                     3-flow objective can under-serve the two-hop flow)",
                    -p * 100.0
                )?;
            }
        }
        if let (Some(one), Some(cubic)) = (self.mean_of(ASSET_ONE), self.mean_of("cubic")) {
            writeln!(
                f,
                "simplified Tao vs Cubic: {:.2}x (paper: ~7.2x)",
                one / cubic
            )?;
        }
        if let (Some(one), Some(sfq)) = (self.mean_of(ASSET_ONE), self.mean_of("cubic-sfqcodel")) {
            writeln!(
                f,
                "simplified Tao vs Cubic-over-sfqCoDel: {:.2}x (paper: ~2.75x)",
                one / sfq
            )?;
        }
        Ok(())
    }
}

/// Train (or load) both protocols of Table 5.
pub fn trained_taos() -> (TrainedProtocol, TrainedProtocol) {
    let one = tao_asset(
        ASSET_ONE,
        vec![ScenarioSpec::one_bottleneck_model()],
        train_cfg(TrainCost::Normal),
    );
    let two = tao_asset(
        ASSET_TWO,
        vec![ScenarioSpec::two_bottleneck_model()],
        train_cfg(TrainCost::Normal),
    );
    (one, two)
}

/// The testing parking lot with given link speeds (Mbps).
pub fn test_network(link1_mbps: f64, link2_mbps: f64) -> NetworkConfig {
    let (r1, r2) = (link1_mbps * 1e6, link2_mbps * 1e6);
    parking_lot(
        r1,
        r2,
        0.075,
        QueueSpec::drop_tail_bdp(r1, 0.150, 5.0),
        QueueSpec::drop_tail_bdp(r2, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Omniscient Flow-1 throughput (Mbps) on the parking lot.
pub fn omniscient_flow1_mbps(link1_mbps: f64, link2_mbps: f64) -> f64 {
    let net = test_network(link1_mbps, link2_mbps);
    omniscient::omniscient(&net)[0].throughput_bps / 1e6
}

/// Run the Fig 6 sweep.
pub fn run(fidelity: Fidelity) -> TopologyResult {
    let (one, two) = trained_taos();
    let speeds: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![10.0, 30.0, 100.0],
        Fidelity::Full => vec![10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 75.0, 100.0],
    };
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let schemes: Vec<(String, Option<&TrainedProtocol>)> = vec![
        (ASSET_ONE.to_string(), Some(&one)),
        (ASSET_TWO.to_string(), Some(&two)),
        ("cubic".to_string(), None),
        ("cubic-sfqcodel".to_string(), None),
    ];

    let mut edges = Vec::new();
    for edge in [SweepEdge::Diagonal, SweepEdge::Faster100] {
        let mut all: Vec<Series> = schemes
            .iter()
            .map(|(n, _)| Series::new(n.clone()))
            .chain([Series::new("omniscient")])
            .collect();
        for &slower in &speeds {
            let (l1, l2) = match edge {
                SweepEdge::Diagonal => (slower, slower),
                SweepEdge::Faster100 => (slower, 100.0),
            };
            let net = test_network(l1, l2);
            for (si, (name, tao)) in schemes.iter().enumerate() {
                let (net_used, scheme) = match tao {
                    Some(t) => (net.clone(), Scheme::tao(t.tree.clone(), name.clone())),
                    None if name == "cubic" => (net.clone(), Scheme::Cubic),
                    None => (with_sfq_codel(&net), Scheme::Cubic),
                };
                let mix = vec![scheme; 3];
                let outs = run_seeds(&net_used, &mix, seeds.clone(), dur);
                // Flow 0 is the two-hop flow ("Flow 1" in the paper).
                let tpts: Vec<f64> = outs
                    .iter()
                    .filter(|o| o.flows[0].on_time_s > 0.0)
                    .map(|o| o.flows[0].throughput_bps / 1e6)
                    .collect();
                let mean = if tpts.is_empty() {
                    0.0
                } else {
                    tpts.iter().sum::<f64>() / tpts.len() as f64
                };
                all[si].push(slower, mean);
            }
            all.last_mut()
                .expect("omniscient series")
                .push(slower, omniscient_flow1_mbps(l1, l2));
        }
        edges.push(all);
    }
    let faster100 = edges.pop().expect("two edges");
    let diagonal = edges.pop().expect("two edges");

    // Mean across both edges per scheme.
    let mut mean_tpt = Vec::new();
    for (i, (name, _)) in schemes.iter().enumerate() {
        let ys: Vec<f64> = diagonal[i]
            .points
            .iter()
            .chain(faster100[i].points.iter())
            .map(|&(_, y)| y)
            .collect();
        mean_tpt.push((name.clone(), ys.iter().sum::<f64>() / ys.len() as f64));
    }

    TopologyResult {
        diagonal,
        faster100,
        mean_tpt_mbps: mean_tpt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniscient_flow1_symmetric_case() {
        // Equal links, always considering ON/OFF p=1/2: alone flow 0 gets
        // min(C1,C2); the expectation sits between C/3 and C.
        let v = omniscient_flow1_mbps(30.0, 30.0);
        assert!(v > 10.0 && v < 30.0, "got {v}");
    }

    #[test]
    fn omniscient_flow1_bounded_by_slower_link() {
        let v = omniscient_flow1_mbps(10.0, 100.0);
        assert!(v <= 10.0, "flow 1 can never beat its bottleneck: {v}");
        assert!(v > 3.0);
    }

    #[test]
    fn test_network_shape() {
        let net = test_network(10.0, 100.0);
        assert_eq!(net.links.len(), 2);
        assert_eq!(net.flows.len(), 3);
        assert_eq!(net.flows[0].route, vec![0, 1]);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(150));
    }
}
