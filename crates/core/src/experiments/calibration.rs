//! Fig 1 / Table 1 — the calibration experiment.
//!
//! A Tao protocol is designed for exactly the network it is tested on
//! (32 Mbps dumbbell, 150 ms RTT, 2 senders, 1 s ON/OFF, 5 BDP buffer) and
//! compared with Cubic, Cubic-over-sfqCoDel, and the omniscient protocol.
//! The paper finds the Tao within 5% of omniscient throughput and 10% on
//! delay, and considerably ahead of both human-designed baselines.

use super::{fmt_stat, tao_asset, train_cfg, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::Table;
use crate::runner::{flow_points, run_seeds, summarize, with_sfq_codel, Scheme, SummaryStat};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::ScenarioSpec;
use std::fmt;

pub const ASSET: &str = "tao-calibration";

/// Per-scheme throughput/queueing-delay summary.
#[derive(Clone, Debug)]
pub struct SchemeStats {
    pub label: String,
    /// Mbps across flows × seeds.
    pub throughput: SummaryStat,
    /// Milliseconds across flows × seeds.
    pub queueing_delay: SummaryStat,
}

/// Results for Fig 1.
#[derive(Clone, Debug)]
pub struct CalibrationResult {
    pub schemes: Vec<SchemeStats>,
    /// Omniscient operating point: (throughput Mbps, queueing delay ms).
    pub omniscient: (f64, f64),
}

impl CalibrationResult {
    pub fn scheme(&self, label: &str) -> Option<&SchemeStats> {
        self.schemes.iter().find(|s| s.label == label)
    }

    /// Tao throughput as a fraction of omniscient (the paper reports ~0.95).
    pub fn tao_fraction_of_omniscient(&self) -> Option<f64> {
        self.scheme("tao")
            .map(|s| s.throughput.median / self.omniscient.0)
    }
}

impl fmt::Display for CalibrationResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Fig 1 — calibration: 32 Mbps, 150 ms RTT, 2 senders, 5 BDP",
            &["scheme", "throughput", "queueing delay"],
        );
        for s in &self.schemes {
            t.row(vec![
                s.label.clone(),
                fmt_stat(&s.throughput, " Mbps"),
                fmt_stat(&s.queueing_delay, " ms"),
            ]);
        }
        t.row(vec![
            "omniscient".into(),
            format!("{:.2} Mbps", self.omniscient.0),
            format!("{:.2} ms", self.omniscient.1),
        ]);
        write!(f, "{t}")?;
        if let Some(frac) = self.tao_fraction_of_omniscient() {
            writeln!(
                f,
                "tao throughput = {:.1}% of omniscient (paper: within 5%)",
                frac * 100.0
            )?;
        }
        Ok(())
    }
}

/// The testing network of Table 1.
pub fn test_network() -> NetworkConfig {
    dumbbell(
        2,
        32e6,
        0.150,
        QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Train (or load) the calibration Tao.
pub fn trained_tao() -> remy::TrainedProtocol {
    tao_asset(
        ASSET,
        vec![ScenarioSpec::calibration()],
        train_cfg(TrainCost::Normal),
    )
}

/// Run the calibration experiment.
pub fn run(fidelity: Fidelity) -> CalibrationResult {
    let tao = trained_tao();
    let net = test_network();
    let sfq_net = with_sfq_codel(&net);
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let mut schemes = Vec::new();
    for (label, scheme, net) in [
        ("tao", Scheme::tao(tao.tree.clone(), "tao"), &net),
        ("cubic", Scheme::Cubic, &net),
        ("cubic-sfqcodel", Scheme::Cubic, &sfq_net),
    ] {
        let mix = vec![scheme.clone(); net.flows.len()];
        let outs = run_seeds(net, &mix, seeds.clone(), dur);
        let (tpt, qd) = flow_points(&outs, |_| true);
        schemes.push(SchemeStats {
            label: label.into(),
            throughput: summarize(&tpt),
            queueing_delay: summarize(&qd),
        });
    }

    let omn = omniscient::omniscient(&net);
    CalibrationResult {
        schemes,
        omniscient: (omn[0].throughput_bps / 1e6, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniscient_point_matches_closed_form() {
        // p_on = 1/2, 2 senders: E[x | on] = C/2·(1 + 1/2)= 24 Mbps.
        let net = test_network();
        let o = omniscient::omniscient(&net);
        assert!((o[0].throughput_bps - 24e6).abs() / 24e6 < 1e-9);
    }

    #[test]
    fn test_network_matches_table_1() {
        let net = test_network();
        assert_eq!(net.flows.len(), 2);
        assert_eq!(net.links[0].rate_bps, 32e6);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(150));
    }
}
