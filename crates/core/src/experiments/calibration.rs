//! Fig 1 / Table 1 — the calibration experiment.
//!
//! A Tao protocol is designed for exactly the network it is tested on
//! (32 Mbps dumbbell, 150 ms RTT, 2 senders, 1 s ON/OFF, 5 BDP buffer) and
//! compared with Cubic, Cubic-over-sfqCoDel, and the omniscient protocol.
//! The paper finds the Tao within 5% of omniscient throughput and 10% on
//! delay, and considerably ahead of both human-designed baselines.

use super::{fmt_stat, run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob};
use crate::omniscient;
use crate::report::{FigureData, Table, TableData};
use crate::runner::{summarize, with_sfq_codel, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::ScenarioSpec;

pub const ASSET: &str = "tao-calibration";

/// The testing network of Table 1.
pub fn test_network() -> NetworkConfig {
    dumbbell(
        2,
        32e6,
        0.150,
        QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Train (or load) the calibration Tao.
pub fn trained_tao() -> remy::TrainedProtocol {
    run_train_job(&Calibration.train_specs().remove(0))
        .pop()
        .expect("one protocol")
}

/// The calibration experiment (`learnability run calibration`).
pub struct Calibration;

impl Experiment for Calibration {
    fn id(&self) -> &'static str {
        "calibration"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig 1 / Table 1 — Tao vs Cubic vs Cubic-over-sfqCoDel vs omniscient"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![TrainJob::single(
            ASSET,
            vec![ScenarioSpec::calibration()],
            train_cfg(TrainCost::Normal),
        )]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = trained_tao();
        let net = test_network();
        let sfq_net = with_sfq_codel(&net);
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        vec![
            SweepPoint::homogeneous(
                "tao",
                0.0,
                net.clone(),
                Scheme::tao(tao.tree.clone(), "tao"),
                seeds.clone(),
                dur,
            ),
            SweepPoint::homogeneous("cubic", 0.0, net, Scheme::Cubic, seeds.clone(), dur),
            SweepPoint::homogeneous("cubic-sfqcodel", 0.0, sfq_net, Scheme::Cubic, seeds, dur),
        ]
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let mut t = Table::new(
            "Fig 1 — calibration: 32 Mbps, 150 ms RTT, 2 senders, 5 BDP",
            &["scheme", "throughput", "queueing delay"],
        );
        let mut tao_median_tpt = None;
        for p in points {
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let tpt = summarize(&tpt);
            let qd = summarize(&qd);
            if p.key() == "tao" {
                tao_median_tpt = Some(tpt.median);
            }
            t.row(vec![
                p.key().to_string(),
                fmt_stat(&tpt, " Mbps"),
                fmt_stat(&qd, " ms"),
            ]);
            fig.push_summary(format!("{}_tpt_mbps_median", p.key()), tpt.median);
            fig.push_summary(format!("{}_qdelay_ms_median", p.key()), qd.median);
        }

        // Omniscient operating point (closed form, no simulation).
        let omn = omniscient::omniscient(&test_network());
        let omn_tpt = omn[0].throughput_bps / 1e6;
        t.row(vec![
            "omniscient".into(),
            format!("{omn_tpt:.2} Mbps"),
            "0.00 ms".into(),
        ]);
        fig.push_summary("omniscient_tpt_mbps", omn_tpt);
        fig.tables.push(TableData::from_table(&t));

        if let Some(tao_tpt) = tao_median_tpt {
            let frac = tao_tpt / omn_tpt;
            fig.push_summary("tao_fraction_of_omniscient", frac);
            fig.notes.push(format!(
                "tao throughput = {:.1}% of omniscient (paper: within 5%)",
                frac * 100.0
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omniscient_point_matches_closed_form() {
        // p_on = 1/2, 2 senders: E[x | on] = C/2·(1 + 1/2)= 24 Mbps.
        let net = test_network();
        let o = omniscient::omniscient(&net);
        assert!((o[0].throughput_bps - 24e6).abs() / 24e6 < 1e-9);
    }

    #[test]
    fn test_network_matches_table_1() {
        let net = test_network();
        assert_eq!(net.flows.len(), 2);
        assert_eq!(net.links[0].rate_bps, 32e6);
        assert_eq!(net.min_rtt(0), netsim::time::SimDuration::from_millis(150));
    }

    #[test]
    fn train_specs_describe_the_calibration_asset() {
        let jobs = Calibration.train_specs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].assets, vec![ASSET.to_string()]);
        assert!(jobs[0].co_alternations.is_none());
    }
}
