//! Extension — the conclusion's open question: "can we tractably
//! synthesize a single computer-generated protocol that outperforms
//! human-generated incumbents over a wide range of topologies, link
//! speeds, propagation delays, and degrees of multiplexing
//! simultaneously?"
//!
//! We train one **Tao-universal** on the *union* of the paper's training
//! models — broad link speeds, broad RTTs, broad multiplexing, and the
//! two-bottleneck parking lot — then score it on each experiment's
//! testing sweep against Cubic and the specialist protocol for that
//! sweep.

use super::{
    mean_normalized_objective, run_train_job, tao_asset, Experiment, Fidelity, TrainCost, TrainJob,
};
use crate::omniscient;
use crate::report::{FigureData, Table, TableData};
use crate::runner::{PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{BufferSpec, OptimizerConfig, ScenarioSpec, TrainedProtocol};

pub const ASSET: &str = "tao-universal";

/// The union training model.
pub fn training_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::link_speed_range(1.0, 1000.0),
        ScenarioSpec::rtt_range(50.0, 250.0),
        ScenarioSpec::multiplexing(50, BufferSpec::BdpMultiple(5.0)),
        ScenarioSpec::two_bottleneck_model(),
    ]
}

/// The universal optimizer budget: the union model costs more per
/// evaluation, so it gets the heavy budget — with one extra whisker of
/// headroom, since the union model is more varied.
fn universal_cfg() -> OptimizerConfig {
    let mut cfg = super::train_cfg(TrainCost::Heavy);
    cfg.max_leaves = 10;
    cfg
}

/// Train (or load) the universal protocol.
pub fn trained_tao() -> TrainedProtocol {
    run_train_job(&Universal.train_specs().remove(0))
        .pop()
        .expect("one protocol")
}

pub fn train_with(cfg: OptimizerConfig) -> TrainedProtocol {
    tao_asset(ASSET, training_specs(), cfg)
}

struct Probe {
    label: String,
    net: NetworkConfig,
    specialist: TrainedProtocol,
}

fn probes() -> Vec<Probe> {
    let mut out = Vec::new();

    // Probe 1: mid link speed (the 2x specialist's home turf).
    let taos_speed = super::link_speed::trained_taos();
    out.push(Probe {
        label: "32 Mbps / 150 ms / 2 senders".into(),
        net: dumbbell(
            2,
            32e6,
            0.150,
            QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        ),
        specialist: taos_speed[3].clone(), // tao-2x
    });

    // Probe 2: extreme link speed (inside only the 1000x range).
    out.push(Probe {
        label: "700 Mbps / 150 ms / 2 senders".into(),
        net: dumbbell(
            2,
            700e6,
            0.150,
            QueueSpec::drop_tail_bdp(700e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        ),
        specialist: taos_speed[0].clone(), // tao-1000x
    });

    // Probe 3: short RTT (the rtt-50-250 specialist's range edge).
    let taos_rtt = super::rtt::trained_taos();
    out.push(Probe {
        label: "33 Mbps / 50 ms / 2 senders".into(),
        net: dumbbell(
            2,
            33e6,
            0.050,
            QueueSpec::drop_tail_bdp(33e6, 0.050, 5.0),
            WorkloadSpec::on_off_1s(),
        ),
        specialist: taos_rtt[3].clone(), // tao-rtt-50-250
    });

    // Probe 4: heavy multiplexing.
    let taos_mux = super::multiplexing::trained_taos();
    out.push(Probe {
        label: "15 Mbps / 150 ms / 40 senders".into(),
        net: dumbbell(
            40,
            15e6,
            0.150,
            QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        ),
        specialist: taos_mux[3].clone(), // tao-mux-50
    });

    out
}

/// The contender columns of the universal comparison.
const CONTENDERS: [&str; 3] = ["universal", "specialist", "cubic"];

/// The one-protocol-for-everything experiment
/// (`learnability run universal`).
pub struct Universal;

impl Experiment for Universal {
    fn id(&self) -> &'static str {
        "universal"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — the conclusion's \"one protocol for everything\" question"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        vec![TrainJob::single(ASSET, training_specs(), universal_cfg())]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let universal = trained_tao();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for p in probes() {
            for contender in CONTENDERS {
                let scheme = match contender {
                    "universal" => Scheme::tao(universal.tree.clone(), ASSET),
                    "specialist" => Scheme::tao(p.specialist.tree.clone(), &p.specialist.name),
                    _ => Scheme::Cubic,
                };
                points.push(SweepPoint::homogeneous(
                    format!("{}|{contender}", p.label),
                    0.0,
                    p.net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        // Probe labels in sweep order.
        let mut probes: Vec<String> = Vec::new();
        for p in points {
            let label = p.key().rsplit_once('|').expect("probe|contender key").0;
            if !probes.iter().any(|x| x == label) {
                probes.push(label.to_string());
            }
        }

        let mut t = Table::new(
            "Extension — one protocol for everything (normalized objective, omniscient = 0)",
            &["probe network", "tao-universal", "specialist", "cubic"],
        );
        let mut rows: Vec<(f64, f64, f64)> = Vec::new();
        for probe in &probes {
            let mut objs = [0.0f64; 3];
            for (ci, contender) in CONTENDERS.iter().enumerate() {
                let p = points
                    .iter()
                    .find(|p| p.key() == format!("{probe}|{contender}"))
                    .expect("probe cell present");
                // Omniscient reference of this probe's network.
                let omn = omniscient::omniscient(&p.point.net);
                objs[ci] =
                    mean_normalized_objective(&p.runs, omn[0].throughput_bps, omn[0].delay_s);
            }
            t.row(vec![
                probe.clone(),
                format!("{:.3}", objs[0]),
                format!("{:.3}", objs[1]),
                format!("{:.3}", objs[2]),
            ]);
            rows.push((objs[0], objs[1], objs[2]));
        }
        fig.tables.push(TableData::from_table(&t));

        let wins = rows.iter().filter(|r| r.0 > r.2).count();
        let mean_gap = rows.iter().map(|r| r.1 - r.0).sum::<f64>() / rows.len().max(1) as f64;
        fig.push_summary("wins_vs_cubic", wins as f64);
        fig.push_summary("probes", rows.len() as f64);
        fig.push_summary("mean_gap_to_specialists", mean_gap);
        fig.notes.push(format!(
            "universal beats cubic on {}/{} probes; mean gap to specialists {:.3} \
             (the conclusion conjectured such a protocol may be feasible)",
            wins,
            rows.len(),
            mean_gap
        ));
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_model_covers_all_four_axes() {
        let specs = training_specs();
        assert_eq!(specs.len(), 4);
        // at least one spec is a parking lot
        assert!(specs
            .iter()
            .any(|s| matches!(s.topology, remy::TopologySpec::ParkingLot { .. })));
        // the link-speed spec spans the full thousand-fold range
        assert!(specs.iter().any(|s| matches!(
            s.topology,
            remy::TopologySpec::Dumbbell {
                link_mbps: remy::Sample::LogUniform { lo, hi },
                ..
            } if lo == 1.0 && hi == 1000.0
        )));
    }

    #[test]
    fn universal_budget_has_extra_headroom() {
        let cfg = universal_cfg();
        let heavy = super::super::train_cfg(TrainCost::Heavy);
        assert_eq!(cfg.max_leaves, 10);
        assert_eq!(cfg.sim_duration_s, heavy.sim_duration_s);
        let jobs = Universal.train_specs();
        assert_eq!(jobs[0].assets, vec![ASSET.to_string()]);
    }
}
