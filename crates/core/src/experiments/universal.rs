//! Extension — the conclusion's open question: "can we tractably
//! synthesize a single computer-generated protocol that outperforms
//! human-generated incumbents over a wide range of topologies, link
//! speeds, propagation delays, and degrees of multiplexing
//! simultaneously?"
//!
//! We train one **Tao-universal** on the *union* of the paper's training
//! models — broad link speeds, broad RTTs, broad multiplexing, and the
//! two-bottleneck parking lot — then score it on each experiment's
//! testing sweep against Cubic and the specialist protocol for that
//! sweep.

use super::{mean_normalized_objective, tao_asset, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::Table;
use crate::runner::{run_seeds, Scheme};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{BufferSpec, OptimizerConfig, ScenarioSpec, TrainedProtocol};
use std::fmt;

pub const ASSET: &str = "tao-universal";

/// The union training model.
pub fn training_specs() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec::link_speed_range(1.0, 1000.0),
        ScenarioSpec::rtt_range(50.0, 250.0),
        ScenarioSpec::multiplexing(50, BufferSpec::BdpMultiple(5.0)),
        ScenarioSpec::two_bottleneck_model(),
    ]
}

/// Train (or load) the universal protocol. The union model costs more
/// per evaluation, so it gets the heavy budget.
pub fn trained_tao() -> TrainedProtocol {
    let mut cfg = super::train_cfg(TrainCost::Heavy);
    // one extra whisker of headroom: the union model is more varied
    cfg.max_leaves = 10;
    train_with(cfg)
}

pub fn train_with(cfg: OptimizerConfig) -> TrainedProtocol {
    tao_asset(ASSET, training_specs(), cfg)
}

/// One row of the universal comparison: a probe network and the
/// normalized objective of each contender.
#[derive(Clone, Debug)]
pub struct UniversalRow {
    pub probe: String,
    pub universal: f64,
    pub specialist: f64,
    pub cubic: f64,
}

#[derive(Clone, Debug)]
pub struct UniversalResult {
    pub rows: Vec<UniversalRow>,
}

impl UniversalResult {
    /// Probes where the universal protocol beats Cubic.
    pub fn wins_vs_cubic(&self) -> usize {
        self.rows.iter().filter(|r| r.universal > r.cubic).count()
    }

    /// Mean shortfall against the per-sweep specialists (≥ 0 when the
    /// specialists are better, as expected).
    pub fn mean_gap_to_specialists(&self) -> f64 {
        let n = self.rows.len().max(1) as f64;
        self.rows
            .iter()
            .map(|r| r.specialist - r.universal)
            .sum::<f64>()
            / n
    }
}

impl fmt::Display for UniversalResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = Table::new(
            "Extension — one protocol for everything (normalized objective, omniscient = 0)",
            &["probe network", "tao-universal", "specialist", "cubic"],
        );
        for r in &self.rows {
            t.row(vec![
                r.probe.clone(),
                format!("{:.3}", r.universal),
                format!("{:.3}", r.specialist),
                format!("{:.3}", r.cubic),
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "universal beats cubic on {}/{} probes; mean gap to specialists {:.3} \
             (the conclusion conjectured such a protocol may be feasible)",
            self.wins_vs_cubic(),
            self.rows.len(),
            self.mean_gap_to_specialists()
        )
    }
}

struct Probe {
    label: String,
    net: NetworkConfig,
    specialist: TrainedProtocol,
    fair_tpt: f64,
    base_delay: f64,
}

fn probes(fidelity: Fidelity) -> Vec<Probe> {
    let _ = fidelity;
    let mut out = Vec::new();

    // Probe 1: mid link speed (the 2x specialist's home turf).
    let taos_speed = super::link_speed::trained_taos();
    let net = dumbbell(
        2,
        32e6,
        0.150,
        QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let omn = omniscient::omniscient(&net);
    out.push(Probe {
        label: "32 Mbps / 150 ms / 2 senders".into(),
        net,
        specialist: taos_speed[3].clone(), // tao-2x
        fair_tpt: omn[0].throughput_bps,
        base_delay: omn[0].delay_s,
    });

    // Probe 2: extreme link speed (inside only the 1000x range).
    let net = dumbbell(
        2,
        700e6,
        0.150,
        QueueSpec::drop_tail_bdp(700e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let omn = omniscient::omniscient(&net);
    out.push(Probe {
        label: "700 Mbps / 150 ms / 2 senders".into(),
        net,
        specialist: taos_speed[0].clone(), // tao-1000x
        fair_tpt: omn[0].throughput_bps,
        base_delay: omn[0].delay_s,
    });

    // Probe 3: short RTT (the rtt-50-250 specialist's range edge).
    let taos_rtt = super::rtt::trained_taos();
    let net = dumbbell(
        2,
        33e6,
        0.050,
        QueueSpec::drop_tail_bdp(33e6, 0.050, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let omn = omniscient::omniscient(&net);
    out.push(Probe {
        label: "33 Mbps / 50 ms / 2 senders".into(),
        net,
        specialist: taos_rtt[3].clone(), // tao-rtt-50-250
        fair_tpt: omn[0].throughput_bps,
        base_delay: omn[0].delay_s,
    });

    // Probe 4: heavy multiplexing.
    let taos_mux = super::multiplexing::trained_taos();
    let net = dumbbell(
        40,
        15e6,
        0.150,
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    );
    let omn = omniscient::omniscient(&net);
    out.push(Probe {
        label: "15 Mbps / 150 ms / 40 senders".into(),
        net,
        specialist: taos_mux[3].clone(), // tao-mux-50
        fair_tpt: omn[0].throughput_bps,
        base_delay: omn[0].delay_s,
    });

    out
}

/// Run the universal-protocol comparison.
pub fn run(fidelity: Fidelity) -> UniversalResult {
    let universal = trained_tao();
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let rows = probes(fidelity)
        .into_iter()
        .map(|p| {
            let n = p.net.flows.len();
            let score = |scheme: &Scheme| {
                let mix = vec![scheme.clone(); n];
                let outs = run_seeds(&p.net, &mix, seeds.clone(), dur);
                mean_normalized_objective(&outs, p.fair_tpt, p.base_delay)
            };
            UniversalRow {
                probe: p.label.clone(),
                universal: score(&Scheme::tao(universal.tree.clone(), ASSET)),
                specialist: score(&Scheme::tao(p.specialist.tree.clone(), &p.specialist.name)),
                cubic: score(&Scheme::Cubic),
            }
        })
        .collect();

    UniversalResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_model_covers_all_four_axes() {
        let specs = training_specs();
        assert_eq!(specs.len(), 4);
        // at least one spec is a parking lot
        assert!(specs
            .iter()
            .any(|s| matches!(s.topology, remy::TopologySpec::ParkingLot { .. })));
        // the link-speed spec spans the full thousand-fold range
        assert!(specs.iter().any(|s| matches!(
            s.topology,
            remy::TopologySpec::Dumbbell {
                link_mbps: remy::Sample::LogUniform { lo, hi },
                ..
            } if lo == 1.0 && hi == 1000.0
        )));
    }

    #[test]
    fn result_summary_math() {
        let r = UniversalResult {
            rows: vec![
                UniversalRow {
                    probe: "a".into(),
                    universal: -0.5,
                    specialist: -0.3,
                    cubic: -1.0,
                },
                UniversalRow {
                    probe: "b".into(),
                    universal: -2.0,
                    specialist: -1.0,
                    cubic: -1.5,
                },
            ],
        };
        assert_eq!(r.wins_vs_cubic(), 1);
        assert!((r.mean_gap_to_specialists() - 0.6).abs() < 1e-12);
    }
}
