//! Fig 4 / Table 4 — knowledge of propagation delay.
//!
//! Four Tao protocols are trained on a 33 Mbps dumbbell with minimum RTT
//! drawn from {150}, 145–155, 140–160, and 50–250 ms, then tested across
//! 1–300 ms. The paper's finding: training for exactly one RTT produces a
//! protocol that degrades badly below 50 ms, while adding even ±5 ms of
//! training diversity yields performance commensurate with the 50–250 ms
//! protocol over the whole sweep.

use super::{mean_normalized_objective, tao_asset, train_cfg, Fidelity, TrainCost};
use crate::omniscient;
use crate::report::{format_series, Series};
use crate::runner::{run_seeds, with_sfq_codel, Scheme};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};
use std::fmt;

/// Trained RTT ranges: (asset name, lo ms, hi ms).
pub const RANGES: [(&str, f64, f64); 4] = [
    ("tao-rtt-150", 150.0, 150.0),
    ("tao-rtt-145-155", 145.0, 155.0),
    ("tao-rtt-140-160", 140.0, 160.0),
    ("tao-rtt-50-250", 50.0, 250.0),
];

#[derive(Clone, Debug)]
pub struct RttResult {
    pub series: Vec<Series>,
    pub rtts_ms: Vec<f64>,
}

impl RttResult {
    pub fn series_named(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for RttResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            format_series(
                "Fig 4 — normalized objective vs minimum RTT (omniscient = 0)",
                "RTT ms",
                &self.series
            )
        )?;
        // Headline: a little training diversity ≈ a lot.
        let mean_of = |name: &str| self.series_named(name).and_then(|s| s.mean_in(1.0, 300.0));
        if let (Some(exact), Some(pm5), Some(broad)) = (
            mean_of("tao-rtt-150"),
            mean_of("tao-rtt-145-155"),
            mean_of("tao-rtt-50-250"),
        ) {
            writeln!(
                f,
                "mean objective over 1-300 ms: exact-150 {exact:.3}, 145-155 {pm5:.3}, \
                 50-250 {broad:.3} (paper: ±5 ms of diversity ≈ the broad protocol)"
            )?;
        }
        Ok(())
    }
}

/// Train (or load) the four RTT-range protocols (Table 4a).
pub fn trained_taos() -> Vec<TrainedProtocol> {
    RANGES
        .iter()
        .map(|&(name, lo, hi)| {
            tao_asset(
                name,
                vec![ScenarioSpec::rtt_range(lo, hi)],
                train_cfg(TrainCost::Normal),
            )
        })
        .collect()
}

fn test_network(rtt_ms: f64) -> NetworkConfig {
    let rtt_s = rtt_ms / 1e3;
    dumbbell(
        2,
        33e6,
        rtt_s,
        QueueSpec::drop_tail_bdp(33e6, rtt_s, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// Run the Fig 4 sweep.
pub fn run(fidelity: Fidelity) -> RttResult {
    let taos = trained_taos();
    let rtts: Vec<f64> = match fidelity {
        Fidelity::Quick => vec![1.0, 10.0, 50.0, 150.0, 300.0],
        Fidelity::Full => vec![
            1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0,
            275.0, 300.0,
        ],
    };
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();

    let mut series: Vec<Series> = taos
        .iter()
        .map(|t| Series::new(t.name.clone()))
        .chain([Series::new("cubic"), Series::new("cubic-sfqcodel")])
        .collect();

    for &rtt in &rtts {
        let net = test_network(rtt);
        let omn = omniscient::omniscient(&net);
        let fair = omn[0].throughput_bps;
        let base_delay = omn[0].delay_s;
        for (si, tao) in taos.iter().enumerate() {
            let mix = vec![Scheme::tao(tao.tree.clone(), &tao.name); 2];
            let outs = run_seeds(&net, &mix, seeds.clone(), dur);
            series[si].push(rtt, mean_normalized_objective(&outs, fair, base_delay));
        }
        let cubic = run_seeds(&net, &[Scheme::Cubic, Scheme::Cubic], seeds.clone(), dur);
        series[4].push(rtt, mean_normalized_objective(&cubic, fair, base_delay));
        let sfq = run_seeds(
            &with_sfq_codel(&net),
            &[Scheme::Cubic, Scheme::Cubic],
            seeds.clone(),
            dur,
        );
        series[5].push(rtt, mean_normalized_objective(&sfq, fair, base_delay));
    }

    RttResult {
        series,
        rtts_ms: rtts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_table_4a() {
        assert_eq!(
            RANGES[0].1, RANGES[0].2,
            "first protocol trains one exact RTT"
        );
        assert_eq!(RANGES[3], ("tao-rtt-50-250", 50.0, 250.0));
    }

    #[test]
    fn test_network_rtt_is_swept() {
        let n1 = test_network(1.0);
        let n300 = test_network(300.0);
        assert_eq!(n1.min_rtt(0), netsim::time::SimDuration::from_millis(1));
        assert_eq!(n300.min_rtt(0), netsim::time::SimDuration::from_millis(300));
        // buffer scales with BDP
        let cap = |n: &NetworkConfig| match n.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => c,
            _ => unreachable!(),
        };
        assert!(cap(&n300) > cap(&n1) * 100);
    }
}
