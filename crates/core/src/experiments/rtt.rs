//! Fig 4 / Table 4 — knowledge of propagation delay.
//!
//! Four Tao protocols are trained on a 33 Mbps dumbbell with minimum RTT
//! drawn from {150}, 145–155, 140–160, and 50–250 ms, then tested across
//! 1–300 ms. The paper's finding: training for exactly one RTT produces a
//! protocol that degrades badly below 50 ms, while adding even ±5 ms of
//! training diversity yields performance commensurate with the 50–250 ms
//! protocol over the whole sweep.

use super::{
    mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob,
};
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series};
use crate::runner::{with_sfq_codel, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::topology::dumbbell;
use netsim::workload::WorkloadSpec;
use remy::{ScenarioSpec, TrainedProtocol};

/// Trained RTT ranges: (asset name, lo ms, hi ms).
pub const RANGES: [(&str, f64, f64); 4] = [
    ("tao-rtt-150", 150.0, 150.0),
    ("tao-rtt-145-155", 145.0, 155.0),
    ("tao-rtt-140-160", 140.0, 160.0),
    ("tao-rtt-50-250", 50.0, 250.0),
];

/// Train (or load) the four RTT-range protocols (Table 4a).
pub fn trained_taos() -> Vec<TrainedProtocol> {
    Rtt.train_specs().iter().flat_map(run_train_job).collect()
}

fn test_network(rtt_ms: f64) -> NetworkConfig {
    let rtt_s = rtt_ms / 1e3;
    dumbbell(
        2,
        33e6,
        rtt_s,
        QueueSpec::drop_tail_bdp(33e6, rtt_s, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

fn rtts(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![1.0, 10.0, 50.0, 150.0, 300.0],
        Fidelity::Full => vec![
            1.0, 5.0, 10.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0, 175.0, 200.0, 225.0, 250.0,
            275.0, 300.0,
        ],
    }
}

/// The propagation-delay experiment (`learnability run rtt`).
pub struct Rtt;

impl Experiment for Rtt {
    fn id(&self) -> &'static str {
        "rtt"
    }

    fn paper_artifact(&self) -> &'static str {
        "Fig 4 / Table 4 — knowledge of propagation delay"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        RANGES
            .iter()
            .map(|&(name, lo, hi)| {
                TrainJob::single(
                    name,
                    vec![ScenarioSpec::rtt_range(lo, hi)],
                    train_cfg(TrainCost::Normal),
                )
            })
            .collect()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let taos = trained_taos();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &rtt in &rtts(fidelity) {
            let net = test_network(rtt);
            for tao in &taos {
                points.push(SweepPoint::homogeneous(
                    tao.name.clone(),
                    rtt,
                    net.clone(),
                    Scheme::tao(tao.tree.clone(), &tao.name),
                    seeds.clone(),
                    dur,
                ));
            }
            points.push(SweepPoint::homogeneous(
                "cubic",
                rtt,
                net.clone(),
                Scheme::Cubic,
                seeds.clone(),
                dur,
            ));
            points.push(SweepPoint::homogeneous(
                "cubic-sfqcodel",
                rtt,
                with_sfq_codel(&net),
                Scheme::Cubic,
                seeds.clone(),
                dur,
            ));
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let names: Vec<String> = RANGES
            .iter()
            .map(|&(n, _, _)| n.to_string())
            .chain(["cubic".into(), "cubic-sfqcodel".into()])
            .collect();
        let mut series: Vec<Series> = names.iter().map(Series::new).collect();
        for p in points {
            let omn = omniscient::omniscient(&test_network(p.x()));
            let obj = mean_normalized_objective(&p.runs, omn[0].throughput_bps, omn[0].delay_s);
            let si = names
                .iter()
                .position(|n| n == p.key())
                .expect("known series");
            series[si].push(p.x(), obj);
        }
        fig.charts.push(ChartData::from_series(
            "Fig 4 — normalized objective vs minimum RTT (omniscient = 0)",
            "RTT ms",
            &series,
        ));

        // Headline: a little training diversity ≈ a lot.
        let mean_of = |name: &str| {
            series
                .iter()
                .find(|s| s.name == name)
                .and_then(|s| s.mean_in(1.0, 300.0))
        };
        if let (Some(exact), Some(pm5), Some(broad)) = (
            mean_of("tao-rtt-150"),
            mean_of("tao-rtt-145-155"),
            mean_of("tao-rtt-50-250"),
        ) {
            fig.push_summary("mean_obj_exact_150", exact);
            fig.push_summary("mean_obj_145_155", pm5);
            fig.push_summary("mean_obj_50_250", broad);
            fig.notes.push(format!(
                "mean objective over 1-300 ms: exact-150 {exact:.3}, 145-155 {pm5:.3}, \
                 50-250 {broad:.3} (paper: ±5 ms of diversity ≈ the broad protocol)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_match_table_4a() {
        assert_eq!(
            RANGES[0].1, RANGES[0].2,
            "first protocol trains one exact RTT"
        );
        assert_eq!(RANGES[3], ("tao-rtt-50-250", 50.0, 250.0));
    }

    #[test]
    fn test_network_rtt_is_swept() {
        let n1 = test_network(1.0);
        let n300 = test_network(300.0);
        assert_eq!(n1.min_rtt(0), netsim::time::SimDuration::from_millis(1));
        assert_eq!(n300.min_rtt(0), netsim::time::SimDuration::from_millis(300));
        // buffer scales with BDP
        let cap = |n: &NetworkConfig| match n.links[0].queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => c,
            _ => unreachable!(),
        };
        assert!(cap(&n300) > cap(&n1) * 100);
    }

    #[test]
    fn train_specs_cover_all_four_ranges() {
        let jobs = Rtt.train_specs();
        let names: Vec<&str> = jobs.iter().map(|j| j.assets[0].as_str()).collect();
        assert_eq!(
            names,
            vec![
                "tao-rtt-150",
                "tao-rtt-145-155",
                "tao-rtt-140-160",
                "tao-rtt-50-250"
            ]
        );
        assert_eq!(rtts(Fidelity::Quick).len(), 5);
        assert_eq!(rtts(Fidelity::Full).len(), 15);
    }
}
