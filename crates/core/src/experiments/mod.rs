//! The study's experiments: one module per paper figure/table, all behind
//! the declarative [`Experiment`] trait and runnable through the
//! `learnability` CLI (`learnability list`, `learnability run <id>`).
//!
//! | id | module | paper artifact |
//! |---|---|---|
//! | `calibration` | [`calibration`] | Fig 1 / Table 1 — Tao vs Cubic vs Cubic-over-sfqCoDel vs omniscient |
//! | `link_speed` | [`link_speed`] | Fig 2 / Table 2 — operating range in link speed |
//! | `multiplexing` | [`multiplexing`] | Fig 3 / Table 3 — degree of multiplexing |
//! | `rtt` | [`rtt`] | Fig 4 / Table 4 — propagation delay |
//! | `topology` | [`topology`] | Figs 5–6 / Table 5 — one- vs two-bottleneck knowledge |
//! | `tcp_aware` | [`tcp_aware`] | Figs 7–8 / Table 6 — knowledge about incumbent endpoints |
//! | `diversity` | [`diversity`] | Fig 9 / Table 7 — the price of sender diversity |
//! | `signals` | [`signals`] | §3.4 — value of the congestion signals (knockout study) |
//! | `universal` | [`universal`] | extension — the conclusion's "one protocol for everything" question |
//! | `aqm` | [`aqm`] | extension — drop-tail-trained Tao across RED/CoDel/sfqCoDel gateways |
//! | `asymmetry` | [`asymmetry`] | extension — asymmetric ACK paths (reverse rate 1× → 1/50×) |
//! | `churn` | [`churn`] | extension — Poisson flow churn vs the static multiplexing baseline |
//! | `shared_uplink` | [`shared_uplink`] | extension — all flows' ACKs through one shared reverse link, drop-tail vs CoDel ACK queue |
//! | `churn_mginf` | [`churn_mginf`] | extension — unblocked M/G/∞ churn (overlapping flows per slot) vs blocked arrivals |
//! | `bursty_loss` | [`bursty_loss`] | extension — Gilbert–Elliott bursty non-congestive loss vs loss- and delay-based schemes |
//! | `outage_recovery` | [`outage_recovery`] | extension — recovery time after link blackouts (the RTO-backoff axis) |
//! | `adversarial` | [`adversarial`] | extension — adversarial scenario search: per-scheme worst-case certificates |
//! | `learned_vs_online` | [`learned_vs_online`] | extension — offline-designed Tao vs online-learned (PCC-style) control |
//! | `delayed_ack` | [`delayed_ack`] | extension — delayed/stretch ACK receivers (ack-every-k) crossed with a shared ACK uplink |
//! | `many_flows` | [`many_flows`] | extension — Internet-scale multiplexing: 10²–10⁴ M/G/∞ churn flows, objective + per-decile fairness |
//!
//! An experiment is *data*, not code: [`Experiment::train_specs`] lists the
//! Tao protocols it needs (trained once, cached as JSON assets like the
//! protocols the paper published), [`Experiment::sweep`] expands the
//! testing side into [`SweepPoint`] cells the shared engine executes in
//! parallel ([`crate::runner::execute_sweep`]), and
//! [`Experiment::summarize`] folds the outcomes into a serializable
//! [`FigureData`] from which both the JSON artifacts and the printed
//! tables are rendered.

pub mod adversarial;
pub mod aqm;
pub mod asymmetry;
pub mod bursty_loss;
pub mod calibration;
pub mod churn;
pub mod churn_mginf;
pub mod delayed_ack;
pub mod diversity;
pub mod learned_vs_online;
pub mod link_speed;
pub mod many_flows;
pub mod multiplexing;
pub mod outage_recovery;
pub mod rtt;
pub mod shared_uplink;
pub mod signals;
pub mod tcp_aware;
pub mod topology;
pub mod universal;

use crate::report::{FigureData, RunMeta};
use crate::runner::{PointOutcome, SummaryStat, SweepPoint};
use netsim::flow::FlowOutcome;
use protocols::WhiskerTree;
use remy::{Objective, OptimizerConfig, ScenarioSpec, TrainedProtocol};
use std::sync::OnceLock;

/// How much compute to spend. `Quick` regenerates every figure's *shape*
/// in minutes; `Full` uses longer simulations, more seeds and finer sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    Quick,
    Full,
}

/// One parser for every spelling a fidelity arrives in: the canonical
/// CLI names (`quick`/`full`) plus the `LEARNABILITY_FULL` boolean
/// convention (`1`/`true` → full; ``/`0`/`false` → quick, any case).
/// Pure, so it is testable without touching the process environment
/// (env mutation races parallel tests); [`Fidelity::from_env`] and
/// [`Fidelity::from_flag`] are thin wrappers differing only in how they
/// treat unrecognized input.
impl std::str::FromStr for Fidelity {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s == "quick" || s.is_empty() || s == "0" || s.eq_ignore_ascii_case("false") {
            Ok(Fidelity::Quick)
        } else if s == "full" || s == "1" || s.eq_ignore_ascii_case("true") {
            Ok(Fidelity::Full)
        } else {
            Err(format!("unknown fidelity '{s}' (quick|full)"))
        }
    }
}

impl Fidelity {
    /// `LEARNABILITY_FULL=1` selects full fidelity; anything
    /// unrecognized — including absence — stays quick (an env var must
    /// never abort a run).
    pub fn from_env() -> Self {
        std::env::var("LEARNABILITY_FULL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(Fidelity::Quick)
    }

    /// Parse a `--fidelity` CLI flag value (strict: unrecognized input is
    /// an error the user sees).
    pub fn from_flag(value: &str) -> Result<Self, String> {
        value.parse()
    }

    pub fn name(self) -> &'static str {
        match self {
            Fidelity::Quick => "quick",
            Fidelity::Full => "full",
        }
    }

    /// Seeds per (scheme, test point).
    pub fn seeds(self) -> std::ops::Range<u64> {
        match self {
            Fidelity::Quick => 0..3,
            Fidelity::Full => 0..8,
        }
    }

    /// Simulated seconds per test run.
    pub fn test_duration_s(self) -> f64 {
        match self {
            Fidelity::Quick => 16.0,
            Fidelity::Full => 60.0,
        }
    }
}

// ---------------------------------------------------------------------------
// The Experiment trait and registry.
// ---------------------------------------------------------------------------

/// One protocol-design run an experiment depends on: the asset name(s) it
/// produces, the training scenario model, and the optimizer budget.
/// Describing a job is free — nothing trains until [`run_train_job`].
#[derive(Clone, Debug)]
pub struct TrainJob {
    /// Asset names this job produces (one, or several for co-optimized
    /// protocol sets — Table 7a trains a pair jointly).
    pub assets: Vec<String>,
    pub specs: Vec<ScenarioSpec>,
    pub cfg: OptimizerConfig,
    /// `Some(alternations)`: co-optimize `assets.len()` slots jointly.
    pub co_alternations: Option<usize>,
}

impl TrainJob {
    pub fn single(name: impl Into<String>, specs: Vec<ScenarioSpec>, cfg: OptimizerConfig) -> Self {
        TrainJob {
            assets: vec![name.into()],
            specs,
            cfg,
            co_alternations: None,
        }
    }

    pub fn co_optimized(
        names: &[&str],
        specs: Vec<ScenarioSpec>,
        cfg: OptimizerConfig,
        alternations: usize,
    ) -> Self {
        TrainJob {
            assets: names.iter().map(|n| n.to_string()).collect(),
            specs,
            cfg,
            co_alternations: Some(alternations),
        }
    }
}

/// A paper experiment as declarative data: what to train, what to sweep,
/// and how to fold sweep outcomes into a figure.
pub trait Experiment: Sync {
    /// Stable CLI id (`learnability run <id>`).
    fn id(&self) -> &'static str;

    /// Which paper figure/table this reproduces.
    fn paper_artifact(&self) -> &'static str;

    /// The scheme families this experiment evaluates, as sweep labels
    /// ("tao" covers every trained Tao variant). Shown by
    /// `learnability list` so users can see at a glance which protocols
    /// each figure compares.
    fn scheme_families(&self) -> &'static [&'static str];

    /// The Tao protocols this experiment needs (description only; training
    /// happens lazily via [`run_train_job`] / `learnability train`).
    fn train_specs(&self) -> Vec<TrainJob>;

    /// The testing side as sweep cells. Loads (or trains) the protocol
    /// assets it references.
    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint>;

    /// Fold executed sweep points (in `sweep` order) into the figure's
    /// structured result. Must be a pure function of `points` so results
    /// are identical for any thread count.
    fn summarize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> FigureData;
}

/// Every experiment of the study: the paper's nine in paper order, then
/// the beyond-paper scenario axes (AQM, asymmetry, churn, shared uplink,
/// M/G/∞ churn, fault injection, adversarial search, offline-vs-online
/// learning, delayed-ACK receivers, Internet-scale multiplexing).
pub fn registry() -> &'static [&'static dyn Experiment] {
    static REGISTRY: [&dyn Experiment; 20] = [
        &calibration::Calibration,
        &link_speed::LinkSpeed,
        &multiplexing::Multiplexing,
        &rtt::Rtt,
        &topology::Topology,
        &tcp_aware::TcpAware,
        &diversity::Diversity,
        &signals::Signals,
        &universal::Universal,
        &aqm::Aqm,
        &asymmetry::Asymmetry,
        &churn::Churn,
        &shared_uplink::SharedUplink,
        &churn_mginf::ChurnMginf,
        &bursty_loss::BurstyLoss,
        &outage_recovery::OutageRecovery,
        &adversarial::Adversarial,
        &learned_vs_online::LearnedVsOnline,
        &delayed_ack::DelayedAck,
        &many_flows::ManyFlows,
    ];
    &REGISTRY
}

/// Look up an experiment by CLI id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().iter().copied().find(|e| e.id() == id)
}

/// Execution knobs for [`run_experiment`].
#[derive(Clone, Copy, Debug)]
pub struct RunOptions {
    pub fidelity: Fidelity,
    /// Override the per-cell seed count (`--seeds N` → seeds `0..N`).
    /// Trace points (illustrative single runs) are exempt.
    pub seeds: Option<u64>,
    /// Worker threads for the sweep engine (0 = all cores).
    pub threads: usize,
}

impl RunOptions {
    pub fn new(fidelity: Fidelity) -> Self {
        RunOptions {
            fidelity,
            seeds: None,
            threads: 0,
        }
    }

    /// The seed set non-trace cells run over.
    pub fn seed_set(&self) -> Vec<u64> {
        match self.seeds {
            Some(n) => (0..n).collect(),
            None => self.fidelity.seeds().collect(),
        }
    }
}

/// `git describe --always --dirty` of the working tree (memoized;
/// `"unknown"` outside a git checkout).
pub fn git_describe() -> &'static str {
    static DESCRIBE: OnceLock<String> = OnceLock::new();
    DESCRIBE.get_or_init(|| {
        std::process::Command::new("git")
            .args(["describe", "--always", "--dirty"])
            .current_dir(env!("CARGO_MANIFEST_DIR"))
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".into())
    })
}

/// Everything one experiment run produced: the figure plus the harness's
/// health report. `poisoned` lists cells whose simulation panicked (the
/// sweep engine degrades them into flagged holes — see
/// [`crate::runner::PointOutcome::poisoned`]); a run with a non-empty
/// `poisoned` must fail the CLI even though a figure was still rendered
/// from the surviving cells.
pub struct RunReport {
    pub fig: FigureData,
    /// `"cell '<key>' seed <seed>: <panic message>"` per crashed cell.
    pub poisoned: Vec<String>,
}

/// Run one experiment end to end on the shared sweep engine: expand its
/// sweep, execute the cells in parallel, summarize, and stamp provenance
/// metadata. Poisoned cells and event-budget truncations are appended to
/// the figure's notes (and reported in [`RunReport::poisoned`]) so a
/// degraded figure can never silently pass for a clean one. The result is
/// bit-identical for any `opts.threads`.
pub fn run_experiment_report(exp: &dyn Experiment, opts: &RunOptions) -> RunReport {
    let mut points = exp.sweep(opts.fidelity);
    if let Some(n) = opts.seeds {
        for p in &mut points {
            if p.trace.is_none() {
                p.seeds = 0..n;
            }
        }
    }
    let outcomes = crate::runner::execute_sweep(points, opts.threads);
    let poisoned: Vec<String> = outcomes
        .iter()
        .flat_map(|p| {
            p.poisoned
                .iter()
                .map(|(seed, msg)| format!("cell '{}' seed {seed}: {msg}", p.key()))
        })
        .collect();
    let truncated: Vec<String> = outcomes
        .iter()
        .flat_map(|p| {
            p.runs
                .iter()
                .zip(p.point.seeds.clone())
                .filter(|(run, _)| run.truncated)
                .map(|(_, seed)| format!("cell '{}' seed {seed}", p.key()))
        })
        .collect();
    let mut fig = exp.summarize(opts.fidelity, &outcomes);
    for cell in &poisoned {
        fig.notes.push(format!("POISONED: {cell}"));
    }
    if !truncated.is_empty() {
        fig.notes.push(format!(
            "TRUNCATED: {} run(s) hit the event budget before simulated time \
             ran out and carry partial statistics: {}",
            truncated.len(),
            truncated.join(", ")
        ));
    }
    fig.meta = RunMeta {
        fidelity: opts.fidelity.name().into(),
        seeds: opts.seed_set(),
        git_describe: git_describe().into(),
    };
    RunReport { fig, poisoned }
}

/// [`run_experiment_report`] for callers that only want the figure.
pub fn run_experiment(exp: &dyn Experiment, opts: &RunOptions) -> FigureData {
    run_experiment_report(exp, opts).fig
}

/// Execute a training job: load every produced asset if committed,
/// otherwise train (plain optimization, or joint co-optimization when
/// [`TrainJob::co_alternations`] is set) and cache the results.
pub fn run_train_job(job: &TrainJob) -> Vec<TrainedProtocol> {
    let loaded: Vec<Option<TrainedProtocol>> = job
        .assets
        .iter()
        .map(|n| remy::serialize::load(&remy::serialize::asset_path(n)).ok())
        .collect();
    if loaded.iter().all(Option::is_some) {
        return loaded.into_iter().flatten().collect();
    }
    match job.co_alternations {
        None => job
            .assets
            .iter()
            .map(|n| tao_asset(n, job.specs.clone(), job.cfg.clone()))
            .collect(),
        Some(alternations) => {
            eprintln!(
                "[learnability] co-optimizing {} (no committed assets found)...",
                job.assets.join(" + ")
            );
            let names: Vec<&str> = job.assets.iter().map(String::as_str).collect();
            let opt = remy::Optimizer::new(job.specs.clone(), job.cfg.clone());
            let protos = opt.co_optimize(
                vec![WhiskerTree::default_tree(); job.assets.len()],
                alternations,
                &names,
            );
            for p in &protos {
                let path = remy::serialize::asset_path(&p.name);
                if let Err(e) = remy::serialize::save(p, &path) {
                    eprintln!("[learnability] warning: could not save {}: {e}", p.name);
                }
            }
            protos
        }
    }
}

/// Load-or-train every protocol an experiment depends on, in
/// [`Experiment::train_specs`] order.
pub fn ensure_trained(exp: &dyn Experiment) -> Vec<TrainedProtocol> {
    exp.train_specs().iter().flat_map(run_train_job).collect()
}

// ---------------------------------------------------------------------------
// Shared training budgets and metrics.
// ---------------------------------------------------------------------------

/// Cost class of a training spec (re-exported from `remy::trainer`, the
/// single home of the budget presets).
pub use remy::TrainCost;

/// Standard training budget used for all committed protocol assets.
///
/// Delegates to [`remy::TrainBudget::for_fidelity`] — the one copy of the
/// per-fidelity presets (including the `LEARNABILITY_FAST_TRAIN` /
/// `LEARNABILITY_VERBOSE` env handling) — rendered as the tree trainer's
/// [`OptimizerConfig`].
pub fn train_cfg(cost: TrainCost) -> OptimizerConfig {
    remy::TrainBudget::for_fidelity(cost).tree_config()
}

/// Train (or load the committed asset for) a Tao protocol.
pub fn tao_asset(name: &str, specs: Vec<ScenarioSpec>, cfg: OptimizerConfig) -> TrainedProtocol {
    remy::serialize::load_or_train(name, || {
        eprintln!("[learnability] training {name} (no committed asset found)...");
        let t0 = std::time::Instant::now();
        let p = remy::Optimizer::new(specs, cfg).optimize(name);
        eprintln!(
            "[learnability] trained {name} in {:.1}s (score {:.3})",
            t0.elapsed().as_secs_f64(),
            p.score
        );
        p
    })
}

/// Normalized objective of a flow: `log2(tpt/fair) − δ·log2(delay/base)`,
/// so the omniscient protocol sits at 0. Returns `None` for flows that
/// never turned on.
pub fn normalized_objective(
    out: &FlowOutcome,
    fair_tpt_bps: f64,
    base_delay_s: f64,
    delta: f64,
) -> Option<f64> {
    if out.on_time_s <= 0.0 {
        return None;
    }
    let obj = Objective::new(delta);
    let delay = if out.packets_delivered == 0 {
        base_delay_s
    } else {
        out.avg_delay_s
    };
    Some(obj.normalized_utility(out.throughput_bps, delay, fair_tpt_bps, base_delay_s))
}

/// Mean normalized objective over the flows of several runs.
pub fn mean_normalized_objective(
    outcomes: &[netsim::sim::RunOutcome],
    fair_tpt_bps: f64,
    base_delay_s: f64,
) -> f64 {
    let vals: Vec<f64> = outcomes
        .iter()
        .flat_map(|run| run.flows.iter())
        .filter_map(|f| normalized_objective(f, fair_tpt_bps, base_delay_s, 1.0))
        .collect();
    if vals.is_empty() {
        f64::NEG_INFINITY
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Logarithmically spaced grid including both endpoints.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            (lo.ln() + t * (hi.ln() - lo.ln())).exp()
        })
        .collect()
}

/// Linearly spaced grid including both endpoints.
pub fn lin_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Format a [`SummaryStat`] as `median (±std)`.
pub fn fmt_stat(s: &SummaryStat, unit: &str) -> String {
    format!("{:.2}{unit} (±{:.2})", s.median, s.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_correct_endpoints() {
        let g = log_grid(1.0, 1000.0, 4);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[3] - 1000.0).abs() < 1e-6);
        assert!((g[1] - 10.0).abs() < 1e-6, "log spacing: {g:?}");
        let l = lin_grid(0.0, 10.0, 6);
        assert_eq!(l, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn fidelity_from_str_covers_both_conventions() {
        // Canonical CLI names and the LEARNABILITY_FULL boolean spelling
        // go through the one FromStr impl.
        assert_eq!("quick".parse(), Ok(Fidelity::Quick));
        assert_eq!("full".parse(), Ok(Fidelity::Full));
        assert_eq!("".parse(), Ok(Fidelity::Quick));
        assert_eq!("0".parse(), Ok(Fidelity::Quick));
        assert_eq!("false".parse(), Ok(Fidelity::Quick));
        assert_eq!("1".parse(), Ok(Fidelity::Full));
        assert_eq!("true".parse(), Ok(Fidelity::Full));
        assert_eq!("TRUE".parse(), Ok(Fidelity::Full));
        assert!("yes".parse::<Fidelity>().is_err());
        assert!("medium".parse::<Fidelity>().is_err());
    }

    #[test]
    fn fidelity_flag_parsing() {
        assert_eq!(Fidelity::from_flag("quick"), Ok(Fidelity::Quick));
        assert_eq!(Fidelity::from_flag("full"), Ok(Fidelity::Full));
        assert!(Fidelity::from_flag("medium").is_err());
        assert_eq!(Fidelity::Quick.name(), "quick");
        assert_eq!(Fidelity::Full.name(), "full");
    }

    #[test]
    fn heavy_budget_is_cheaper() {
        let n = train_cfg(TrainCost::Normal);
        let h = train_cfg(TrainCost::Heavy);
        assert!(h.sim_duration_s < n.sim_duration_s);
        assert!(h.rounds < n.rounds);
    }

    #[test]
    fn normalized_objective_zero_at_ideal() {
        let f = FlowOutcome {
            flow: 0,
            throughput_bps: 5e6,
            avg_delay_s: 0.075,
            avg_queueing_delay_s: 0.0,
            min_one_way_s: 0.075,
            bytes_delivered: 1,
            packets_delivered: 1,
            on_time_s: 1.0,
            drops: netsim::flow::DropStats::default(),
            timeouts: 0,
            losses: 0,
            transmissions: 0,
            retransmissions: 0,
        };
        let v = normalized_objective(&f, 5e6, 0.075, 1.0).unwrap();
        assert!(v.abs() < 1e-12);
        let never_on = FlowOutcome {
            on_time_s: 0.0,
            ..f
        };
        assert!(normalized_objective(&never_on, 5e6, 0.075, 1.0).is_none());
    }

    #[test]
    fn registry_lists_all_twenty_experiments() {
        let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
        assert_eq!(
            ids,
            vec![
                "calibration",
                "link_speed",
                "multiplexing",
                "rtt",
                "topology",
                "tcp_aware",
                "diversity",
                "signals",
                "universal",
                "aqm",
                "asymmetry",
                "churn",
                "shared_uplink",
                "churn_mginf",
                "bursty_loss",
                "outage_recovery",
                "adversarial",
                "learned_vs_online",
                "delayed_ack",
                "many_flows"
            ]
        );
        assert!(find("calibration").is_some());
        assert!(find("nope").is_none());
        for e in registry() {
            assert!(!e.paper_artifact().is_empty(), "{} has artifact", e.id());
        }
    }

    #[test]
    fn train_specs_are_descriptions_only() {
        // Describing training must never touch assets or train anything —
        // `learnability list` depends on this being cheap.
        for e in registry() {
            let jobs = e.train_specs();
            assert!(!jobs.is_empty(), "{} declares its protocols", e.id());
            for j in &jobs {
                assert!(!j.assets.is_empty());
                assert!(!j.specs.is_empty());
                if let Some(alt) = j.co_alternations {
                    assert!(alt > 0);
                    assert!(j.assets.len() > 1, "co-optimization needs several slots");
                }
            }
        }
    }

    #[test]
    fn run_options_seed_set() {
        let mut o = RunOptions::new(Fidelity::Quick);
        assert_eq!(o.seed_set(), vec![0, 1, 2]);
        o.seeds = Some(5);
        assert_eq!(o.seed_set(), vec![0, 1, 2, 3, 4]);
        let f = RunOptions::new(Fidelity::Full);
        assert_eq!(f.seed_set().len(), 8);
    }
}
