//! The study's experiments: one module per paper figure/table.
//!
//! | module | paper artifact |
//! |---|---|
//! | [`calibration`] | Fig 1 / Table 1 — Tao vs Cubic vs Cubic-over-sfqCoDel vs omniscient |
//! | [`link_speed`] | Fig 2 / Table 2 — operating range in link speed |
//! | [`multiplexing`] | Fig 3 / Table 3 — degree of multiplexing |
//! | [`rtt`] | Fig 4 / Table 4 — propagation delay |
//! | [`topology`] | Figs 5–6 / Table 5 — one- vs two-bottleneck knowledge |
//! | [`tcp_aware`] | Figs 7–8 / Table 6 — knowledge about incumbent endpoints |
//! | [`diversity`] | Fig 9 / Table 7 — the price of sender diversity |
//! | [`signals`] | §3.4 — value of the congestion signals (knockout study) |
//! | [`universal`] | extension — the conclusion's "one protocol for everything" question |
//!
//! Every experiment separates *training* (producing Tao protocols with the
//! Remy optimizer, cached as JSON assets like the protocols the paper
//! published) from *testing* (sweeping the testing scenarios and printing
//! the figure's series/rows).

pub mod calibration;
pub mod diversity;
pub mod link_speed;
pub mod multiplexing;
pub mod rtt;
pub mod signals;
pub mod tcp_aware;
pub mod topology;
pub mod universal;

use crate::runner::SummaryStat;
use netsim::flow::FlowOutcome;
use remy::{Objective, OptimizerConfig, ScenarioSpec, TrainedProtocol};

/// How much compute to spend. `Quick` regenerates every figure's *shape*
/// in minutes; `Full` uses longer simulations, more seeds and finer sweeps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    Quick,
    Full,
}

impl Fidelity {
    /// `LEARNABILITY_FULL=1` selects full fidelity.
    pub fn from_env() -> Self {
        match std::env::var("LEARNABILITY_FULL") {
            Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => Fidelity::Full,
            _ => Fidelity::Quick,
        }
    }

    /// Seeds per (scheme, test point).
    pub fn seeds(self) -> std::ops::Range<u64> {
        match self {
            Fidelity::Quick => 0..3,
            Fidelity::Full => 0..8,
        }
    }

    /// Simulated seconds per test run.
    pub fn test_duration_s(self) -> f64 {
        match self {
            Fidelity::Quick => 16.0,
            Fidelity::Full => 60.0,
        }
    }
}

/// Cost class of a training spec: heavy specs (very fast links, 100-way
/// multiplexing) get shorter simulations so training budgets stay sane.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrainCost {
    Normal,
    Heavy,
}

/// Standard training budget used for all committed protocol assets.
///
/// The paper burned a CPU-year per protocol on an 80-core machine; these
/// budgets train in minutes and reproduce the *orderings* the study is
/// about (see DESIGN.md on substitutions).
pub fn train_cfg(cost: TrainCost) -> OptimizerConfig {
    let mut cfg = OptimizerConfig {
        draws_per_eval: 6,
        sim_duration_s: 8.0,
        rounds: 8,
        max_leaves: 8,
        scales: vec![4.0, 1.0],
        threads: 0,
        seed: 0x51C0_2014,
        event_budget: 8_000_000,
        masks: Vec::new(),
        scheduler: Default::default(),
        verbose: std::env::var("LEARNABILITY_VERBOSE").is_ok(),
    };
    if cost == TrainCost::Heavy {
        cfg.sim_duration_s = 3.0;
        cfg.draws_per_eval = 5;
        cfg.rounds = 5;
        cfg.max_leaves = 5;
        cfg.event_budget = 4_000_000;
    }
    // LEARNABILITY_FAST_TRAIN=1 slashes budgets for time-boxed retrains
    // (used when regenerating all assets under a deadline).
    if std::env::var("LEARNABILITY_FAST_TRAIN").is_ok() {
        cfg.rounds = cfg.rounds.min(4);
        cfg.max_leaves = cfg.max_leaves.min(4);
        cfg.draws_per_eval = cfg.draws_per_eval.min(4);
        cfg.sim_duration_s = cfg.sim_duration_s.min(5.0);
        cfg.scales = vec![4.0];
        cfg.event_budget = cfg.event_budget.min(2_000_000);
    }
    cfg
}

/// Train (or load the committed asset for) a Tao protocol.
pub fn tao_asset(name: &str, specs: Vec<ScenarioSpec>, cfg: OptimizerConfig) -> TrainedProtocol {
    remy::serialize::load_or_train(name, || {
        eprintln!("[learnability] training {name} (no committed asset found)...");
        let t0 = std::time::Instant::now();
        let p = remy::Optimizer::new(specs, cfg).optimize(name);
        eprintln!(
            "[learnability] trained {name} in {:.1}s (score {:.3})",
            t0.elapsed().as_secs_f64(),
            p.score
        );
        p
    })
}

/// Normalized objective of a flow: `log2(tpt/fair) − δ·log2(delay/base)`,
/// so the omniscient protocol sits at 0. Returns `None` for flows that
/// never turned on.
pub fn normalized_objective(
    out: &FlowOutcome,
    fair_tpt_bps: f64,
    base_delay_s: f64,
    delta: f64,
) -> Option<f64> {
    if out.on_time_s <= 0.0 {
        return None;
    }
    let obj = Objective::new(delta);
    let delay = if out.packets_delivered == 0 {
        base_delay_s
    } else {
        out.avg_delay_s
    };
    Some(obj.normalized_utility(out.throughput_bps, delay, fair_tpt_bps, base_delay_s))
}

/// Mean normalized objective over the flows of several runs.
pub fn mean_normalized_objective(
    outcomes: &[netsim::sim::RunOutcome],
    fair_tpt_bps: f64,
    base_delay_s: f64,
) -> f64 {
    let vals: Vec<f64> = outcomes
        .iter()
        .flat_map(|run| run.flows.iter())
        .filter_map(|f| normalized_objective(f, fair_tpt_bps, base_delay_s, 1.0))
        .collect();
    if vals.is_empty() {
        f64::NEG_INFINITY
    } else {
        vals.iter().sum::<f64>() / vals.len() as f64
    }
}

/// Logarithmically spaced grid including both endpoints.
pub fn log_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && n >= 2);
    (0..n)
        .map(|i| {
            let t = i as f64 / (n - 1) as f64;
            (lo.ln() + t * (hi.ln() - lo.ln())).exp()
        })
        .collect()
}

/// Linearly spaced grid including both endpoints.
pub fn lin_grid(lo: f64, hi: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2);
    (0..n)
        .map(|i| lo + (hi - lo) * i as f64 / (n - 1) as f64)
        .collect()
}

/// Format a [`SummaryStat`] as `median (±std)`.
pub fn fmt_stat(s: &SummaryStat, unit: &str) -> String {
    format!("{:.2}{unit} (±{:.2})", s.median, s.std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_correct_endpoints() {
        let g = log_grid(1.0, 1000.0, 4);
        assert!((g[0] - 1.0).abs() < 1e-9);
        assert!((g[3] - 1000.0).abs() < 1e-6);
        assert!((g[1] - 10.0).abs() < 1e-6, "log spacing: {g:?}");
        let l = lin_grid(0.0, 10.0, 6);
        assert_eq!(l, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn fidelity_env_default_quick() {
        std::env::remove_var("LEARNABILITY_FULL");
        assert_eq!(Fidelity::from_env(), Fidelity::Quick);
    }

    #[test]
    fn heavy_budget_is_cheaper() {
        let n = train_cfg(TrainCost::Normal);
        let h = train_cfg(TrainCost::Heavy);
        assert!(h.sim_duration_s < n.sim_duration_s);
        assert!(h.rounds < n.rounds);
    }

    #[test]
    fn normalized_objective_zero_at_ideal() {
        let f = FlowOutcome {
            flow: 0,
            throughput_bps: 5e6,
            avg_delay_s: 0.075,
            avg_queueing_delay_s: 0.0,
            min_one_way_s: 0.075,
            bytes_delivered: 1,
            packets_delivered: 1,
            on_time_s: 1.0,
            forward_drops: 0,
            timeouts: 0,
            losses: 0,
            transmissions: 0,
            retransmissions: 0,
        };
        let v = normalized_objective(&f, 5e6, 0.075, 1.0).unwrap();
        assert!(v.abs() < 1e-12);
        let never_on = FlowOutcome {
            on_time_s: 0.0,
            ..f
        };
        assert!(normalized_objective(&never_on, 5e6, 0.075, 1.0).is_none());
    }
}
