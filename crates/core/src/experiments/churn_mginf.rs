//! Extension — M/G/∞ flow churn: unblocked Poisson arrivals that overlap
//! within each sender slot.
//!
//! The churn experiment's arrival process is *blocked*: a slot ignores
//! arrivals while a transfer is in progress, so offered load saturates at
//! duty `λd/(1+λd)` no matter how fast flows arrive. Real links don't
//! block — new transfers start on top of old ones. This experiment runs
//! the same ten-slot dumbbell with `Churn { unblocked: true }`: each slot
//! is an M/G/∞ station whose busy periods are unions of overlapping
//! transfers (per-slot flow multiplexing in the engine), ON with
//! probability `1 − e^(−λd)`. At high arrival rates the unblocked slots
//! stay almost always on — near-saturation with none of the cold-start
//! churn the blocked variant shows — while at the λ = 1/s anchor both
//! processes offer similar load and the comparison isolates the burst
//! structure. Blocked points ride along as the in-sweep baseline.

use super::{
    fmt_stat, mean_normalized_objective, run_train_job, train_cfg, Experiment, Fidelity, TrainCost,
    TrainJob,
};
use crate::experiments::multiplexing;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use remy::{BufferSpec, ScenarioSpec};

/// Asset shared with the multiplexing/churn experiments: the 1–10-way Tao.
pub const ASSET: &str = "tao-mux-10";

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Arrival-process variants, in series order.
const MODES: [&str; 2] = ["mginf", "blocked"];

/// Sender slots on the dumbbell (the trained multiplexing range's top).
const SLOTS: usize = 10;

/// Mean flow duration (seconds); λ sweeps around the paper's 1/s point.
const MEAN_DURATION_S: f64 = 1.0;

fn arrival_rates(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![0.2, 1.0, 5.0],
        Fidelity::Full => vec![0.1, 0.2, 0.5, 1.0, 2.0, 5.0],
    }
}

/// The ten-slot dumbbell under either churn variant.
fn churn_network(arrival_rate_hz: f64, unblocked: bool) -> NetworkConfig {
    let workload = if unblocked {
        WorkloadSpec::churn_mginf(arrival_rate_hz, MEAN_DURATION_S)
    } else {
        WorkloadSpec::churn(arrival_rate_hz, MEAN_DURATION_S)
    };
    dumbbell(
        SLOTS,
        15e6,
        0.150,
        QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
        workload,
    )
}

fn fair_share(net: &NetworkConfig) -> f64 {
    omniscient::omniscient(net)[0].throughput_bps
}

/// The M/G/∞ churn experiment (`learnability run churn_mginf`).
pub struct ChurnMginf;

impl Experiment for ChurnMginf {
    fn id(&self) -> &'static str {
        "churn_mginf"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — M/G/inf churn: unblocked overlapping flow arrivals vs the \
         blocked-arrival baseline"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Identical job to the multiplexing experiment's tao-mux-10 slot,
        // so one committed asset serves all three churn-family sweeps.
        vec![TrainJob::single(
            ASSET,
            vec![ScenarioSpec::multiplexing(
                multiplexing::RANGES[1].1,
                BufferSpec::BdpMultiple(5.0),
            )],
            train_cfg(TrainCost::Normal),
        )]
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &rate in &arrival_rates(fidelity) {
            for (mode, unblocked) in [("mginf", true), ("blocked", false)] {
                let net = churn_network(rate, unblocked);
                for (label, scheme) in [
                    ("tao", Scheme::tao(tao.tree.clone(), "tao")),
                    ("cubic", Scheme::Cubic),
                    ("newreno", Scheme::NewReno),
                ] {
                    points.push(SweepPoint::homogeneous(
                        format!("{mode}|{label}"),
                        rate,
                        net.clone(),
                        scheme,
                        seeds.clone(),
                        dur,
                    ));
                }
            }
        }
        points
    }

    fn summarize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let base_delay = 0.075;

        let mut series: Vec<Series> = MODES
            .iter()
            .flat_map(|m| SCHEMES.iter().map(move |s| Series::new(format!("{s}@{m}"))))
            .collect();
        let mut t = Table::new(
            "M/G/inf vs blocked churn — 15 Mbps, 150 ms RTT, 10 slots, mean \
             flow duration 1 s",
            &[
                "arrival rate",
                "arrivals",
                "scheme",
                "throughput",
                "queueing delay",
            ],
        );
        for p in points {
            let (mode, label) = p.key().split_once('|').expect("key is mode|scheme");
            let obj = mean_normalized_objective(&p.runs, fair_share(&p.point.net), base_delay);
            let name = format!("{label}@{mode}");
            let si = series
                .iter()
                .position(|s| s.name == name)
                .expect("known series");
            series[si].push(p.x(), obj);
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            t.row(vec![
                format!("{:.1}/s", p.x()),
                mode.to_string(),
                label.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
            ]);
        }
        fig.charts.push(ChartData::from_series(
            "normalized objective vs per-slot arrival rate (unblocked M/G/inf \
             vs blocked arrivals)",
            "arrivals per second",
            &series,
        ));
        fig.tables.push(TableData::from_table(&t));

        let max_rate = *arrival_rates(fidelity).last().unwrap();
        for s in SCHEMES {
            for m in MODES {
                if let Some(sr) = fig.chart_series(0, &format!("{s}@{m}")) {
                    if let Some(at_1) = sr.value_at(1.0) {
                        fig.push_summary(format!("{s}_{m}_objective_at_1hz"), at_1);
                    }
                    if let Some(at_max) = sr.value_at(max_rate) {
                        fig.push_summary(format!("{s}_{m}_objective_at_{max_rate:.0}hz"), at_max);
                    }
                }
            }
        }
        if let (Some(mg), Some(bl)) = (
            fig.summary_value(&format!("tao_mginf_objective_at_{max_rate:.0}hz")),
            fig.summary_value(&format!("tao_blocked_objective_at_{max_rate:.0}hz")),
        ) {
            fig.notes.push(format!(
                "tao at λ = {max_rate:.0}/s: objective {mg:.3} under M/G/inf arrivals \
                 (slots ~always on, duty 1 - e^(-λd) ≈ {:.3}) vs {bl:.3} blocked \
                 (duty λd/(1+λd) ≈ {:.3}) — the unblocked regime removes \
                 cold-start churn but deepens sustained multiplexing",
                1.0 - (-max_rate * MEAN_DURATION_S).exp(),
                max_rate * MEAN_DURATION_S / (1.0 + max_rate * MEAN_DURATION_S),
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_share_everything_but_blocking() {
        let mg = churn_network(1.0, true);
        let bl = churn_network(1.0, false);
        assert_eq!(mg.links, bl.links);
        assert_eq!(mg.flows.len(), bl.flows.len());
        mg.validate().unwrap();
        assert!(matches!(
            mg.flows[0].workload,
            WorkloadSpec::Churn {
                unblocked: true,
                ..
            }
        ));
    }

    #[test]
    fn mginf_offers_more_load_at_high_rates() {
        // duty 1 − e^{−5} ≈ 0.993 vs blocked 5/6 ≈ 0.833
        let mg = omniscient::on_probability(&churn_network(5.0, true).flows[0].workload);
        let bl = omniscient::on_probability(&churn_network(5.0, false).flows[0].workload);
        assert!((mg - 0.9933).abs() < 1e-3, "{mg}");
        assert!((bl - 5.0 / 6.0).abs() < 1e-9, "{bl}");
        assert!(mg > bl);
    }

    #[test]
    fn train_job_matches_multiplexing_asset() {
        let ours = ChurnMginf.train_specs().remove(0);
        let theirs = multiplexing::Multiplexing
            .train_specs()
            .into_iter()
            .find(|j| j.assets == vec![ASSET.to_string()])
            .expect("multiplexing declares tao-mux-10");
        assert_eq!(ours.specs, theirs.specs, "one asset must serve both");
    }

    #[test]
    fn arrival_grids_bracket_the_anchor() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let g = arrival_rates(f);
            assert!(g.contains(&1.0));
            assert!(g.iter().any(|&r| r < 1.0) && g.iter().any(|&r| r > 1.0));
        }
    }
}
