//! Extension — shared uplink: every flow's ACKs through one reverse link.
//!
//! The asymmetry experiment starves each flow's *private* ACK channel;
//! real households starve a *shared* one. Here four senders on the
//! calibration bottleneck return all their acknowledgments through a
//! single reverse link whose rate is swept from the forward rate down to
//! 1/50× of it (`ReverseSpec { shared: true }`), so ACK compression,
//! cross-flow ACK queueing and reverse-path drops come from genuine
//! contention. The reverse queue discipline is part of the sweep:
//! drop-tail (ACK bufferbloat — a standing ACK queue inflates every RTT
//! sample the senders see) versus CoDel (sojourn-triggered ACK drops keep
//! the reverse queue short at the price of ack-clock gaps). Neither
//! regime exists in the training distribution; the question is which
//! failure mode the learned protocol mishandles worse.

use super::{fmt_stat, mean_normalized_objective, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Reverse queue disciplines swept, in series order.
const QUEUES: [&str; 2] = ["droptail", "codel"];

/// Senders sharing the uplink (the calibration dumbbell, doubled, so the
/// shared reverse link sees real cross-flow interleaving).
const SENDERS: usize = 4;

/// Reverse-path slowdown factors swept (shared rate = forward / factor).
fn slowdowns(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![1.0, 8.0, 50.0],
        Fidelity::Full => vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 50.0],
    }
}

/// The forward network: the calibration bottleneck with four senders.
fn base_network() -> NetworkConfig {
    dumbbell(
        SENDERS,
        32e6,
        0.150,
        QueueSpec::drop_tail_bdp(32e6, 0.150, 5.0),
        WorkloadSpec::on_off_1s(),
    )
}

/// The swept network: shared reverse link at `forward / slowdown` under
/// the chosen ACK queue discipline (5 reverse-BDP buffers either way).
fn shared_network(slowdown: f64, queue: &str) -> NetworkConfig {
    base_network().with_shared_reverse(slowdown, |rate, _| match queue {
        "droptail" => QueueSpec::drop_tail_bdp(rate, 0.150, 5.0),
        "codel" => QueueSpec::codel_default(rate, 0.150, 5.0),
        other => panic!("unknown reverse queue '{other}'"),
    })
}

/// The shared-uplink experiment (`learnability run shared_uplink`).
pub struct SharedUplink;

impl Experiment for SharedUplink {
    fn id(&self) -> &'static str {
        "shared_uplink"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — shared uplink: all flows' ACKs through one reverse link \
         (1x -> 1/50x), drop-tail vs CoDel ACK queue"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // The calibration Tao: trained with an uncongested private
        // reverse path, evaluated where ACKs contend for a shared one.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &factor in &slowdowns(fidelity) {
            for queue in QUEUES {
                let net = shared_network(factor, queue);
                for (label, scheme) in [
                    ("tao", Scheme::tao(tao.tree.clone(), "tao")),
                    ("cubic", Scheme::Cubic),
                    ("newreno", Scheme::NewReno),
                ] {
                    points.push(SweepPoint::homogeneous(
                        format!("{queue}|{label}"),
                        factor,
                        net.clone(),
                        scheme,
                        seeds.clone(),
                        dur,
                    ));
                }
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let omn = omniscient::omniscient(&base_network());
        let (fair_tpt, base_delay) = (omn[0].throughput_bps, omn[0].delay_s);

        let mut t = Table::new(
            "shared uplink — 32 Mbps forward, 150 ms RTT, 4 senders, one \
             reverse link for all ACKs",
            &[
                "reverse slowdown",
                "ACK queue",
                "scheme",
                "throughput",
                "queueing delay",
                "ACK drops/run",
            ],
        );
        let mut series: Vec<Series> = QUEUES
            .iter()
            .flat_map(|q| SCHEMES.iter().map(move |s| Series::new(format!("{s}@{q}"))))
            .collect();
        for p in points {
            let (queue, label) = p.key().split_once('|').expect("key is queue|scheme");
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let obj = mean_normalized_objective(&p.runs, fair_tpt, base_delay);
            let ack_drops: f64 = p
                .runs
                .iter()
                .map(|r| r.flows.iter().map(|f| f.drops.ack).sum::<u64>() as f64)
                .sum::<f64>()
                / p.runs.len().max(1) as f64;
            t.row(vec![
                format!("1/{:.0}x", p.x()),
                queue.to_string(),
                label.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
                format!("{ack_drops:.0}"),
            ]);
            let name = format!("{label}@{queue}");
            let si = series
                .iter()
                .position(|s| s.name == name)
                .expect("known series");
            series[si].push(p.x(), obj);
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "normalized objective vs shared-uplink slowdown, by reverse ACK queue",
            "slowdown (forward rate / shared reverse rate)",
            &series,
        ));

        for q in QUEUES {
            for s in SCHEMES {
                if let Some(sr) = fig.chart_series(0, &format!("{s}@{q}")) {
                    let at_1 = sr.value_at(1.0).unwrap_or(f64::NEG_INFINITY);
                    let at_50 = sr.value_at(50.0).unwrap_or(f64::NEG_INFINITY);
                    fig.push_summary(format!("{s}_{q}_objective_at_1x"), at_1);
                    fig.push_summary(format!("{s}_{q}_objective_at_50x"), at_50);
                    fig.push_summary(format!("{s}_{q}_degradation_1_to_50"), at_1 - at_50);
                }
            }
        }
        if let (Some(dt), Some(cd)) = (
            fig.summary_value("tao_droptail_objective_at_50x"),
            fig.summary_value("tao_codel_objective_at_50x"),
        ) {
            fig.notes.push(format!(
                "tao at a 1/50x shared uplink: objective {dt:.3} behind a drop-tail \
                 ACK queue vs {cd:.3} behind CoDel (positive difference = ACK \
                 bufferbloat hurts the learned protocol more than ACK drops do)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    #[test]
    fn swept_networks_share_one_reverse_link_per_bottleneck() {
        for queue in QUEUES {
            let net = shared_network(8.0, queue);
            net.validate().unwrap();
            let r = net.links[0].reverse.as_ref().expect("reverse spec");
            assert!(r.shared, "contention requires a shared link");
            assert_eq!(r.rate_bps, 32e6 / 8.0);
            // reverse delay mirrors forward: min RTT unchanged
            assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        }
    }

    #[test]
    fn queue_disciplines_differ_only_in_spec() {
        let dt = shared_network(50.0, "droptail");
        let cd = shared_network(50.0, "codel");
        assert!(matches!(
            dt.links[0].reverse.as_ref().unwrap().queue,
            QueueSpec::DropTail { .. }
        ));
        assert!(matches!(
            cd.links[0].reverse.as_ref().unwrap().queue,
            QueueSpec::Codel { .. }
        ));
        assert_eq!(dt.links[0].queue, cd.links[0].queue, "forward identical");
    }

    #[test]
    fn slowdown_grids_anchor_both_ends() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let g = slowdowns(f);
            assert_eq!(g[0], 1.0);
            assert_eq!(*g.last().unwrap(), 50.0);
        }
    }
}
