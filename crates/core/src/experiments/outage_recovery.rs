//! Extension — link outages: how fast each scheme resumes after a
//! blackout, as a function of blackout length.
//!
//! The paper's scenarios never sever the path; TCP's answer to a dead
//! link is the RTO exponential-backoff ladder, and how long a flow
//! dawdles after the link returns depends on where on that ladder the
//! blackout left it. Here a single always-on flow crosses a bottleneck
//! with a square-wave outage (6 s up, `down_s` down, packets destroyed
//! while down) and we charge each scheme its *recovery overhead*: the
//! equivalent-capacity seconds lost beyond the blackout itself, per
//! blackout. An ideal scheme resumes at full rate the instant the link
//! returns (overhead ≈ 0); a backed-off one idles until its next
//! retransmission timer fires.

use super::{fmt_stat, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::prelude::*;
use netsim::topology::{dumbbell, FaultSpec};

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Blackout lengths swept (seconds down per cycle). The baseline point
/// (`down_s == 0.0`) carries no fault at all — `fault: None` — and anchors
/// the deficit computation.
const DOWN_S: [f64; 6] = [0.0, 0.25, 0.5, 1.0, 2.0, 4.0];

/// Seconds of service between blackouts.
const UP_S: f64 = 6.0;

fn schemes(tao: &remy::TrainedProtocol) -> Vec<(String, Scheme)> {
    vec![
        ("tao".into(), Scheme::tao(tao.tree.clone(), "tao")),
        ("cubic".into(), Scheme::Cubic),
        ("newreno".into(), Scheme::NewReno),
    ]
}

/// The single-flow outage network: 16 Mbps, 100 ms RTT, 5-BDP drop-tail.
fn test_network(down_s: f64) -> NetworkConfig {
    let mut net = dumbbell(
        1,
        16e6,
        0.100,
        QueueSpec::drop_tail_bdp(16e6, 0.100, 5.0),
        WorkloadSpec::AlwaysOn,
    );
    if down_s > 0.0 {
        net.links[0].fault = Some(FaultSpec::outage_scheduled(UP_S, down_s, true));
    }
    net
}

/// Total blacked-out seconds and number of blackouts started within a run
/// of `total_s` seconds, for the square wave that is up first (the
/// simulator schedules the first `LinkDown` at `up_s`). The final interval
/// is clipped to the run's end.
fn blackouts(total_s: f64, up_s: f64, down_s: f64) -> (f64, usize) {
    let period = up_s + down_s;
    let (mut start, mut downtime, mut n) = (up_s, 0.0, 0usize);
    while start < total_s {
        downtime += (start + down_s).min(total_s) - start;
        n += 1;
        start += period;
    }
    (downtime, n)
}

/// Mean bytes delivered per run of a point (single-flow cells).
fn mean_delivered(p: &PointOutcome) -> f64 {
    if p.runs.is_empty() {
        return 0.0;
    }
    let total: u64 = p
        .runs
        .iter()
        .flat_map(|r| r.flows.iter())
        .map(|f| f.bytes_delivered)
        .sum();
    total as f64 / p.runs.len() as f64
}

/// The outage-recovery experiment (`learnability run outage_recovery`).
pub struct OutageRecovery;

impl Experiment for OutageRecovery {
    fn id(&self) -> &'static str {
        "outage_recovery"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — recovery overhead after link blackouts (the RTO-backoff axis)"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Reuses the calibration asset: recovery behavior is part of what
        // the protocol learned, not something trained for here.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &down_s in &DOWN_S {
            let net = test_network(down_s);
            for (label, scheme) in schemes(&tao) {
                points.push(SweepPoint::homogeneous(
                    format!("{down_s}|{label}"),
                    down_s,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let total_s = fidelity.test_duration_s();

        // Baseline delivered bytes per scheme (the down_s == 0 cells).
        let baseline: Vec<(String, f64)> = points
            .iter()
            .filter(|p| p.x() == 0.0)
            .map(|p| {
                let (_, scheme) = p.key().split_once('|').expect("key is down_s|scheme");
                (scheme.to_string(), mean_delivered(p))
            })
            .collect();
        let base_of = |name: &str| {
            baseline
                .iter()
                .find(|(s, _)| s == name)
                .map(|&(_, b)| b)
                .unwrap_or(0.0)
        };

        let mut t = Table::new(
            "outage recovery — 16 Mbps, 100 ms RTT, 6 s up / down_s down, packets dropped while down",
            &[
                "down_s",
                "scheme",
                "throughput",
                "timeouts",
                "fault drops",
                "recovery s/blackout",
            ],
        );
        let mut series: Vec<Series> = SCHEMES.iter().map(|s| Series::new(*s)).collect();
        for p in points {
            let (level, scheme) = p.key().split_once('|').expect("key is down_s|scheme");
            let (tpt, _) = crate::runner::flow_points(&p.runs, |_| true);
            let timeouts: u64 = p
                .runs
                .iter()
                .flat_map(|r| r.flows.iter())
                .map(|f| f.timeouts)
                .sum();
            let fault_drops: u64 = p
                .runs
                .iter()
                .flat_map(|r| r.flows.iter())
                .map(|f| f.drops.fault)
                .sum();
            // Equivalent-capacity seconds lost to the outage beyond the
            // blackout itself, per blackout: the baseline run turns bytes
            // into seconds (uniform service), the analytic square wave
            // says how much loss was unavoidable.
            let recovery = if p.x() > 0.0 {
                let b0 = base_of(scheme);
                let (downtime, n) = blackouts(total_s, UP_S, p.x());
                if b0 > 0.0 && n > 0 {
                    let deficit_s = total_s * (1.0 - mean_delivered(p) / b0);
                    Some((deficit_s - downtime) / n as f64)
                } else {
                    None
                }
            } else {
                None
            };
            t.row(vec![
                level.to_string(),
                scheme.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                timeouts.to_string(),
                fault_drops.to_string(),
                recovery.map_or("—".into(), |r| format!("{r:.2} s")),
            ]);
            if let Some(r) = recovery {
                let si = SCHEMES
                    .iter()
                    .position(|s| *s == scheme)
                    .expect("known scheme");
                series[si].push(p.x(), r);
                fig.push_summary(format!("{scheme}_down{level}_recovery_s"), r);
            }
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "recovery overhead (s per blackout) vs blackout length",
            "down_s",
            &series,
        ));

        // Headline: recovery overhead at the longest blackout — who sits
        // on the backoff ladder longest after the link returns.
        let worst = DOWN_S[DOWN_S.len() - 1];
        let at_worst = |name: &str| fig.chart_series(0, name).and_then(|s| s.value_at(worst));
        if let (Some(tao), Some(cubic)) = (at_worst("tao"), at_worst("cubic")) {
            fig.push_summary("tao_minus_cubic_recovery_at_4s", tao - cubic);
            fig.notes.push(format!(
                "recovery overhead after a {worst:.0} s blackout: tao {tao:.2} s, \
                 cubic {cubic:.2} s per blackout (positive values are seconds \
                 of equivalent capacity lost beyond the blackout itself)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_arithmetic_clips_the_final_interval() {
        // 16 s run, 6 up / 4 down: blackouts at [6, 10) and a second cycle
        // starting at 16 that never happens.
        let (down, n) = blackouts(16.0, 6.0, 4.0);
        assert_eq!(n, 1);
        assert!((down - 4.0).abs() < 1e-12);
        // 60 s run: blackouts at [6,10), [16,20), [26,30), [36,40),
        // [46,50), [56,60) — the last exactly clipped.
        let (down, n) = blackouts(60.0, 6.0, 4.0);
        assert_eq!(n, 6);
        assert!((down - 24.0).abs() < 1e-12);
        // Partial clip: run ends mid-blackout.
        let (down, n) = blackouts(8.0, 6.0, 4.0);
        assert_eq!(n, 1);
        assert!((down - 2.0).abs() < 1e-12);
    }

    #[test]
    fn swept_networks_validate_and_baseline_is_fault_free() {
        for &down_s in &DOWN_S {
            let net = test_network(down_s);
            net.validate().expect("outage spec validates");
            assert_eq!(net.links[0].fault.is_some(), down_s > 0.0);
        }
    }
}
