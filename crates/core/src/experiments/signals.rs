//! §3.4 — the value of the congestion signals (knockout study).
//!
//! Each of the four memory signals (`rec_ewma`, `slow_rec_ewma`,
//! `send_ewma`, `rtt_ratio`) is knocked out in turn and a fresh protocol
//! is designed from scratch without it. Comparing each knockout's final
//! objective to the full four-signal protocol measures how much the signal
//! contributes. The paper found every signal carried independent value,
//! with `rec_ewma` (short-term ack interarrivals) the most valuable.

use super::{tao_asset, train_cfg, Fidelity, TrainCost};
use crate::report::Table;
use crate::runner::{run_seeds, Scheme};
use protocols::{Signal, SignalMask};
use remy::{Objective, ScenarioSpec, TrainedProtocol};
use std::fmt;

/// Asset name for a knockout variant.
pub fn asset_name(knocked_out: Option<Signal>) -> String {
    match knocked_out {
        None => "tao-sig-full".into(),
        Some(s) => format!("tao-sig-no-{}", s.name()),
    }
}

/// One knockout's outcome.
#[derive(Clone, Debug)]
pub struct KnockoutRow {
    pub label: String,
    pub knocked_out: Option<Signal>,
    /// Mean objective (log2 units) on the calibration test network.
    pub objective: f64,
}

#[derive(Clone, Debug)]
pub struct SignalsResult {
    pub rows: Vec<KnockoutRow>,
}

impl SignalsResult {
    pub fn full(&self) -> &KnockoutRow {
        self.rows
            .iter()
            .find(|r| r.knocked_out.is_none())
            .expect("full protocol present")
    }

    /// Harm of each knockout: full objective − knockout objective,
    /// descending (the first entry is the most valuable signal).
    pub fn harms(&self) -> Vec<(Signal, f64)> {
        let full = self.full().objective;
        let mut harms: Vec<(Signal, f64)> = self
            .rows
            .iter()
            .filter_map(|r| r.knocked_out.map(|s| (s, full - r.objective)))
            .collect();
        harms.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        harms
    }

    pub fn most_valuable(&self) -> Signal {
        self.harms()[0].0
    }
}

impl fmt::Display for SignalsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let full = self.full().objective;
        let mut t = Table::new(
            "§3.4 — signal knockout on the calibration network",
            &["protocol", "objective", "harm vs full"],
        );
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                format!("{:.3}", r.objective),
                if r.knocked_out.is_none() {
                    "-".into()
                } else {
                    format!("{:+.3}", full - r.objective)
                },
            ]);
        }
        write!(f, "{t}")?;
        writeln!(
            f,
            "most valuable signal: {} (paper: rec_ewma)",
            self.most_valuable().name()
        )
    }
}

/// Train (or load) the five protocols: full plus one per knockout.
pub fn trained_taos() -> Vec<(Option<Signal>, TrainedProtocol)> {
    let mut out = Vec::new();
    for knocked in [
        None,
        Some(Signal::RecEwma),
        Some(Signal::SlowRecEwma),
        Some(Signal::SendEwma),
        Some(Signal::RttRatio),
    ] {
        let mut cfg = train_cfg(TrainCost::Normal);
        cfg.masks = vec![match knocked {
            None => SignalMask::all(),
            Some(s) => SignalMask::without(s),
        }];
        let name = asset_name(knocked);
        let p = tao_asset(&name, vec![ScenarioSpec::calibration()], cfg);
        out.push((knocked, p));
    }
    out
}

/// Run the knockout comparison on the calibration testing network.
pub fn run(fidelity: Fidelity) -> SignalsResult {
    let protos = trained_taos();
    let net = super::calibration::test_network();
    let dur = fidelity.test_duration_s();
    let seeds = fidelity.seeds();
    let obj = Objective::default();

    let rows = protos
        .into_iter()
        .map(|(knocked, p)| {
            let mask = match knocked {
                None => SignalMask::all(),
                Some(s) => SignalMask::without(s),
            };
            let scheme = Scheme::Tao {
                tree: p.tree.clone(),
                mask,
                label: p.name.clone(),
            };
            let mix = vec![scheme; 2];
            let outs = run_seeds(&net, &mix, seeds.clone(), dur);
            let utilities: Vec<f64> = outs
                .iter()
                .flat_map(|o| o.flows.iter())
                .filter_map(|fl| obj.flow_utility(fl))
                .collect();
            let objective = utilities.iter().sum::<f64>() / utilities.len().max(1) as f64;
            KnockoutRow {
                label: p.name,
                knocked_out: knocked,
                objective,
            }
        })
        .collect();

    SignalsResult { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asset_names_cover_all_signals() {
        assert_eq!(asset_name(None), "tao-sig-full");
        assert_eq!(asset_name(Some(Signal::RecEwma)), "tao-sig-no-rec_ewma");
        assert_eq!(asset_name(Some(Signal::RttRatio)), "tao-sig-no-rtt_ratio");
        let names: std::collections::HashSet<String> =
            Signal::ALL.iter().map(|&s| asset_name(Some(s))).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn harms_ranking_math() {
        let rows = vec![
            KnockoutRow {
                label: "full".into(),
                knocked_out: None,
                objective: 10.0,
            },
            KnockoutRow {
                label: "no-rec".into(),
                knocked_out: Some(Signal::RecEwma),
                objective: 7.0,
            },
            KnockoutRow {
                label: "no-rtt".into(),
                knocked_out: Some(Signal::RttRatio),
                objective: 9.0,
            },
        ];
        let r = SignalsResult { rows };
        assert_eq!(r.most_valuable(), Signal::RecEwma);
        let harms = r.harms();
        assert_eq!(harms[0], (Signal::RecEwma, 3.0));
        assert_eq!(harms[1], (Signal::RttRatio, 1.0));
    }
}
