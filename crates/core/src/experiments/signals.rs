//! §3.4 — the value of the congestion signals (knockout study).
//!
//! Each of the four memory signals (`rec_ewma`, `slow_rec_ewma`,
//! `send_ewma`, `rtt_ratio`) is knocked out in turn and a fresh protocol
//! is designed from scratch without it. Comparing each knockout's final
//! objective to the full four-signal protocol measures how much the signal
//! contributes. The paper found every signal carried independent value,
//! with `rec_ewma` (short-term ack interarrivals) the most valuable.

use super::{run_train_job, train_cfg, Experiment, Fidelity, TrainCost, TrainJob};
use crate::report::{FigureData, Table, TableData};
use crate::runner::{PointOutcome, Scheme, SweepPoint};
use protocols::{Signal, SignalMask};
use remy::{Objective, ScenarioSpec, TrainedProtocol};

/// The knockout set, in table order: the full protocol, then one knockout
/// per signal.
pub const KNOCKOUTS: [Option<Signal>; 5] = [
    None,
    Some(Signal::RecEwma),
    Some(Signal::SlowRecEwma),
    Some(Signal::SendEwma),
    Some(Signal::RttRatio),
];

/// Asset name for a knockout variant.
pub fn asset_name(knocked_out: Option<Signal>) -> String {
    match knocked_out {
        None => "tao-sig-full".into(),
        Some(s) => format!("tao-sig-no-{}", s.name()),
    }
}

fn mask_for(knocked_out: Option<Signal>) -> SignalMask {
    match knocked_out {
        None => SignalMask::all(),
        Some(s) => SignalMask::without(s),
    }
}

/// Train (or load) the five protocols: full plus one per knockout.
pub fn trained_taos() -> Vec<(Option<Signal>, TrainedProtocol)> {
    KNOCKOUTS
        .iter()
        .zip(Signals.train_specs().iter())
        .map(|(&knocked, job)| (knocked, run_train_job(job).remove(0)))
        .collect()
}

/// Harm of each knockout given `(knocked_out, objective)` rows: full
/// objective − knockout objective, descending (the first entry is the most
/// valuable signal).
pub fn harms(rows: &[(Option<Signal>, f64)]) -> Vec<(Signal, f64)> {
    let full = rows
        .iter()
        .find(|(k, _)| k.is_none())
        .map(|&(_, o)| o)
        .expect("full protocol present");
    let mut out: Vec<(Signal, f64)> = rows
        .iter()
        .filter_map(|&(k, o)| k.map(|s| (s, full - o)))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    out
}

/// The signal-knockout experiment (`learnability run signals`).
pub struct Signals;

impl Experiment for Signals {
    fn id(&self) -> &'static str {
        "signals"
    }

    fn paper_artifact(&self) -> &'static str {
        "§3.4 — value of the congestion signals (knockout study)"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        KNOCKOUTS
            .iter()
            .map(|&knocked| {
                let mut cfg = train_cfg(TrainCost::Normal);
                cfg.masks = vec![mask_for(knocked)];
                TrainJob::single(asset_name(knocked), vec![ScenarioSpec::calibration()], cfg)
            })
            .collect()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let net = super::calibration::test_network();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        trained_taos()
            .into_iter()
            .map(|(knocked, p)| {
                let scheme = Scheme::Tao {
                    tree: p.tree.clone(),
                    mask: mask_for(knocked),
                    label: p.name.clone(),
                };
                SweepPoint::homogeneous(
                    p.name.clone(),
                    0.0,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                )
            })
            .collect()
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let obj = Objective::default();
        // Mean objective (log2 units) on the calibration test network.
        let rows: Vec<(Option<Signal>, f64)> = points
            .iter()
            .map(|p| {
                let knocked = KNOCKOUTS
                    .iter()
                    .copied()
                    .find(|&k| asset_name(k) == p.key())
                    .expect("known knockout point");
                let utilities: Vec<f64> = p
                    .runs
                    .iter()
                    .flat_map(|o| o.flows.iter())
                    .filter_map(|fl| obj.flow_utility(fl))
                    .collect();
                let objective = utilities.iter().sum::<f64>() / utilities.len().max(1) as f64;
                (knocked, objective)
            })
            .collect();

        let full = rows
            .iter()
            .find(|(k, _)| k.is_none())
            .map(|&(_, o)| o)
            .expect("full protocol present");
        let mut t = Table::new(
            "§3.4 — signal knockout on the calibration network",
            &["protocol", "objective", "harm vs full"],
        );
        for &(knocked, objective) in &rows {
            t.row(vec![
                asset_name(knocked),
                format!("{objective:.3}"),
                match knocked {
                    None => "-".into(),
                    Some(_) => format!("{:+.3}", full - objective),
                },
            ]);
            fig.push_summary(format!("objective_{}", asset_name(knocked)), objective);
        }
        fig.tables.push(TableData::from_table(&t));

        let ranked = harms(&rows);
        for &(s, h) in &ranked {
            fig.push_summary(format!("harm_{}", s.name()), h);
        }
        fig.notes.push(format!(
            "most valuable signal: {} (paper: rec_ewma)",
            ranked[0].0.name()
        ));
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn asset_names_cover_all_signals() {
        assert_eq!(asset_name(None), "tao-sig-full");
        assert_eq!(asset_name(Some(Signal::RecEwma)), "tao-sig-no-rec_ewma");
        assert_eq!(asset_name(Some(Signal::RttRatio)), "tao-sig-no-rtt_ratio");
        let names: std::collections::HashSet<String> =
            Signal::ALL.iter().map(|&s| asset_name(Some(s))).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn harms_ranking_math() {
        let rows = vec![
            (None, 10.0),
            (Some(Signal::RecEwma), 7.0),
            (Some(Signal::RttRatio), 9.0),
        ];
        let ranked = harms(&rows);
        assert_eq!(ranked[0], (Signal::RecEwma, 3.0));
        assert_eq!(ranked[1], (Signal::RttRatio, 1.0));
    }

    #[test]
    fn train_specs_mask_exactly_one_signal() {
        let jobs = Signals.train_specs();
        assert_eq!(jobs.len(), 5);
        assert_eq!(jobs[0].cfg.masks, vec![SignalMask::all()]);
        for (job, knocked) in jobs.iter().zip(KNOCKOUTS).skip(1) {
            assert_eq!(job.cfg.masks, vec![SignalMask::without(knocked.unwrap())]);
        }
    }
}
