//! Extension — bursty non-congestive loss: a drop-tail-trained Tao under
//! a Gilbert–Elliott loss process it never saw.
//!
//! Every training scenario in the paper loses packets only to queue
//! overflow, so a learned protocol's whiskers implicitly encode "loss ⇒
//! congestion". This experiment breaks that assumption the way wireless
//! links do: the calibration dumbbell's bottleneck gains a two-state
//! Gilbert–Elliott process (rare transitions into a lossy burst state)
//! and the burst severity is swept from clean to total. Cubic and NewReno
//! are the loss-based incumbents that must mistake every burst for
//! congestion; Vegas is the delay-based foil that should not. The question
//! is which side of that divide the Tao's learned responses land on.

use super::{fmt_stat, mean_normalized_objective, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};
use netsim::topology::FaultSpec;

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 4] = ["tao", "cubic", "newreno", "vegas"];

/// Loss probability inside the bad state at each sweep level (level 0 is
/// the clean baseline and carries no fault at all — `fault: None`, the
/// bit-identical pre-fault configuration).
const LOSS_BAD: [f64; 5] = [0.0, 0.1, 0.25, 0.5, 1.0];

/// Burst shape: mean good dwell 1/0.005 = 200 packets, mean burst length
/// 1/0.1 = 10 packets, so the bad state occupies ~4.8% of packets and the
/// unconditional loss rate is ~0.048 × `loss_bad`.
const GOOD_TO_BAD: f64 = 0.005;
const BAD_TO_GOOD: f64 = 0.1;

fn schemes(tao: &remy::TrainedProtocol) -> Vec<(String, Scheme)> {
    vec![
        ("tao".into(), Scheme::tao(tao.tree.clone(), "tao")),
        ("cubic".into(), Scheme::Cubic),
        ("newreno".into(), Scheme::NewReno),
        ("vegas".into(), Scheme::Vegas),
    ]
}

/// The bursty-loss experiment (`learnability run bursty_loss`).
pub struct BurstyLoss;

impl Experiment for BurstyLoss {
    fn id(&self) -> &'static str {
        "bursty_loss"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — Gilbert–Elliott bursty loss: drop-tail-trained Tao vs loss- and delay-based TCPs"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno", "vegas"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // Reuses the calibration asset: the point is evaluating a protocol
        // that has only ever seen congestive loss.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let base = calibration::test_network();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &loss_bad in &LOSS_BAD {
            let mut net = base.clone();
            if loss_bad > 0.0 {
                net.links[0].fault = Some(FaultSpec::GilbertElliott {
                    loss_good: 0.0,
                    loss_bad,
                    good_to_bad: GOOD_TO_BAD,
                    bad_to_good: BAD_TO_GOOD,
                });
            }
            for (label, scheme) in schemes(&tao) {
                points.push(SweepPoint::homogeneous(
                    format!("{loss_bad}|{label}"),
                    loss_bad,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        // Normalize against the clean network's omniscient point: the fault
        // is exogenous, so the ideal stays the ideal.
        let omn = omniscient::omniscient(&calibration::test_network());
        let (fair_tpt, base_delay) = (omn[0].throughput_bps, omn[0].delay_s);

        let mut t = Table::new(
            "bursty loss — calibration dumbbell, GE bursts (~10 pkt) at rising severity",
            &[
                "loss_bad",
                "scheme",
                "throughput",
                "queueing delay",
                "fault drops",
                "norm. objective",
            ],
        );
        let mut series: Vec<Series> = SCHEMES.iter().map(|s| Series::new(*s)).collect();
        for p in points {
            let (level, scheme) = p.key().split_once('|').expect("key is loss_bad|scheme");
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let obj = mean_normalized_objective(&p.runs, fair_tpt, base_delay);
            let fault_drops: u64 = p
                .runs
                .iter()
                .flat_map(|r| r.flows.iter())
                .map(|f| f.drops.fault)
                .sum();
            t.row(vec![
                level.to_string(),
                scheme.to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
                fault_drops.to_string(),
                format!("{obj:.3}"),
            ]);
            let si = SCHEMES
                .iter()
                .position(|s| *s == scheme)
                .expect("known scheme");
            series[si].push(p.x(), obj);
            fig.push_summary(format!("{scheme}_loss{level}_objective"), obj);
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "normalized objective vs bad-state loss probability",
            "loss_bad",
            &series,
        ));

        // Headline: does the learned protocol degrade like a loss-based
        // TCP (mistaking bursts for congestion) or like the delay-based
        // foil? Compare each scheme's clean-vs-severe objective drop.
        let drop_of = |name: &str| {
            fig.chart_series(0, name).map(|s| {
                s.value_at(0.0).unwrap_or(f64::NEG_INFINITY)
                    - s.value_at(1.0).unwrap_or(f64::NEG_INFINITY)
            })
        };
        if let (Some(tao), Some(cubic), Some(vegas)) =
            (drop_of("tao"), drop_of("cubic"), drop_of("vegas"))
        {
            fig.push_summary("tao_clean_minus_full_burst", tao);
            fig.push_summary("cubic_clean_minus_full_burst", cubic);
            fig.push_summary("vegas_clean_minus_full_burst", vegas);
            fig.notes.push(format!(
                "objective drop from clean to loss_bad=1.0: tao {tao:.3}, \
                 cubic {cubic:.3}, vegas {vegas:.3} — whether the learned \
                 protocol reads bursty loss as congestion (cubic-like) or \
                 rides it out (vegas-like)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shape_and_clean_baseline() {
        // Declarative side only: 5 levels × 4 schemes, level 0 fault-free.
        assert_eq!(LOSS_BAD.len() * SCHEMES.len(), 20);
        assert_eq!(LOSS_BAD[0], 0.0);
        let jobs = BurstyLoss.train_specs();
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].assets, vec![calibration::ASSET.to_string()]);
    }

    #[test]
    fn ge_parameters_are_valid() {
        // The swept fault specs must all pass NetworkConfig::validate.
        let mut net = calibration::test_network();
        for &loss_bad in &LOSS_BAD[1..] {
            net.links[0].fault = Some(FaultSpec::GilbertElliott {
                loss_good: 0.0,
                loss_bad,
                good_to_bad: GOOD_TO_BAD,
                bad_to_good: BAD_TO_GOOD,
            });
            net.validate().expect("swept GE spec validates");
        }
    }
}
