//! Extension — asymmetric ACK paths: the reverse channel shrinks from the
//! forward rate down to 1/50× of it.
//!
//! The paper's reverse path is uncongested pure delay, so its protocols
//! never experienced a stretched or clumped ACK clock. This sweep pins the
//! forward direction to the calibration dumbbell and serializes every
//! acknowledgment over an explicit reverse channel whose rate is the
//! forward rate divided by the sweep variable (1× → 1/50×, the classic
//! ADSL/satellite uplink regime). Window-clocked senders can move at most
//! one data packet per ACK, so a starved reverse path caps goodput at
//! `reverse_rate / ack_size · packet_size` no matter what the forward
//! link allows — the question is how gracefully each scheme approaches
//! that ceiling, and whether the learned protocol's RTT-sensitive
//! whiskers misread ACK-queueing as forward congestion.

use super::{fmt_stat, mean_normalized_objective, run_train_job, Experiment, Fidelity, TrainJob};
use crate::experiments::calibration;
use crate::omniscient;
use crate::report::{ChartData, FigureData, Series, Table, TableData};
use crate::runner::{summarize, PointOutcome, Scheme, SweepPoint};

/// Scheme labels of the sweep, in series order.
const SCHEMES: [&str; 3] = ["tao", "cubic", "newreno"];

/// Reverse-path slowdown factors swept (reverse rate = forward / factor).
fn slowdowns(fidelity: Fidelity) -> Vec<f64> {
    match fidelity {
        Fidelity::Quick => vec![1.0, 8.0, 50.0],
        Fidelity::Full => vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 50.0],
    }
}

/// The ACK-path asymmetry experiment (`learnability run asymmetry`).
pub struct Asymmetry;

impl Experiment for Asymmetry {
    fn id(&self) -> &'static str {
        "asymmetry"
    }

    fn paper_artifact(&self) -> &'static str {
        "extension — asymmetric links: reverse (ACK) rate swept 1x -> 1/50x of forward"
    }

    fn scheme_families(&self) -> &'static [&'static str] {
        &["tao", "cubic", "newreno"]
    }

    fn train_specs(&self) -> Vec<TrainJob> {
        // The calibration Tao again: trained with a symmetric, uncongested
        // reverse path, evaluated where that assumption breaks.
        calibration::Calibration.train_specs()
    }

    fn sweep(&self, fidelity: Fidelity) -> Vec<SweepPoint> {
        let tao = run_train_job(&self.train_specs().remove(0))
            .pop()
            .expect("one protocol");
        let base = calibration::test_network();
        let dur = fidelity.test_duration_s();
        let seeds = fidelity.seeds();
        let mut points = Vec::new();
        for &factor in &slowdowns(fidelity) {
            let net = base.with_reverse_slowdown(factor);
            for (label, scheme) in [
                ("tao", Scheme::tao(tao.tree.clone(), "tao")),
                ("cubic", Scheme::Cubic),
                ("newreno", Scheme::NewReno),
            ] {
                points.push(SweepPoint::homogeneous(
                    label,
                    factor,
                    net.clone(),
                    scheme,
                    seeds.clone(),
                    dur,
                ));
            }
        }
        points
    }

    fn summarize(&self, _fidelity: Fidelity, points: &[PointOutcome]) -> FigureData {
        let mut fig = FigureData::new(self.id(), self.paper_artifact());
        let omn = omniscient::omniscient(&calibration::test_network());
        let (fair_tpt, base_delay) = (omn[0].throughput_bps, omn[0].delay_s);

        let mut t = Table::new(
            "ACK-path asymmetry — 32 Mbps forward, 150 ms RTT, 2 senders",
            &["reverse slowdown", "scheme", "throughput", "queueing delay"],
        );
        let mut series: Vec<Series> = SCHEMES.iter().map(|s| Series::new(*s)).collect();
        for p in points {
            let (tpt, qd) = crate::runner::flow_points(&p.runs, |_| true);
            let obj = mean_normalized_objective(&p.runs, fair_tpt, base_delay);
            t.row(vec![
                format!("1/{:.0}x", p.x()),
                p.key().to_string(),
                fmt_stat(&summarize(&tpt), " Mbps"),
                fmt_stat(&summarize(&qd), " ms"),
            ]);
            let si = SCHEMES
                .iter()
                .position(|s| *s == p.key())
                .expect("known scheme");
            series[si].push(p.x(), obj);
        }
        fig.tables.push(TableData::from_table(&t));
        fig.charts.push(ChartData::from_series(
            "normalized objective vs reverse-path slowdown",
            "slowdown (forward rate / reverse rate)",
            &series,
        ));

        for name in SCHEMES {
            if let Some(s) = fig.chart_series(0, name) {
                let at_1 = s.value_at(1.0).unwrap_or(f64::NEG_INFINITY);
                let at_50 = s.value_at(50.0).unwrap_or(f64::NEG_INFINITY);
                fig.push_summary(format!("{name}_objective_at_1x"), at_1);
                fig.push_summary(format!("{name}_objective_at_50x"), at_50);
                fig.push_summary(format!("{name}_degradation_1_to_50"), at_1 - at_50);
            }
        }
        if let (Some(tao), Some(reno)) = (
            fig.summary_value("tao_degradation_1_to_50"),
            fig.summary_value("newreno_degradation_1_to_50"),
        ) {
            fig.notes.push(format!(
                "objective lost from 1x to 1/50x reverse rate: tao {tao:.3} vs \
                 newreno {reno:.3} (positive gap = the learned protocol degrades \
                 faster on ACK paths it never trained for)"
            ));
        }
        fig
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::time::SimDuration;

    #[test]
    fn slowdown_grids_anchor_both_ends() {
        for f in [Fidelity::Quick, Fidelity::Full] {
            let g = slowdowns(f);
            assert_eq!(g[0], 1.0, "symmetric anchor");
            assert_eq!(*g.last().unwrap(), 50.0, "paper-motivated 1/50x end");
        }
    }

    #[test]
    fn swept_networks_keep_min_rtt() {
        let base = calibration::test_network();
        for &f in &slowdowns(Fidelity::Full) {
            let net = base.with_reverse_slowdown(f);
            net.validate().unwrap();
            assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
            assert_eq!(net.reverse_rate(0), Some(32e6 / f));
        }
    }
}
