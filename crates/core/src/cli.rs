//! The `learnability` command-line interface.
//!
//! One binary drives the whole evaluation section:
//!
//! ```sh
//! learnability list                 # every experiment and its assets
//! learnability run calibration      # run one experiment (quick fidelity)
//! learnability run all --fidelity full --seeds 8 --json out/
//! learnability train link_speed --force   # retrain an experiment's protocols
//! ```
//!
//! `run` executes the experiment's sweep on the shared work-stealing
//! engine (all cores by default; results are bit-identical for any
//! `--threads` value), prints the rendered tables, and emits one
//! [`FigureData`](crate::report::FigureData) JSON artifact per experiment
//! under `assets/figures/` (or `--json DIR`).
//!
//! The old per-figure binaries (`fig1` … `fig9`, `all_experiments`,
//! `sig_knockout`, `ext_universal`) are deprecated shims over this CLI and
//! will be removed after one release.

use crate::experiments::{self, Experiment, Fidelity, RunOptions};
use crate::report::{render_figure, Table};
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "\
usage: learnability <command> [options]

commands:
  list                          list every experiment
  run <ids|all> [options]       run experiment(s), print tables, emit JSON
                                (<ids> may be comma-separated: run rtt,aqm)
  train <ids|all> [--force] [--trainer tree|genetic]
                                train missing protocol assets
                                (--force discards cached assets first;
                                --trainer genetic runs the population
                                search instead of the whisker-tree hill
                                climb, producing '<asset>-genetic' assets
                                so the committed tree assets never move)
  replay [figure.json]          re-measure every worst-case certificate in
                                an adversarial figure on both scheduler
                                backends; fails unless each score
                                reproduces bit-identically
                                (default: assets/figures/adversarial.json)

run options:
  --fidelity quick|full         compute budget (default: quick, or
                                LEARNABILITY_FULL=1 for full)
  --seeds N                     override seeds per sweep cell (trace cells
                                keep their pinned seeds)
  --threads N                   sweep worker threads (default: all cores;
                                results are identical for any value)
  --json DIR                    write FigureData JSON here
                                (default: assets/figures/)
  --no-json                     skip the JSON artifacts
";

/// Entry point for the `learnability` binary.
pub fn main() -> ! {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    std::process::exit(run(&refs))
}

/// Entry point for the deprecated per-figure shim binaries: announce the
/// replacement, then forward to the CLI.
pub fn forward(args: &[&str]) -> ! {
    eprintln!(
        "[learnability] this binary is a deprecated shim; use \
         `cargo run --release -p bench --bin learnability -- {}`",
        args.join(" ")
    );
    std::process::exit(run(args))
}

/// Run the CLI on pre-parsed arguments; returns the process exit code.
pub fn run(args: &[&str]) -> i32 {
    match args.first() {
        Some(&"list") => {
            print!("{}", list_table());
            0
        }
        Some(&"run") => match parse_run(&args[1..]) {
            Ok((exps, opts, json_dir)) => cmd_run(&exps, &opts, json_dir.as_deref()),
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                2
            }
        },
        Some(&"train") => match parse_train(&args[1..]) {
            Ok((exps, force, trainer)) => cmd_train(&exps, force, trainer),
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                2
            }
        },
        Some(&"replay") => match args.get(2) {
            Some(extra) => {
                eprintln!("error: unexpected replay argument '{extra}'\n\n{USAGE}");
                2
            }
            None => {
                let path = args
                    .get(1)
                    .map(PathBuf::from)
                    .unwrap_or_else(|| default_json_dir().join("adversarial.json"));
                cmd_replay(&path)
            }
        },
        Some(&"--help") | Some(&"-h") | Some(&"help") => {
            print!("{USAGE}");
            0
        }
        other => {
            match other {
                Some(cmd) => eprintln!("error: unknown command '{cmd}'\n\n{USAGE}"),
                None => eprint!("{USAGE}"),
            }
            2
        }
    }
}

/// The `learnability list` table.
pub fn list_table() -> String {
    let mut t = Table::new(
        "learnability experiments",
        &["id", "paper artifact", "scheme families", "protocol assets"],
    );
    for e in experiments::registry() {
        let assets: Vec<String> = e
            .train_specs()
            .iter()
            .flat_map(|j| j.assets.clone())
            .collect();
        t.row(vec![
            e.id().to_string(),
            e.paper_artifact().to_string(),
            e.scheme_families().join(", "),
            assets.join(", "),
        ]);
    }
    t.to_string()
}

/// Resolve an experiment selector: a single id, `all`, or a
/// comma-separated list (`rtt,aqm,churn`). Duplicates are dropped while
/// preserving first-mention order; `all` inside a list expands in place.
fn select(id: Option<&str>) -> Result<Vec<&'static dyn Experiment>, String> {
    let Some(spec) = id else {
        return Err("missing experiment id(s) (or 'all')".into());
    };
    let mut exps: Vec<&'static dyn Experiment> = Vec::new();
    let mut push = |e: &'static dyn Experiment| {
        if !exps.iter().any(|have| have.id() == e.id()) {
            exps.push(e);
        }
    };
    for id in spec.split(',') {
        let id = id.trim();
        if id == "all" {
            experiments::registry().iter().copied().for_each(&mut push);
        } else if let Some(e) = experiments::find(id) {
            push(e);
        } else {
            let known: Vec<&str> = experiments::registry().iter().map(|e| e.id()).collect();
            return Err(format!(
                "unknown experiment '{id}' (known: {}, all)",
                known.join(", ")
            ));
        }
    }
    if exps.is_empty() {
        return Err("empty experiment list".into());
    }
    Ok(exps)
}

type RunArgs = (Vec<&'static dyn Experiment>, RunOptions, Option<PathBuf>);

fn parse_run(args: &[&str]) -> Result<RunArgs, String> {
    let exps = select(args.first().copied())?;
    let mut opts = RunOptions::new(Fidelity::from_env());
    let mut json_dir = Some(default_json_dir());
    let mut it = args[1..].iter();
    while let Some(&flag) = it.next() {
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--fidelity" => opts.fidelity = Fidelity::from_flag(value()?)?,
            "--seeds" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--seeds needs an integer".to_string())?;
                if n == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                opts.seeds = Some(n);
            }
            "--threads" => {
                opts.threads = value()?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--json" => json_dir = Some(PathBuf::from(value()?)),
            "--no-json" => json_dir = None,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok((exps, opts, json_dir))
}

/// Default JSON artifact directory: `assets/figures/` next to the protocol
/// assets (honors `REMY_ASSETS_DIR`).
pub fn default_json_dir() -> PathBuf {
    remy::serialize::assets_dir().join("figures")
}

/// Run one experiment end to end, printing its tables and writing the
/// JSON artifact. Returns a failure description if the run panicked, any
/// sweep cell was poisoned, or the artifact could not be written — the
/// figure (if any) is still rendered first, so a degraded run leaves its
/// evidence behind.
fn run_one(e: &dyn Experiment, opts: &RunOptions, json_dir: Option<&Path>) -> Result<(), String> {
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        experiments::run_experiment_report(e, opts)
    }))
    .map_err(|payload| format!("panicked: {}", crate::runner::panic_message(payload)))?;
    print!("{}", render_figure(&report.fig));
    if let Some(dir) = json_dir {
        let path = dir.join(format!("{}.json", e.id()));
        write_json(&report.fig, &path)
            .map_err(|err| format!("could not write {}: {err}", path.display()))?;
        eprintln!("[{}] figure data -> {}", e.id(), path.display());
    }
    if !report.poisoned.is_empty() {
        return Err(format!(
            "{} poisoned sweep cell(s): {}",
            report.poisoned.len(),
            report.poisoned.join("; ")
        ));
    }
    Ok(())
}

fn cmd_run(exps: &[&'static dyn Experiment], opts: &RunOptions, json_dir: Option<&Path>) -> i32 {
    let t0 = Instant::now();
    let mut failed: Vec<&str> = Vec::new();
    for e in exps {
        let s = Instant::now();
        match run_one(*e, opts, json_dir) {
            Ok(()) => eprintln!("[{}] done in {:.1}s", e.id(), s.elapsed().as_secs_f64()),
            Err(msg) => {
                eprintln!("error: experiment '{}' failed: {msg}", e.id());
                failed.push(e.id());
            }
        }
    }
    if exps.len() > 1 {
        eprintln!("all experiments in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if failed.is_empty() {
        0
    } else {
        eprintln!(
            "error: {} of {} experiment(s) failed: {}",
            failed.len(),
            exps.len(),
            failed.join(", ")
        );
        1
    }
}

/// `learnability replay`: re-measure every `CERTIFICATE:` entry of an
/// adversarial figure on both scheduler backends and demand bit-identical
/// scores. Returns 0 only if every certificate reproduces.
fn cmd_replay(path: &Path) -> i32 {
    use crate::experiments::adversarial::certificates_from_figure;
    use netsim::event::SchedulerKind;

    let fig = match std::fs::read_to_string(path) {
        Ok(s) => match crate::report::FigureData::from_json(&s) {
            Ok(fig) => fig,
            Err(e) => {
                eprintln!("error: {} is not FigureData JSON: {e}", path.display());
                return 1;
            }
        },
        Err(e) => {
            eprintln!(
                "error: cannot read {} (run `learnability run adversarial` first): {e}",
                path.display()
            );
            return 1;
        }
    };
    let certs = certificates_from_figure(&fig);
    if certs.is_empty() {
        eprintln!(
            "error: no CERTIFICATE entries in {} — nothing to replay",
            path.display()
        );
        return 1;
    }
    let mut failures = 0;
    for cert in &certs {
        let scheme = match crate::search::scheme_for_certificate(cert) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("[{}] cannot rebuild scheme: {e}", cert.scheme);
                failures += 1;
                continue;
            }
        };
        for kind in [SchedulerKind::Calendar, SchedulerKind::Heap] {
            let replayed = crate::search::replay(cert, &scheme, kind);
            if replayed.to_bits() == cert.score_bits {
                println!(
                    "[{}] {kind:?}: score {replayed:.6} reproduced bit-identically \
                     ({} seeds, {:.0} s)",
                    cert.scheme,
                    cert.seeds.len(),
                    cert.duration_s
                );
            } else {
                eprintln!(
                    "[{}] {kind:?}: MISMATCH — replayed {replayed} ({:#018x}) vs \
                     recorded {} ({:#018x})",
                    cert.scheme,
                    replayed.to_bits(),
                    cert.score,
                    cert.score_bits
                );
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!(
            "{} certificate(s) reproduced on both scheduler backends",
            certs.len()
        );
        0
    } else {
        eprintln!("error: {failures} replay failure(s)");
        1
    }
}

fn write_json(fig: &crate::report::FigureData, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut json = fig.to_json();
    json.push('\n');
    std::fs::write(path, json)
}

/// Which [`remy::Trainer`] `learnability train` runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TrainerKind {
    /// The whisker-tree hill climb — the strategy behind every committed
    /// asset.
    Tree,
    /// The genetic population search; results are saved under
    /// `<asset>-genetic` names so the committed tree assets never move.
    Genetic,
}

fn parse_train(args: &[&str]) -> Result<(Vec<&'static dyn Experiment>, bool, TrainerKind), String> {
    let exps = select(args.first().copied())?;
    let mut force = false;
    let mut trainer = TrainerKind::Tree;
    let mut it = args[1..].iter();
    while let Some(&flag) = it.next() {
        match flag {
            "--force" => force = true,
            "--trainer" => {
                trainer = match it.next().copied() {
                    Some("tree") => TrainerKind::Tree,
                    Some("genetic") => TrainerKind::Genetic,
                    Some(other) => {
                        return Err(format!("unknown trainer '{other}' (tree or genetic)"))
                    }
                    None => return Err("--trainer needs a value (tree or genetic)".into()),
                };
            }
            other => return Err(format!("unexpected train argument '{other}'")),
        }
    }
    Ok((exps, force, trainer))
}

/// Asset names a train job produces under the chosen trainer.
fn train_asset_names(job: &experiments::TrainJob, trainer: TrainerKind) -> Vec<String> {
    match trainer {
        TrainerKind::Tree => job.assets.clone(),
        TrainerKind::Genetic => job.assets.iter().map(|n| format!("{n}-genetic")).collect(),
    }
}

/// Run one train job under the genetic trainer (falls back to the tree
/// path for co-optimized jobs, which the population search does not
/// model).
fn run_genetic_job(job: &experiments::TrainJob) -> Vec<remy::TrainedProtocol> {
    use remy::{GeneticTrainer, TrainBudget, Trainer};
    if job.co_alternations.is_some() {
        eprintln!(
            "[learnability] genetic trainer does not co-optimize; \
             training {} with the tree trainer",
            job.assets.join("+")
        );
        return experiments::run_train_job(job);
    }
    let name = format!("{}-genetic", job.assets[0]);
    vec![remy::serialize::load_or_train(&name, || {
        eprintln!("[learnability] genetic-training {name} (no committed asset found)...");
        let t0 = Instant::now();
        let budget = TrainBudget::from_config(job.cfg.clone());
        let pool = std::sync::Arc::new(remy::EvalPool::new(budget.threads));
        let mut rng = netsim::rng::SimRng::from_seed(budget.seed);
        let p = GeneticTrainer::new(budget).train(&name, &job.specs, &pool, &mut rng);
        eprintln!(
            "[learnability] genetic-trained {name} in {:.1}s (score {:.3})",
            t0.elapsed().as_secs_f64(),
            p.score
        );
        p
    })]
}

fn cmd_train(exps: &[&'static dyn Experiment], force: bool, trainer: TrainerKind) -> i32 {
    let t0 = Instant::now();
    for e in exps {
        let s = Instant::now();
        for job in e.train_specs() {
            if force {
                // Discard cached assets so the trainer actually retrains.
                for name in train_asset_names(&job, trainer) {
                    let path = remy::serialize::asset_path(&name);
                    if std::fs::remove_file(&path).is_ok() {
                        eprintln!("[learnability] discarded cached {}", path.display());
                    }
                }
            }
            let protos = match trainer {
                TrainerKind::Tree => experiments::run_train_job(&job),
                TrainerKind::Genetic => run_genetic_job(&job),
            };
            for p in &protos {
                eprintln!(
                    "[{:>7.1}s] {} ready ({} whiskers, score {:.3})",
                    t0.elapsed().as_secs_f64(),
                    p.name,
                    p.tree.num_leaves(),
                    p.score
                );
            }
        }
        eprintln!(
            "[{}] assets ready (+{:.1}s)",
            e.id(),
            s.elapsed().as_secs_f64()
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_covers_every_registered_experiment() {
        let out = list_table();
        for e in experiments::registry() {
            assert!(out.contains(e.id()), "list must show {}", e.id());
        }
        assert!(out.contains("tao-calibration"));
    }

    #[test]
    fn run_arg_parsing() {
        let (exps, opts, json) = parse_run(&[
            "all",
            "--fidelity",
            "full",
            "--seeds",
            "5",
            "--threads",
            "2",
        ])
        .unwrap();
        assert_eq!(exps.len(), experiments::registry().len());
        assert_eq!(opts.fidelity, Fidelity::Full);
        assert_eq!(opts.seeds, Some(5));
        assert_eq!(opts.threads, 2);
        assert!(json.is_some(), "json emission is on by default");

        let (exps, _, json) = parse_run(&["calibration", "--no-json"]).unwrap();
        assert_eq!(exps[0].id(), "calibration");
        assert!(json.is_none());

        let (_, _, json) = parse_run(&["rtt", "--json", "/tmp/figs"]).unwrap();
        assert_eq!(json.unwrap(), PathBuf::from("/tmp/figs"));

        assert!(parse_run(&[]).is_err(), "id required");
        assert!(parse_run(&["bogus"]).is_err(), "unknown id rejected");
        assert!(parse_run(&["rtt", "--seeds", "0"]).is_err());
        assert!(parse_run(&["rtt", "--wat"]).is_err());
        assert!(parse_run(&["rtt", "--fidelity"]).is_err(), "missing value");
    }

    #[test]
    fn select_accepts_comma_separated_lists() {
        let ids = |spec| {
            select(Some(spec))
                .unwrap()
                .iter()
                .map(|e| e.id())
                .collect::<Vec<_>>()
        };
        assert_eq!(ids("rtt,aqm,churn"), vec!["rtt", "aqm", "churn"]);
        // Duplicates collapse, first mention wins the ordering.
        assert_eq!(ids("aqm,rtt,aqm"), vec!["aqm", "rtt"]);
        // `all` expands in place; ids already mentioned keep their slot.
        assert_eq!(ids("all").len(), experiments::registry().len());
        assert_eq!(ids("rtt,all")[0], "rtt");
        assert_eq!(ids("rtt,all").len(), experiments::registry().len());
        // Whitespace around commas is tolerated.
        assert_eq!(ids("rtt, aqm"), vec!["rtt", "aqm"]);
        let err = select(Some("rtt,bogus")).err().expect("bad id rejected");
        assert!(err.contains("bogus"), "names the bad id: {err}");
        assert!(select(Some("")).is_err(), "empty list rejected");
        assert!(select(Some(",")).is_err());
    }

    #[test]
    fn replay_requires_an_artifact() {
        // Missing file and certificate-free figures both fail loudly.
        assert_eq!(run(&["replay", "/nonexistent/adversarial.json"]), 1);
        assert_eq!(run(&["replay", "x.json", "stray"]), 2);
        let dir = std::env::temp_dir().join("lcc-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let empty = dir.join("empty.json");
        let fig = crate::report::FigureData::new("adversarial", "test");
        std::fs::write(&empty, fig.to_json()).unwrap();
        assert_eq!(run(&["replay", empty.to_str().unwrap()]), 1);
        std::fs::write(&empty, "not json").unwrap();
        assert_eq!(run(&["replay", empty.to_str().unwrap()]), 1);
    }

    #[test]
    fn replay_reproduces_a_freshly_searched_certificate() {
        // End-to-end CLI check on the cheapest budget: search -> figure
        // JSON on disk -> `learnability replay` exits 0; a tampered
        // score_bits makes it exit 1.
        use crate::search::{find_worst_case, SearchConfig};
        let cfg = SearchConfig {
            population: 1,
            generations: 0,
            survivors: 1,
            children_per_survivor: 1,
            seeds: 0..1,
            duration_s: 2.0,
            seed: 3,
            threads: 0,
            strength: 0.3,
        };
        let cert = find_worst_case(&crate::runner::Scheme::NewReno, None, &cfg)
            .certificate
            .expect("tiny search certifies");
        let mut fig = crate::report::FigureData::new("adversarial", "test");
        fig.notes.push(format!(
            "CERTIFICATE: {}",
            serde_json::to_string(&cert).unwrap()
        ));
        let dir = std::env::temp_dir().join("lcc-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fresh.json");
        std::fs::write(&path, fig.to_json()).unwrap();
        assert_eq!(run(&["replay", path.to_str().unwrap()]), 0);

        let mut bad = cert.clone();
        bad.score_bits ^= 1;
        let mut fig = crate::report::FigureData::new("adversarial", "test");
        fig.notes.push(format!(
            "CERTIFICATE: {}",
            serde_json::to_string(&bad).unwrap()
        ));
        std::fs::write(&path, fig.to_json()).unwrap();
        assert_eq!(run(&["replay", path.to_str().unwrap()]), 1);
    }

    #[test]
    fn run_fails_loudly_naming_the_broken_experiment() {
        // A sweep that panics must fail that experiment's run with a
        // non-zero exit instead of taking the process down — the hardened
        // path users hit when one experiment of `run all` is broken.
        use crate::experiments::TrainJob;
        use crate::report::FigureData;
        use crate::runner::{PointOutcome, SweepPoint};
        struct Broken;
        impl Experiment for Broken {
            fn id(&self) -> &'static str {
                "broken_fixture"
            }
            fn paper_artifact(&self) -> &'static str {
                "test fixture"
            }
            fn scheme_families(&self) -> &'static [&'static str] {
                &[]
            }
            fn train_specs(&self) -> Vec<TrainJob> {
                Vec::new()
            }
            fn sweep(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
                panic!("deliberately broken sweep")
            }
            fn summarize(&self, _fidelity: Fidelity, _points: &[PointOutcome]) -> FigureData {
                unreachable!("sweep panics first")
            }
        }
        static BROKEN: Broken = Broken;
        let opts = RunOptions::new(Fidelity::Quick);
        let err = run_one(&BROKEN, &opts, None).expect_err("broken sweep must fail");
        assert!(
            err.contains("deliberately broken sweep"),
            "failure names the cause: {err}"
        );
        assert_eq!(cmd_run(&[&BROKEN], &opts, None), 1, "non-zero exit");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert_eq!(run(&["frobnicate"]), 2);
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn train_rejects_stray_options() {
        assert_eq!(run(&["train"]), 2, "id required");
        assert_eq!(run(&["train", "bogus"]), 2, "unknown id");
        assert_eq!(
            run(&["train", "calibration", "--fidelity", "full"]),
            2,
            "train only accepts --force and --trainer"
        );
        assert_eq!(
            run(&["train", "calibration", "--force", "--wat"]),
            2,
            "trailing junk after --force rejected"
        );
        assert_eq!(
            run(&["train", "calibration", "--trainer", "annealing"]),
            2,
            "unknown trainer rejected"
        );
        assert_eq!(
            run(&["train", "calibration", "--trainer"]),
            2,
            "--trainer needs a value"
        );
    }

    #[test]
    fn train_arg_parsing_selects_the_trainer() {
        let (exps, force, trainer) = parse_train(&["calibration"]).unwrap();
        assert_eq!(exps[0].id(), "calibration");
        assert!(!force);
        assert_eq!(trainer, TrainerKind::Tree);

        let (_, force, trainer) =
            parse_train(&["calibration", "--trainer", "genetic", "--force"]).unwrap();
        assert!(force, "flags parse in any order");
        assert_eq!(trainer, TrainerKind::Genetic);

        let (_, _, trainer) = parse_train(&["calibration", "--trainer", "tree"]).unwrap();
        assert_eq!(trainer, TrainerKind::Tree);
    }

    #[test]
    fn genetic_assets_ride_under_suffixed_names() {
        let job = experiments::TrainJob::single(
            "tao-test",
            vec![remy::ScenarioSpec::link_speed_range(1.0, 2.0)],
            remy::OptimizerConfig::smoke(),
        );
        assert_eq!(train_asset_names(&job, TrainerKind::Tree), vec!["tao-test"]);
        assert_eq!(
            train_asset_names(&job, TrainerKind::Genetic),
            vec!["tao-test-genetic"]
        );
    }

    #[test]
    fn list_shows_scheme_families() {
        let out = list_table();
        assert!(out.contains("scheme families"));
        for needle in ["pcc", "vegas", "newreno"] {
            assert!(out.contains(needle), "list must mention {needle}");
        }
    }
}
