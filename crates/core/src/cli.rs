//! The `learnability` command-line interface.
//!
//! One binary drives the whole evaluation section:
//!
//! ```sh
//! learnability list                 # every experiment and its assets
//! learnability run calibration      # run one experiment (quick fidelity)
//! learnability run all --fidelity full --seeds 8 --json out/
//! learnability train link_speed --force   # retrain an experiment's protocols
//! ```
//!
//! `run` executes the experiment's sweep on the shared work-stealing
//! engine (all cores by default; results are bit-identical for any
//! `--threads` value), prints the rendered tables, and emits one
//! [`FigureData`](crate::report::FigureData) JSON artifact per experiment
//! under `assets/figures/` (or `--json DIR`).
//!
//! The old per-figure binaries (`fig1` … `fig9`, `all_experiments`,
//! `sig_knockout`, `ext_universal`) are deprecated shims over this CLI and
//! will be removed after one release.

use crate::experiments::{self, Experiment, Fidelity, RunOptions};
use crate::report::{render_figure, Table};
use std::path::{Path, PathBuf};
use std::time::Instant;

const USAGE: &str = "\
usage: learnability <command> [options]

commands:
  list                          list every experiment
  run <id|all> [options]        run experiment(s), print tables, emit JSON
  train <id|all> [--force]      train missing protocol assets
                                (--force discards cached assets first)

run options:
  --fidelity quick|full         compute budget (default: quick, or
                                LEARNABILITY_FULL=1 for full)
  --seeds N                     override seeds per sweep cell (trace cells
                                keep their pinned seeds)
  --threads N                   sweep worker threads (default: all cores;
                                results are identical for any value)
  --json DIR                    write FigureData JSON here
                                (default: assets/figures/)
  --no-json                     skip the JSON artifacts
";

/// Entry point for the `learnability` binary.
pub fn main() -> ! {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
    std::process::exit(run(&refs))
}

/// Entry point for the deprecated per-figure shim binaries: announce the
/// replacement, then forward to the CLI.
pub fn forward(args: &[&str]) -> ! {
    eprintln!(
        "[learnability] this binary is a deprecated shim; use \
         `cargo run --release -p bench --bin learnability -- {}`",
        args.join(" ")
    );
    std::process::exit(run(args))
}

/// Run the CLI on pre-parsed arguments; returns the process exit code.
pub fn run(args: &[&str]) -> i32 {
    match args.first() {
        Some(&"list") => {
            print!("{}", list_table());
            0
        }
        Some(&"run") => match parse_run(&args[1..]) {
            Ok((exps, opts, json_dir)) => cmd_run(&exps, &opts, json_dir.as_deref()),
            Err(e) => {
                eprintln!("error: {e}\n\n{USAGE}");
                2
            }
        },
        Some(&"train") => {
            let force = args.get(2) == Some(&"--force");
            let parsed = match args.get(if force { 3 } else { 2 }) {
                Some(extra) => Err(format!("unexpected train argument '{extra}'")),
                None => select(args.get(1).copied()),
            };
            match parsed {
                Ok(exps) => cmd_train(&exps, force),
                Err(e) => {
                    eprintln!("error: {e}\n\n{USAGE}");
                    2
                }
            }
        }
        Some(&"--help") | Some(&"-h") | Some(&"help") => {
            print!("{USAGE}");
            0
        }
        other => {
            match other {
                Some(cmd) => eprintln!("error: unknown command '{cmd}'\n\n{USAGE}"),
                None => eprint!("{USAGE}"),
            }
            2
        }
    }
}

/// The `learnability list` table.
pub fn list_table() -> String {
    let mut t = Table::new(
        "learnability experiments",
        &["id", "paper artifact", "protocol assets"],
    );
    for e in experiments::registry() {
        let assets: Vec<String> = e
            .train_specs()
            .iter()
            .flat_map(|j| j.assets.clone())
            .collect();
        t.row(vec![
            e.id().to_string(),
            e.paper_artifact().to_string(),
            assets.join(", "),
        ]);
    }
    t.to_string()
}

fn select(id: Option<&str>) -> Result<Vec<&'static dyn Experiment>, String> {
    match id {
        None => Err("missing experiment id (or 'all')".into()),
        Some("all") => Ok(experiments::registry().to_vec()),
        Some(id) => experiments::find(id).map(|e| vec![e]).ok_or_else(|| {
            let known: Vec<&str> = experiments::registry().iter().map(|e| e.id()).collect();
            format!(
                "unknown experiment '{id}' (known: {}, all)",
                known.join(", ")
            )
        }),
    }
}

type RunArgs = (Vec<&'static dyn Experiment>, RunOptions, Option<PathBuf>);

fn parse_run(args: &[&str]) -> Result<RunArgs, String> {
    let exps = select(args.first().copied())?;
    let mut opts = RunOptions::new(Fidelity::from_env());
    let mut json_dir = Some(default_json_dir());
    let mut it = args[1..].iter();
    while let Some(&flag) = it.next() {
        let mut value = || {
            it.next()
                .copied()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--fidelity" => opts.fidelity = Fidelity::from_flag(value()?)?,
            "--seeds" => {
                let n: u64 = value()?
                    .parse()
                    .map_err(|_| "--seeds needs an integer".to_string())?;
                if n == 0 {
                    return Err("--seeds must be at least 1".into());
                }
                opts.seeds = Some(n);
            }
            "--threads" => {
                opts.threads = value()?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--json" => json_dir = Some(PathBuf::from(value()?)),
            "--no-json" => json_dir = None,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    Ok((exps, opts, json_dir))
}

/// Default JSON artifact directory: `assets/figures/` next to the protocol
/// assets (honors `REMY_ASSETS_DIR`).
pub fn default_json_dir() -> PathBuf {
    remy::serialize::assets_dir().join("figures")
}

/// Run one experiment end to end, printing its tables and writing the
/// JSON artifact. Returns a failure description if the run panicked, any
/// sweep cell was poisoned, or the artifact could not be written — the
/// figure (if any) is still rendered first, so a degraded run leaves its
/// evidence behind.
fn run_one(e: &dyn Experiment, opts: &RunOptions, json_dir: Option<&Path>) -> Result<(), String> {
    let report = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        experiments::run_experiment_report(e, opts)
    }))
    .map_err(|payload| format!("panicked: {}", crate::runner::panic_message(payload)))?;
    print!("{}", render_figure(&report.fig));
    if let Some(dir) = json_dir {
        let path = dir.join(format!("{}.json", e.id()));
        write_json(&report.fig, &path)
            .map_err(|err| format!("could not write {}: {err}", path.display()))?;
        eprintln!("[{}] figure data -> {}", e.id(), path.display());
    }
    if !report.poisoned.is_empty() {
        return Err(format!(
            "{} poisoned sweep cell(s): {}",
            report.poisoned.len(),
            report.poisoned.join("; ")
        ));
    }
    Ok(())
}

fn cmd_run(exps: &[&'static dyn Experiment], opts: &RunOptions, json_dir: Option<&Path>) -> i32 {
    let t0 = Instant::now();
    let mut failed: Vec<&str> = Vec::new();
    for e in exps {
        let s = Instant::now();
        match run_one(*e, opts, json_dir) {
            Ok(()) => eprintln!("[{}] done in {:.1}s", e.id(), s.elapsed().as_secs_f64()),
            Err(msg) => {
                eprintln!("error: experiment '{}' failed: {msg}", e.id());
                failed.push(e.id());
            }
        }
    }
    if exps.len() > 1 {
        eprintln!("all experiments in {:.1}s", t0.elapsed().as_secs_f64());
    }
    if failed.is_empty() {
        0
    } else {
        eprintln!(
            "error: {} of {} experiment(s) failed: {}",
            failed.len(),
            exps.len(),
            failed.join(", ")
        );
        1
    }
}

fn write_json(fig: &crate::report::FigureData, path: &Path) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut json = fig.to_json();
    json.push('\n');
    std::fs::write(path, json)
}

fn cmd_train(exps: &[&'static dyn Experiment], force: bool) -> i32 {
    let t0 = Instant::now();
    for e in exps {
        let s = Instant::now();
        for job in e.train_specs() {
            if force {
                // Discard cached assets so run_train_job actually retrains.
                for name in &job.assets {
                    let path = remy::serialize::asset_path(name);
                    if std::fs::remove_file(&path).is_ok() {
                        eprintln!("[learnability] discarded cached {}", path.display());
                    }
                }
            }
            let protos = experiments::run_train_job(&job);
            for p in &protos {
                eprintln!(
                    "[{:>7.1}s] {} ready ({} whiskers, score {:.3})",
                    t0.elapsed().as_secs_f64(),
                    p.name,
                    p.tree.num_leaves(),
                    p.score
                );
            }
        }
        eprintln!(
            "[{}] assets ready (+{:.1}s)",
            e.id(),
            s.elapsed().as_secs_f64()
        );
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_covers_every_registered_experiment() {
        let out = list_table();
        for e in experiments::registry() {
            assert!(out.contains(e.id()), "list must show {}", e.id());
        }
        assert!(out.contains("tao-calibration"));
    }

    #[test]
    fn run_arg_parsing() {
        let (exps, opts, json) = parse_run(&[
            "all",
            "--fidelity",
            "full",
            "--seeds",
            "5",
            "--threads",
            "2",
        ])
        .unwrap();
        assert_eq!(exps.len(), experiments::registry().len());
        assert_eq!(opts.fidelity, Fidelity::Full);
        assert_eq!(opts.seeds, Some(5));
        assert_eq!(opts.threads, 2);
        assert!(json.is_some(), "json emission is on by default");

        let (exps, _, json) = parse_run(&["calibration", "--no-json"]).unwrap();
        assert_eq!(exps[0].id(), "calibration");
        assert!(json.is_none());

        let (_, _, json) = parse_run(&["rtt", "--json", "/tmp/figs"]).unwrap();
        assert_eq!(json.unwrap(), PathBuf::from("/tmp/figs"));

        assert!(parse_run(&[]).is_err(), "id required");
        assert!(parse_run(&["bogus"]).is_err(), "unknown id rejected");
        assert!(parse_run(&["rtt", "--seeds", "0"]).is_err());
        assert!(parse_run(&["rtt", "--wat"]).is_err());
        assert!(parse_run(&["rtt", "--fidelity"]).is_err(), "missing value");
    }

    #[test]
    fn run_fails_loudly_naming_the_broken_experiment() {
        // A sweep that panics must fail that experiment's run with a
        // non-zero exit instead of taking the process down — the hardened
        // path users hit when one experiment of `run all` is broken.
        use crate::experiments::TrainJob;
        use crate::report::FigureData;
        use crate::runner::{PointOutcome, SweepPoint};
        struct Broken;
        impl Experiment for Broken {
            fn id(&self) -> &'static str {
                "broken_fixture"
            }
            fn paper_artifact(&self) -> &'static str {
                "test fixture"
            }
            fn train_specs(&self) -> Vec<TrainJob> {
                Vec::new()
            }
            fn sweep(&self, _fidelity: Fidelity) -> Vec<SweepPoint> {
                panic!("deliberately broken sweep")
            }
            fn summarize(&self, _fidelity: Fidelity, _points: &[PointOutcome]) -> FigureData {
                unreachable!("sweep panics first")
            }
        }
        static BROKEN: Broken = Broken;
        let opts = RunOptions::new(Fidelity::Quick);
        let err = run_one(&BROKEN, &opts, None).expect_err("broken sweep must fail");
        assert!(
            err.contains("deliberately broken sweep"),
            "failure names the cause: {err}"
        );
        assert_eq!(cmd_run(&[&BROKEN], &opts, None), 1, "non-zero exit");
    }

    #[test]
    fn unknown_command_is_an_error() {
        assert_eq!(run(&["frobnicate"]), 2);
        assert_eq!(run(&[]), 2);
    }

    #[test]
    fn train_rejects_stray_options() {
        assert_eq!(run(&["train"]), 2, "id required");
        assert_eq!(run(&["train", "bogus"]), 2, "unknown id");
        assert_eq!(
            run(&["train", "calibration", "--fidelity", "full"]),
            2,
            "train only accepts --force"
        );
        assert_eq!(
            run(&["train", "calibration", "--force", "--wat"]),
            2,
            "trailing junk after --force rejected"
        );
    }
}
