//! The omniscient reference protocol (§1.1 of the paper).
//!
//! A hypothetical centralized protocol that knows the topology, the link
//! speeds, and exactly when senders turn on and off. Whenever the set of
//! active senders changes it computes the proportionally fair throughput
//! allocation and each sender transmits at exactly that rate — so no queue
//! ever builds and every packet experiences pure propagation delay. The
//! long-term average throughput of a sender is the expectation of its
//! allocation over the ON/OFF process.

use netsim::topology::NetworkConfig;
use netsim::workload::WorkloadSpec;

/// Proportionally fair allocation: maximize Σ log xᵢ subject to, for each
/// link ℓ, Σ_{i crosses ℓ} xᵢ ≤ c_ℓ.
///
/// Solved by the standard dual fixed point xᵢ = 1 / Σ_{ℓ ∋ i} λ_ℓ with a
/// damped multiplicative update on the link prices — more than enough for
/// the study's two-link topologies, and validated against closed forms in
/// the tests.
///
/// `routes[i]` lists the links flow `i` crosses. Returns one rate per
/// flow, in the same units as `capacities`.
pub fn proportional_fair(capacities: &[f64], routes: &[Vec<usize>]) -> Vec<f64> {
    let n = routes.len();
    if n == 0 {
        return Vec::new();
    }
    for (i, r) in routes.iter().enumerate() {
        assert!(!r.is_empty(), "flow {i} crosses no links");
        assert!(
            r.iter().all(|&l| l < capacities.len()),
            "flow {i} references an unknown link"
        );
    }
    let m = capacities.len();
    // Initialize prices so that a flow crossing one average link starts
    // near its equal share.
    let mut lambda = vec![1.0; m];
    let mut rates = vec![0.0; n];
    for _ in 0..10_000 {
        for (i, route) in routes.iter().enumerate() {
            let price: f64 = route.iter().map(|&l| lambda[l]).sum();
            rates[i] = 1.0 / price.max(1e-300);
        }
        let mut max_rel_err: f64 = 0.0;
        for l in 0..m {
            let usage: f64 = routes
                .iter()
                .enumerate()
                .filter(|(_, r)| r.contains(&l))
                .map(|(i, _)| rates[i])
                .sum();
            if usage <= 0.0 {
                // No flow uses this link: its price decays to zero.
                lambda[l] *= 0.5;
                continue;
            }
            let ratio = usage / capacities[l];
            max_rel_err = max_rel_err.max((ratio - 1.0).abs());
            // Damped multiplicative price update; exponent < 1 for
            // stability on shared-bottleneck systems.
            lambda[l] *= ratio.powf(0.5);
        }
        if max_rel_err < 1e-10 {
            break;
        }
    }
    // Binding constraints only: a flow bottlenecked elsewhere may leave a
    // link under-used; that is the correct PF solution.
    rates
}

/// Stationary probability a sender with the given workload is ON.
pub fn on_probability(w: &WorkloadSpec) -> f64 {
    match w {
        WorkloadSpec::AlwaysOn => 1.0,
        WorkloadSpec::OnOff {
            mean_on_s,
            mean_off_s,
        } => mean_on_s / (mean_on_s + mean_off_s),
        // Poisson arrivals at λ with exp(d) service. Blocked: a two-state
        // renewal process with mean ON d and mean OFF 1/λ. Unblocked
        // (M/G/∞): the slot is ON while the station is busy, and the
        // stationary idle probability of an M/G/∞ station with offered
        // load a = λ·d is P[N = 0] = e^(−a).
        WorkloadSpec::Churn {
            arrival_rate_hz,
            mean_duration_s,
            unblocked,
        } => {
            let load = arrival_rate_hz * mean_duration_s;
            if *unblocked {
                1.0 - (-load).exp()
            } else {
                load / (1.0 + load)
            }
        }
        // For deterministic schedules the notion of a stationary ON
        // probability is ill-defined; callers handle pulses explicitly.
        WorkloadSpec::Schedule(_) => 1.0,
    }
}

/// Omniscient outcome for one flow.
#[derive(Clone, Copy, Debug)]
pub struct OmniscientFlow {
    /// Expected throughput while ON (bits/s): E[allocation | flow on].
    pub throughput_bps: f64,
    /// One-way delay: pure propagation (no queueing by construction).
    pub delay_s: f64,
}

/// Compute the omniscient allocation for every flow of a network, taking
/// the expectation over the independent ON/OFF processes by exact subset
/// enumeration (≤ 16 flows) or by the law of large numbers via binomial
/// aggregation when all flows are exchangeable on one link.
pub fn omniscient(net: &NetworkConfig) -> Vec<OmniscientFlow> {
    let n = net.flows.len();
    let caps: Vec<f64> = net.links.iter().map(|l| l.rate_bps).collect();
    let p_on: Vec<f64> = net
        .flows
        .iter()
        .map(|f| on_probability(&f.workload))
        .collect();

    let single_link = net.links.len() == 1;
    let mut out = Vec::with_capacity(n);

    if single_link && p_on.iter().all(|&p| (p - p_on[0]).abs() < 1e-12) {
        // Dumbbell with exchangeable senders: conditional on flow i being
        // ON, the number of other active senders is Binomial(n-1, p), and
        // the PF allocation is C / (k+1).
        let c = caps[0];
        let p = p_on[0];
        for i in 0..n {
            let mut expect = 0.0;
            for k in 0..n {
                // P[k other senders on]
                let prob = binomial_pmf(n - 1, k, p);
                expect += prob * c / (k + 1) as f64;
            }
            out.push(OmniscientFlow {
                throughput_bps: expect,
                delay_s: net.min_one_way(i).as_secs_f64(),
            });
        }
        return out;
    }

    assert!(
        n <= 16,
        "exact subset enumeration limited to 16 flows (got {n})"
    );
    for i in 0..n {
        // E[x_i | i on] = Σ over subsets S of the other flows.
        let others: Vec<usize> = (0..n).filter(|&j| j != i).collect();
        let mut expect = 0.0;
        for mask in 0..(1u32 << others.len()) {
            let mut active = vec![i];
            let mut prob = 1.0;
            for (bit, &j) in others.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    active.push(j);
                    prob *= p_on[j];
                } else {
                    prob *= 1.0 - p_on[j];
                }
            }
            let routes: Vec<Vec<usize>> =
                active.iter().map(|&j| net.flows[j].route.clone()).collect();
            let rates = proportional_fair(&caps, &routes);
            expect += prob * rates[0]; // flow i is always first in `active`
        }
        out.push(OmniscientFlow {
            throughput_bps: expect,
            delay_s: net.min_one_way(i).as_secs_f64(),
        });
    }
    out
}

fn binomial_pmf(n: usize, k: usize, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    // Degenerate probabilities first (log-space below would produce NaN).
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    // log-space for large n
    let mut log_c = 0.0;
    for j in 0..k {
        log_c += ((n - j) as f64).ln() - ((j + 1) as f64).ln();
    }
    (log_c + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln()).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::queue::QueueSpec;
    use netsim::topology::{dumbbell, parking_lot};

    #[test]
    fn pf_single_link_equal_split() {
        let rates = proportional_fair(&[12e6], &[vec![0], vec![0], vec![0]]);
        for r in &rates {
            assert!((r - 4e6).abs() / 4e6 < 1e-6, "equal split, got {r}");
        }
    }

    #[test]
    fn pf_parking_lot_closed_form() {
        // Flows: 0 on both links, 1 on link A, 2 on link B; C_A = C_B = C.
        // Symmetric PF: maximize log x0 + log(C-x0)·2 -> 1/x0 = 2/(C-x0)
        // -> x0 = C/3, x1 = x2 = 2C/3.
        let c = 30e6;
        let rates = proportional_fair(&[c, c], &[vec![0, 1], vec![0], vec![1]]);
        assert!((rates[0] - c / 3.0).abs() / c < 1e-6, "x0={}", rates[0]);
        assert!((rates[1] - 2.0 * c / 3.0).abs() / c < 1e-6);
        assert!((rates[2] - 2.0 * c / 3.0).abs() / c < 1e-6);
    }

    #[test]
    fn pf_asymmetric_parking_lot_satisfies_kkt() {
        // 1/x0 = 1/x1 + 1/x2 with x1 = C1-x0, x2 = C2-x0 at the optimum.
        let (c1, c2) = (10e6, 100e6);
        let rates = proportional_fair(&[c1, c2], &[vec![0, 1], vec![0], vec![1]]);
        let (x0, x1, x2) = (rates[0], rates[1], rates[2]);
        assert!((x0 + x1 - c1).abs() / c1 < 1e-6, "link 1 saturated");
        assert!((x0 + x2 - c2).abs() / c2 < 1e-6, "link 2 saturated");
        let lhs = 1.0 / x0;
        let rhs = 1.0 / x1 + 1.0 / x2;
        assert!((lhs - rhs).abs() / lhs < 1e-4, "KKT: {lhs} vs {rhs}");
    }

    #[test]
    fn pf_respects_capacities() {
        let caps = [5e6, 50e6];
        let routes = vec![vec![0, 1], vec![0], vec![1], vec![1]];
        let rates = proportional_fair(&caps, &routes);
        let u0: f64 = rates[0] + rates[1];
        let u1: f64 = rates[0] + rates[2] + rates[3];
        assert!(u0 <= caps[0] * (1.0 + 1e-6));
        assert!(u1 <= caps[1] * (1.0 + 1e-6));
        assert!(rates.iter().all(|&r| r > 0.0));
    }

    #[test]
    fn on_probability_half_for_symmetric_onoff() {
        assert_eq!(on_probability(&WorkloadSpec::on_off_1s()), 0.5);
        assert_eq!(on_probability(&WorkloadSpec::AlwaysOn), 1.0);
        let w = WorkloadSpec::OnOff {
            mean_on_s: 5.0,
            mean_off_s: 0.010,
        };
        assert!((on_probability(&w) - 0.998) < 0.01);
    }

    #[test]
    fn omniscient_dumbbell_always_on() {
        let net = dumbbell(
            2,
            32e6,
            0.150,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let o = omniscient(&net);
        assert_eq!(o.len(), 2);
        for f in &o {
            assert!((f.throughput_bps - 16e6).abs() / 16e6 < 1e-9);
            assert!((f.delay_s - 0.075).abs() < 1e-12);
        }
    }

    #[test]
    fn omniscient_dumbbell_onoff_expectation() {
        // 2 senders, p=1/2 each. Given i on: other on w.p. 1/2.
        // E[x] = 1/2·C + 1/2·C/2 = 3C/4.
        let net = dumbbell(
            2,
            32e6,
            0.150,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        let o = omniscient(&net);
        assert!(
            (o[0].throughput_bps - 24e6).abs() / 24e6 < 1e-9,
            "{}",
            o[0].throughput_bps
        );
    }

    #[test]
    fn omniscient_many_senders_binomial() {
        let n = 100;
        let net = dumbbell(
            n,
            15e6,
            0.150,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        let o = omniscient(&net);
        // E[C/(K+1)], K~Bin(99, 1/2): dominated by K≈49.5 -> about C/50.5,
        // slightly above due to convexity.
        let expect_low = 15e6 / 51.0;
        let expect_high = 15e6 / 49.0;
        assert!(
            o[0].throughput_bps > expect_low * 0.95 && o[0].throughput_bps < expect_high * 1.2,
            "got {}",
            o[0].throughput_bps
        );
    }

    #[test]
    fn omniscient_parking_lot() {
        let net = parking_lot(
            10e6,
            10e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let o = omniscient(&net);
        assert!((o[0].throughput_bps - 10e6 / 3.0).abs() / 10e6 < 1e-6);
        assert!((o[1].throughput_bps - 20e6 / 3.0).abs() / 10e6 < 1e-6);
        // Flow 0 crosses both hops: 75 ms one-way.
        assert!((o[0].delay_s - 0.075).abs() < 1e-12);
        assert!((o[1].delay_s - 0.0375).abs() < 1e-12);
    }

    #[test]
    fn omniscient_parking_lot_onoff_bounds() {
        let net = parking_lot(
            10e6,
            10e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        let o = omniscient(&net);
        // Flow 0's allocation ranges from C/3 (all on) to C (alone):
        // expectation strictly inside.
        assert!(o[0].throughput_bps > 10e6 / 3.0);
        assert!(o[0].throughput_bps < 10e6);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 20;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, k, p)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
