//! Test-side execution: run protocol mixes on concrete networks.
//!
//! The experiments (§4) evaluate each scheme on *testing scenarios* —
//! concrete networks swept over a parameter — and summarize per-flow
//! throughput and queueing delay across several seeded runs (the ellipses
//! of Figs 1, 7 and 9 are 1-σ ranges over such runs).

use netsim::prelude::*;
use netsim::queue::QueueSpec;
use netsim::transport::CongestionControl;
use protocols::{Cubic, NewReno, SignalMask, TaoCc, WhiskerTree};

/// A congestion-control scheme under test.
#[derive(Clone)]
pub enum Scheme {
    /// A Tao protocol (optionally with a §3.4 signal-knockout mask).
    Tao {
        tree: WhiskerTree,
        mask: SignalMask,
        label: String,
    },
    /// TCP Cubic over whatever queue the network defines.
    Cubic,
    /// TCP NewReno (the paper's AIMD incumbent).
    NewReno,
}

impl Scheme {
    pub fn tao(tree: WhiskerTree, label: impl Into<String>) -> Self {
        Scheme::Tao {
            tree,
            mask: SignalMask::all(),
            label: label.into(),
        }
    }

    pub fn label(&self) -> String {
        match self {
            Scheme::Tao { label, .. } => label.clone(),
            Scheme::Cubic => "cubic".into(),
            Scheme::NewReno => "newreno".into(),
        }
    }

    pub fn build(&self) -> Box<dyn CongestionControl> {
        match self {
            Scheme::Tao { tree, mask, label } => {
                Box::new(TaoCc::with_mask(tree.clone(), *mask, label.clone()))
            }
            Scheme::Cubic => Box::new(Cubic::new()),
            Scheme::NewReno => Box::new(NewReno::new()),
        }
    }
}

/// Replace every finite drop-tail queue in a network with sfqCoDel of the
/// same byte capacity (the "Cubic-over-sfqCoDel" configuration: sfqCoDel
/// runs at the bottleneck gateways).
pub fn with_sfq_codel(net: &NetworkConfig) -> NetworkConfig {
    let mut out = net.clone();
    for link in &mut out.links {
        let cap = match link.queue {
            QueueSpec::DropTail {
                capacity_bytes: Some(c),
            } => c,
            QueueSpec::DropTail {
                capacity_bytes: None,
            } => {
                // sfqCoDel needs a finite shared buffer; give it 5 BDP.
                (link.rate_bps / 8.0 * link.delay_s * 5.0)
                    .ceil()
                    .max(30_000.0) as u64
            }
            QueueSpec::SfqCodel { capacity_bytes, .. } => capacity_bytes,
            QueueSpec::Red { capacity_bytes, .. } => capacity_bytes,
        };
        link.queue = QueueSpec::SfqCodel {
            capacity_bytes: cap,
            target_ms: 5.0,
            interval_ms: 100.0,
            bins: 1024,
        };
    }
    out
}

/// Run one mix of schemes (one per flow) on a network.
pub fn run_mix(net: &NetworkConfig, schemes: &[Scheme], seed: u64, duration_s: f64) -> RunOutcome {
    assert_eq!(schemes.len(), net.flows.len(), "one scheme per flow");
    let protocols: Vec<Box<dyn CongestionControl>> = schemes.iter().map(|s| s.build()).collect();
    let mut sim = Simulation::new(net, protocols, seed);
    sim.set_event_budget(200_000_000);
    sim.run(SimDuration::from_secs_f64(duration_s))
}

/// Run the same scheme on every flow.
pub fn run_homogeneous(
    net: &NetworkConfig,
    scheme: &Scheme,
    seed: u64,
    duration_s: f64,
) -> RunOutcome {
    let schemes = vec![scheme.clone(); net.flows.len()];
    run_mix(net, &schemes, seed, duration_s)
}

/// Run a mix over several seeds.
pub fn run_seeds(
    net: &NetworkConfig,
    schemes: &[Scheme],
    seeds: std::ops::Range<u64>,
    duration_s: f64,
) -> Vec<RunOutcome> {
    seeds
        .map(|seed| run_mix(net, schemes, seed, duration_s))
        .collect()
}

/// Mean / standard deviation / median of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStat {
    pub mean: f64,
    pub std: f64,
    pub median: f64,
    pub n: usize,
}

pub fn summarize(xs: &[f64]) -> SummaryStat {
    if xs.is_empty() {
        return SummaryStat {
            mean: 0.0,
            std: 0.0,
            median: 0.0,
            n: 0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    SummaryStat {
        mean,
        std: var.sqrt(),
        median,
        n: xs.len(),
    }
}

/// Per-flow (throughput Mbps, queueing delay ms) pairs from a set of runs,
/// restricted to flows selected by `keep`.
pub fn flow_points(outcomes: &[RunOutcome], keep: impl Fn(usize) -> bool) -> (Vec<f64>, Vec<f64>) {
    let mut tpt = Vec::new();
    let mut qd = Vec::new();
    for run in outcomes {
        for f in &run.flows {
            if keep(f.flow) && f.on_time_s > 0.0 {
                tpt.push(f.throughput_bps / 1e6);
                qd.push(f.avg_queueing_delay_s * 1e3);
            }
        }
    }
    (tpt, qd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::dumbbell;
    use netsim::workload::WorkloadSpec;
    use protocols::Action;

    fn net() -> NetworkConfig {
        dumbbell(
            2,
            10e6,
            0.100,
            QueueSpec::drop_tail_bdp(10e6, 0.100, 5.0),
            WorkloadSpec::AlwaysOn,
        )
    }

    #[test]
    fn cubic_fills_a_dumbbell() {
        let out = run_homogeneous(&net(), &Scheme::Cubic, 3, 30.0);
        let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        assert!(total > 8.5e6, "Cubic should saturate 10 Mbps, got {total}");
    }

    #[test]
    fn newreno_fills_a_dumbbell() {
        let out = run_homogeneous(&net(), &Scheme::NewReno, 3, 30.0);
        let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        assert!(total > 8.0e6, "NewReno total {total}");
    }

    #[test]
    fn sfq_codel_cuts_cubic_queueing_delay() {
        let fifo = net();
        let sfq = with_sfq_codel(&fifo);
        let out_fifo = run_homogeneous(&fifo, &Scheme::Cubic, 7, 30.0);
        let out_sfq = run_homogeneous(&sfq, &Scheme::Cubic, 7, 30.0);
        let qd_fifo: f64 = out_fifo
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / 2.0;
        let qd_sfq: f64 = out_sfq
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / 2.0;
        assert!(
            qd_sfq < qd_fifo * 0.5,
            "CoDel should slash standing queues: fifo={qd_fifo:.4}s sfq={qd_sfq:.4}s"
        );
    }

    #[test]
    fn mixed_schemes_per_flow() {
        let schemes = [
            Scheme::tao(WhiskerTree::uniform(Action::new(1.0, 1.0, 1.0)), "tao-demo"),
            Scheme::NewReno,
        ];
        let out = run_mix(&net(), &schemes, 5, 20.0);
        assert!(out.flows[0].bytes_delivered > 0);
        assert!(out.flows[1].bytes_delivered > 0);
    }

    #[test]
    fn summarize_stats() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert!(s.std > 30.0);
        let even = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median, 2.5);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn flow_points_filters() {
        let out = run_seeds(&net(), &[Scheme::Cubic, Scheme::Cubic], 0..3, 10.0);
        let (tpt_all, _) = flow_points(&out, |_| true);
        let (tpt_f0, _) = flow_points(&out, |f| f == 0);
        assert_eq!(tpt_all.len(), 6);
        assert_eq!(tpt_f0.len(), 3);
    }

    #[test]
    fn sfq_conversion_gives_infinite_buffers_a_cap() {
        let inf = dumbbell(1, 8e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let sfq = with_sfq_codel(&inf);
        match sfq.links[0].queue {
            QueueSpec::SfqCodel { capacity_bytes, .. } => assert!(capacity_bytes > 0),
            _ => panic!("expected sfqCoDel"),
        }
    }
}
