//! Test-side execution: run protocol mixes on concrete networks, and the
//! generic sweep engine every experiment executes on.
//!
//! The experiments (§4) evaluate each scheme on *testing scenarios* —
//! concrete networks swept over a parameter — and summarize per-flow
//! throughput and queueing delay across several seeded runs (the ellipses
//! of Figs 1, 7 and 9 are 1-σ ranges over such runs).
//!
//! # The sweep engine
//!
//! An experiment's [`sweep`](crate::experiments::Experiment::sweep) is pure
//! *data*: a list of [`SweepPoint`]s, each a `(network, scheme mix, seed
//! range)` cell description. [`execute_sweep`] expands the points into
//! `(point, seed)` cells and runs them on a work-stealing thread pool —
//! the same claim-by-atomic-index pattern as remy's `EvalPool` (see
//! [`parallel_map_indexed`]) — so test-side sweeps use every core the way
//! training already does. Per-cell results land in index-ordered slots and
//! are merged in input order, so the outcome is **bit-identical for any
//! thread count**.

use netsim::prelude::*;
use netsim::trace::Trace;
use netsim::transport::CongestionControl;
use protocols::compiled::CompiledTree;
use protocols::{Cubic, NewReno, Pcc, SignalMask, TaoCc, Vegas, WhiskerTree};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A congestion-control scheme under test.
#[derive(Clone)]
pub enum Scheme {
    /// A Tao protocol (optionally with a §3.4 signal-knockout mask).
    Tao {
        tree: WhiskerTree,
        mask: SignalMask,
        label: String,
    },
    /// TCP Cubic over whatever queue the network defines.
    Cubic,
    /// TCP NewReno (the paper's AIMD incumbent).
    NewReno,
    /// TCP Vegas: delay-based, so non-congestive loss costs it less
    /// window than the loss-based incumbents (the bursty-loss foil).
    Vegas,
    /// PCC-style online learner: rate micro-experiments scored by a
    /// utility function, no offline training (the learned-online foil
    /// to the offline-designed Tao protocols).
    Pcc,
}

impl Scheme {
    pub fn tao(tree: WhiskerTree, label: impl Into<String>) -> Self {
        Scheme::Tao {
            tree,
            mask: SignalMask::all(),
            label: label.into(),
        }
    }

    pub fn label(&self) -> String {
        match self {
            Scheme::Tao { label, .. } => label.clone(),
            Scheme::Cubic => "cubic".into(),
            Scheme::NewReno => "newreno".into(),
            Scheme::Vegas => "vegas".into(),
            Scheme::Pcc => "pcc".into(),
        }
    }

    pub fn build(&self) -> Box<dyn CongestionControl> {
        match self {
            Scheme::Tao { tree, mask, label } => {
                Box::new(TaoCc::with_mask(tree.clone(), *mask, label.clone()))
            }
            Scheme::Cubic => Box::new(Cubic::new()),
            Scheme::NewReno => Box::new(NewReno::new()),
            Scheme::Vegas => Box::new(Vegas::new()),
            Scheme::Pcc => Box::new(Pcc::new()),
        }
    }
}

/// Build one congestion-control instance per flow, compiling each
/// distinct Tao tree exactly once and sharing the compiled arena across
/// all its senders. [`Scheme::build`] compiles per call, which is fine
/// for ten flows and pathological for a 10^4-sender `many_flows` cell —
/// the homogeneous scheme vector would clone and flatten the identical
/// tree ten thousand times.
pub fn build_protocols(schemes: &[Scheme]) -> Vec<Box<dyn CongestionControl>> {
    let mut compiled: Vec<(&WhiskerTree, SignalMask, Arc<CompiledTree>)> = Vec::new();
    schemes
        .iter()
        .map(|s| -> Box<dyn CongestionControl> {
            match s {
                Scheme::Tao { tree, mask, label } => {
                    let shared = compiled
                        .iter()
                        .find(|(t, m, _)| *m == *mask && *t == tree)
                        .map(|(_, _, c)| c.clone())
                        .unwrap_or_else(|| {
                            let c = CompiledTree::compile_shared(tree);
                            compiled.push((tree, *mask, c.clone()));
                            c
                        });
                    Box::new(TaoCc::from_compiled(shared, *mask, label.clone()))
                }
                other => other.build(),
            }
        })
        .collect()
}

/// A gateway queue discipline a sweep cell can select per network (the
/// scenario-diversity AQM axis). Every variant maps onto a concrete
/// [`QueueSpec`] of the same byte capacity via [`with_aqm`], so the same
/// topology can be evaluated under each discipline with nothing else
/// changed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AqmKind {
    /// FIFO drop-tail (the discipline every Tao is trained against).
    DropTail,
    /// Random Early Detection, gentle variant, thresholds scaled to the
    /// buffer's packet capacity.
    Red,
    /// A single CoDel-managed FIFO (5 ms target / 100 ms interval).
    Codel,
    /// Stochastic fair queueing with per-bin CoDel (the paper's sfqCoDel).
    SfqCodel,
}

impl AqmKind {
    /// Every discipline, in table order.
    pub const ALL: [AqmKind; 4] = [
        AqmKind::DropTail,
        AqmKind::Red,
        AqmKind::Codel,
        AqmKind::SfqCodel,
    ];

    pub fn name(self) -> &'static str {
        match self {
            AqmKind::DropTail => "droptail",
            AqmKind::Red => "red",
            AqmKind::Codel => "codel",
            AqmKind::SfqCodel => "sfqcodel",
        }
    }
}

/// Replace every queue in a network with the chosen AQM discipline at the
/// same byte capacity. Infinite buffers get a finite 5-BDP stand-in (every
/// AQM here needs a real buffer to manage; drop-tail keeps `None`).
pub fn with_aqm(net: &NetworkConfig, kind: AqmKind) -> NetworkConfig {
    let mut out = net.clone();
    for link in &mut out.links {
        let cap = link.queue_capacity_or_bdp(5.0);
        link.queue = match kind {
            AqmKind::DropTail => QueueSpec::DropTail {
                capacity_bytes: link.queue.capacity_bytes(),
            },
            AqmKind::Red => {
                let params = netsim::red::RedParams::for_capacity((cap / 1500) as usize);
                QueueSpec::Red {
                    capacity_bytes: cap,
                    min_th: params.min_th,
                    max_th: params.max_th,
                    max_p: params.max_p,
                }
            }
            AqmKind::Codel => QueueSpec::Codel {
                capacity_bytes: cap,
                target_ms: 5.0,
                interval_ms: 100.0,
            },
            AqmKind::SfqCodel => QueueSpec::SfqCodel {
                capacity_bytes: cap,
                target_ms: 5.0,
                interval_ms: 100.0,
                bins: 1024,
            },
        };
    }
    out
}

/// Replace every finite drop-tail queue in a network with sfqCoDel of the
/// same byte capacity (the "Cubic-over-sfqCoDel" configuration: sfqCoDel
/// runs at the bottleneck gateways). Infinite buffers get a finite 5-BDP
/// stand-in — sfqCoDel needs a shared finite pool.
pub fn with_sfq_codel(net: &NetworkConfig) -> NetworkConfig {
    with_aqm(net, AqmKind::SfqCodel)
}

/// Event cap for every test-side simulation (protects sweeps against
/// degenerate protocol settings; training has its own budget knob).
/// Public because certificate replay (`crate::search::replay`) must apply
/// the exact budget the sweep engine used to reproduce scores bit for bit.
pub const TEST_EVENT_BUDGET: u64 = 200_000_000;

/// Run one mix of schemes (one per flow) on a network.
pub fn run_mix(net: &NetworkConfig, schemes: &[Scheme], seed: u64, duration_s: f64) -> RunOutcome {
    assert_eq!(schemes.len(), net.flows.len(), "one scheme per flow");
    let protocols = build_protocols(schemes);
    let mut sim = Simulation::new(net, protocols, seed);
    sim.set_event_budget(TEST_EVENT_BUDGET);
    sim.run(SimDuration::from_secs_f64(duration_s))
}

/// Run the same scheme on every flow.
pub fn run_homogeneous(
    net: &NetworkConfig,
    scheme: &Scheme,
    seed: u64,
    duration_s: f64,
) -> RunOutcome {
    let schemes = vec![scheme.clone(); net.flows.len()];
    run_mix(net, &schemes, seed, duration_s)
}

/// Run a mix over several seeds.
pub fn run_seeds(
    net: &NetworkConfig,
    schemes: &[Scheme],
    seeds: std::ops::Range<u64>,
    duration_s: f64,
) -> Vec<RunOutcome> {
    seeds
        .map(|seed| run_mix(net, schemes, seed, duration_s))
        .collect()
}

// ---------------------------------------------------------------------------
// The declarative sweep engine.
// ---------------------------------------------------------------------------

/// Request queue-occupancy tracing for a cell (Fig 8-style time-domain
/// points).
#[derive(Clone, Debug)]
pub struct TraceSpec {
    /// Link indices to sample.
    pub links: Vec<usize>,
    /// Sampling period in milliseconds.
    pub interval_ms: f64,
}

/// One point of an experiment's sweep: a concrete network, the scheme mix
/// on its flows, and the seed range to run. Everything an experiment
/// evaluates is a list of these — data the engine can enumerate,
/// parallelize, and merge deterministically.
#[derive(Clone)]
pub struct SweepPoint {
    /// Experiment-specific routing key for `summarize` (e.g. the series
    /// name, or `"panel|series"`).
    pub key: String,
    /// Position along the sweep axis (0.0 for table-style points).
    pub x: f64,
    /// Seeds this cell is repeated over.
    pub seeds: std::ops::Range<u64>,
    pub net: NetworkConfig,
    /// One scheme per flow of `net`.
    pub schemes: Vec<Scheme>,
    /// Simulated seconds per run.
    pub duration_s: f64,
    /// Optional queue tracing (exempt from `--seeds` overrides: traces
    /// are illustrative single runs, not statistics).
    pub trace: Option<TraceSpec>,
}

impl SweepPoint {
    /// Point running `scheme` on every flow of `net`.
    pub fn homogeneous(
        key: impl Into<String>,
        x: f64,
        net: NetworkConfig,
        scheme: Scheme,
        seeds: std::ops::Range<u64>,
        duration_s: f64,
    ) -> Self {
        let schemes = vec![scheme; net.flows.len()];
        SweepPoint {
            key: key.into(),
            x,
            seeds,
            net,
            schemes,
            duration_s,
            trace: None,
        }
    }

    /// Point running an explicit per-flow mix.
    pub fn mix(
        key: impl Into<String>,
        x: f64,
        net: NetworkConfig,
        schemes: Vec<Scheme>,
        seeds: std::ops::Range<u64>,
        duration_s: f64,
    ) -> Self {
        SweepPoint {
            key: key.into(),
            x,
            seeds,
            net,
            schemes,
            duration_s,
            trace: None,
        }
    }

    /// Enable queue tracing on the given links.
    pub fn with_trace(mut self, links: Vec<usize>, interval_ms: f64) -> Self {
        self.trace = Some(TraceSpec { links, interval_ms });
        self
    }
}

/// All runs of one [`SweepPoint`], in seed order.
pub struct PointOutcome {
    pub point: SweepPoint,
    /// One outcome per *successful* seed, in `point.seeds` order (seeds
    /// whose cell panicked are listed in `poisoned` instead).
    pub runs: Vec<RunOutcome>,
    /// Queue traces per seed (populated only when `point.trace` is set),
    /// indexed like `runs`.
    pub traces: Vec<Option<Trace>>,
    /// `(seed, panic message)` of cells that panicked: the sweep engine
    /// degrades one crashing cell into a flagged hole instead of taking
    /// the whole sweep down (or deadlocking a poisoned slot mutex).
    pub poisoned: Vec<(u64, String)>,
}

impl PointOutcome {
    pub fn key(&self) -> &str {
        &self.point.key
    }

    pub fn x(&self) -> f64 {
        self.point.x
    }

    /// Per-flow scheme labels (flow `i` ran `schemes[i]`).
    pub fn flow_labels(&self) -> Vec<String> {
        self.point.schemes.iter().map(|s| s.label()).collect()
    }

    /// Distinct scheme labels in flow order (the "sides" of a mixed-
    /// population table row).
    pub fn unique_labels(&self) -> Vec<String> {
        let mut uniq: Vec<String> = Vec::new();
        for l in self.flow_labels() {
            if !uniq.contains(&l) {
                uniq.push(l);
            }
        }
        uniq
    }

    /// Per-flow (throughput Mbps, queueing delay ms) of flows whose scheme
    /// label equals `label`, across all seeds.
    pub fn flow_points_labeled(&self, label: &str) -> (Vec<f64>, Vec<f64>) {
        let labels = self.flow_labels();
        flow_points(&self.runs, |f| {
            labels.get(f).map(String::as_str) == Some(label)
        })
    }
}

fn run_cell(point: &SweepPoint, seed: u64) -> (RunOutcome, Option<Trace>) {
    assert_eq!(
        point.schemes.len(),
        point.net.flows.len(),
        "one scheme per flow (point '{}')",
        point.key
    );
    let protocols = build_protocols(&point.schemes);
    let mut sim = Simulation::new(&point.net, protocols, seed);
    sim.set_event_budget(TEST_EVENT_BUDGET);
    if let Some(tr) = &point.trace {
        sim.enable_trace(
            tr.links.iter().map(|&l| LinkId(l as u32)).collect(),
            SimDuration::from_millis_f64(tr.interval_ms),
        );
    }
    let run = sim.run(SimDuration::from_secs_f64(point.duration_s));
    let trace = sim.take_trace();
    (run, trace)
}

/// Work-stealing indexed map — the claim-by-atomic-index pattern of remy's
/// `EvalPool`, generalized: `workers` scoped threads (the calling thread
/// participates, so `threads == 1` is pure serial execution) claim indices
/// `0..n` from an atomic cursor, and results are returned **in index
/// order** regardless of which worker computed what. Skewed per-index
/// costs never idle a core, and the output is identical for any thread
/// count.
pub fn parallel_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    parallel_try_map_indexed(n, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            // Re-raise with the original message: callers of the
            // infallible map keep panic-on-failure semantics, but the
            // panic now happens on the calling thread after the pool
            // drained instead of poisoning a slot mutex mid-merge.
            Err(msg) => panic!("parallel_map_indexed worker panicked: {msg}"),
        })
        .collect()
}

/// Panic-tolerant variant of [`parallel_map_indexed`]: each `f(i)` runs
/// under `catch_unwind`, so one panicking index yields `Err(message)` in
/// its slot while every other index completes normally. The closure's
/// result is computed *before* the slot lock is taken — a panic can never
/// poison the mutex, so the merge always finishes.
pub fn parallel_try_map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<Result<T, String>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|t| t.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let workers = threads.min(n.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<T, String>>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let work = || loop {
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            return;
        }
        let result = catch_unwind(AssertUnwindSafe(|| f(i))).map_err(panic_message);
        *slots[i].lock().expect("result slot poisoned") = Some(result);
    };
    if workers <= 1 {
        work();
    } else {
        std::thread::scope(|s| {
            for _ in 1..workers {
                s.spawn(work);
            }
            work();
        });
    }
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every index claimed")
        })
        .collect()
}

/// Extract a human-readable message from a panic payload (`&str` and
/// `String` payloads cover every `panic!`/`assert!` in the workspace).
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute a sweep: expand every point into `(point, seed)` cells, run
/// them on the work-stealing pool (`threads == 0` uses all cores), and
/// merge outcomes back per point in seed order. Deterministic: the merge
/// is index-ordered, so results are bit-identical for any thread count.
pub fn execute_sweep(points: Vec<SweepPoint>, threads: usize) -> Vec<PointOutcome> {
    let cells: Vec<(usize, u64)> = points
        .iter()
        .enumerate()
        .flat_map(|(pi, p)| p.seeds.clone().map(move |s| (pi, s)))
        .collect();
    let results = parallel_try_map_indexed(cells.len(), threads, |i| {
        let (pi, seed) = cells[i];
        run_cell(&points[pi], seed)
    });
    let mut out: Vec<PointOutcome> = points
        .into_iter()
        .map(|point| PointOutcome {
            point,
            runs: Vec::new(),
            traces: Vec::new(),
            poisoned: Vec::new(),
        })
        .collect();
    for ((pi, seed), result) in cells.into_iter().zip(results) {
        match result {
            Ok((run, trace)) => {
                out[pi].runs.push(run);
                out[pi].traces.push(trace);
            }
            Err(msg) => out[pi].poisoned.push((seed, msg)),
        }
    }
    out
}

/// Mean / standard deviation / median of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryStat {
    pub mean: f64,
    pub std: f64,
    pub median: f64,
    pub n: usize,
}

pub fn summarize(xs: &[f64]) -> SummaryStat {
    if xs.is_empty() {
        return SummaryStat {
            mean: 0.0,
            std: 0.0,
            median: 0.0,
            n: 0,
        };
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
    let median = if sorted.len() % 2 == 1 {
        sorted[sorted.len() / 2]
    } else {
        (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
    };
    SummaryStat {
        mean,
        std: var.sqrt(),
        median,
        n: xs.len(),
    }
}

/// Per-flow (throughput Mbps, queueing delay ms) pairs from a set of runs,
/// restricted to flows selected by `keep`.
pub fn flow_points(outcomes: &[RunOutcome], keep: impl Fn(usize) -> bool) -> (Vec<f64>, Vec<f64>) {
    let mut tpt = Vec::new();
    let mut qd = Vec::new();
    for run in outcomes {
        for f in &run.flows {
            if keep(f.flow) && f.on_time_s > 0.0 {
                tpt.push(f.throughput_bps / 1e6);
                qd.push(f.avg_queueing_delay_s * 1e3);
            }
        }
    }
    (tpt, qd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::topology::dumbbell;
    use netsim::workload::WorkloadSpec;
    use protocols::Action;

    fn net() -> NetworkConfig {
        dumbbell(
            2,
            10e6,
            0.100,
            QueueSpec::drop_tail_bdp(10e6, 0.100, 5.0),
            WorkloadSpec::AlwaysOn,
        )
    }

    #[test]
    fn cubic_fills_a_dumbbell() {
        let out = run_homogeneous(&net(), &Scheme::Cubic, 3, 30.0);
        let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        assert!(total > 8.5e6, "Cubic should saturate 10 Mbps, got {total}");
    }

    #[test]
    fn newreno_fills_a_dumbbell() {
        let out = run_homogeneous(&net(), &Scheme::NewReno, 3, 30.0);
        let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        assert!(total > 8.0e6, "NewReno total {total}");
    }

    #[test]
    fn sfq_codel_cuts_cubic_queueing_delay() {
        let fifo = net();
        let sfq = with_sfq_codel(&fifo);
        let out_fifo = run_homogeneous(&fifo, &Scheme::Cubic, 7, 30.0);
        let out_sfq = run_homogeneous(&sfq, &Scheme::Cubic, 7, 30.0);
        let qd_fifo: f64 = out_fifo
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / 2.0;
        let qd_sfq: f64 = out_sfq
            .flows
            .iter()
            .map(|f| f.avg_queueing_delay_s)
            .sum::<f64>()
            / 2.0;
        assert!(
            qd_sfq < qd_fifo * 0.5,
            "CoDel should slash standing queues: fifo={qd_fifo:.4}s sfq={qd_sfq:.4}s"
        );
    }

    #[test]
    fn mixed_schemes_per_flow() {
        let schemes = [
            Scheme::tao(WhiskerTree::uniform(Action::new(1.0, 1.0, 1.0)), "tao-demo"),
            Scheme::NewReno,
        ];
        let out = run_mix(&net(), &schemes, 5, 20.0);
        assert!(out.flows[0].bytes_delivered > 0);
        assert!(out.flows[1].bytes_delivered > 0);
    }

    #[test]
    fn summarize_stats() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 100.0]);
        assert_eq!(s.n, 5);
        assert!((s.mean - 22.0).abs() < 1e-12);
        assert_eq!(s.median, 3.0);
        assert!(s.std > 30.0);
        let even = summarize(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(even.median, 2.5);
        assert_eq!(summarize(&[]).n, 0);
    }

    #[test]
    fn flow_points_filters() {
        let out = run_seeds(&net(), &[Scheme::Cubic, Scheme::Cubic], 0..3, 10.0);
        let (tpt_all, _) = flow_points(&out, |_| true);
        let (tpt_f0, _) = flow_points(&out, |f| f == 0);
        assert_eq!(tpt_all.len(), 6);
        assert_eq!(tpt_f0.len(), 3);
    }

    #[test]
    fn sfq_conversion_gives_infinite_buffers_a_cap() {
        let inf = dumbbell(1, 8e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let sfq = with_sfq_codel(&inf);
        match sfq.links[0].queue {
            QueueSpec::SfqCodel { capacity_bytes, .. } => assert!(capacity_bytes > 0),
            _ => panic!("expected sfqCoDel"),
        }
    }

    #[test]
    fn sfq_conversion_preserves_finite_capacity() {
        let fifo = net();
        let sfq = with_sfq_codel(&fifo);
        assert_eq!(
            sfq.links[0].queue.capacity_bytes(),
            fifo.links[0].queue.capacity_bytes()
        );
    }

    #[test]
    fn with_aqm_converts_every_discipline_at_same_capacity() {
        let fifo = net();
        let cap = fifo.links[0].queue.capacity_bytes();
        for kind in AqmKind::ALL {
            let converted = with_aqm(&fifo, kind);
            converted.validate().unwrap();
            assert_eq!(
                converted.links[0].queue.capacity_bytes(),
                cap,
                "{} keeps the buffer size",
                kind.name()
            );
        }
        // AQMs give infinite buffers a finite stand-in; drop-tail keeps None
        let inf = dumbbell(1, 8e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        assert_eq!(
            with_aqm(&inf, AqmKind::DropTail).links[0]
                .queue
                .capacity_bytes(),
            None
        );
        for kind in [AqmKind::Red, AqmKind::Codel, AqmKind::SfqCodel] {
            assert!(with_aqm(&inf, kind).links[0]
                .queue
                .capacity_bytes()
                .is_some());
        }
    }

    #[test]
    fn aqm_disciplines_all_sustain_cubic() {
        // Smoke: every discipline carries traffic on the standard dumbbell.
        for kind in AqmKind::ALL {
            let out = run_homogeneous(&with_aqm(&net(), kind), &Scheme::Cubic, 3, 20.0);
            let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
            assert!(total > 5e6, "{}: total {total}", kind.name());
        }
    }

    #[test]
    fn parallel_map_is_index_ordered_for_any_thread_count() {
        let serial = parallel_map_indexed(17, 1, |i| i * i);
        for threads in [2usize, 4, 16] {
            let par = parallel_map_indexed(17, threads, |i| i * i);
            assert_eq!(par, serial, "threads={threads}");
        }
        assert!(parallel_map_indexed(0, 4, |i| i).is_empty());
    }

    #[test]
    fn panicking_cell_fails_that_cell_not_the_pool() {
        // One deliberately panicking index must not poison the slot mutex
        // or hang the merge: every other index completes, and the panic
        // message survives verbatim.
        for threads in [1usize, 2, 8] {
            let results = parallel_try_map_indexed(9, threads, |i| {
                if i == 4 {
                    panic!("cell {i} exploded deliberately");
                }
                i * 10
            });
            assert_eq!(results.len(), 9, "threads={threads}");
            for (i, r) in results.iter().enumerate() {
                if i == 4 {
                    let msg = r.as_ref().unwrap_err();
                    assert!(
                        msg.contains("cell 4 exploded deliberately"),
                        "panic message preserved, got: {msg}"
                    );
                } else {
                    assert_eq!(*r.as_ref().unwrap(), i * 10);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "boom at index 2")]
    fn infallible_map_repanics_with_original_message() {
        let _ = parallel_map_indexed(4, 2, |i| {
            if i == 2 {
                panic!("boom at index 2");
            }
            i
        });
    }

    #[test]
    fn sweep_survives_a_poisoned_cell() {
        // A config the validator rejects panics inside Simulation::new;
        // the sweep must degrade that point to a flagged hole while the
        // healthy point runs to completion.
        let mut bad_net = net();
        bad_net.flows[0].route = vec![];
        let bad = SweepPoint::homogeneous("bad", 0.0, bad_net, Scheme::Cubic, 0..2, 4.0);
        let good = SweepPoint::homogeneous("good", 0.0, net(), Scheme::Cubic, 0..2, 4.0);
        let outs = execute_sweep(vec![bad, good], 2);
        assert_eq!(outs[0].runs.len(), 0);
        assert_eq!(outs[0].poisoned.len(), 2, "both seeds poisoned");
        assert_eq!(outs[0].poisoned[0].0, 0, "seed recorded");
        assert!(
            outs[0].poisoned[0].1.contains("invalid network config"),
            "validator message preserved: {}",
            outs[0].poisoned[0].1
        );
        assert_eq!(outs[1].runs.len(), 2, "healthy point unaffected");
        assert!(outs[1].poisoned.is_empty());
    }

    #[test]
    fn vegas_scheme_runs_and_labels() {
        assert_eq!(Scheme::Vegas.label(), "vegas");
        let out = run_homogeneous(&net(), &Scheme::Vegas, 3, 20.0);
        let total: f64 = out.flows.iter().map(|f| f.throughput_bps).sum();
        assert!(total > 3e6, "Vegas should carry traffic, got {total}");
    }

    #[test]
    fn sweep_engine_is_thread_count_invariant() {
        let points: Vec<SweepPoint> = [2.0, 6.0]
            .iter()
            .map(|&mbps| {
                SweepPoint::homogeneous(
                    format!("cubic@{mbps}"),
                    mbps,
                    dumbbell(
                        2,
                        mbps * 1e6,
                        0.100,
                        QueueSpec::drop_tail_bdp(mbps * 1e6, 0.100, 5.0),
                        WorkloadSpec::AlwaysOn,
                    ),
                    Scheme::Cubic,
                    0..3,
                    8.0,
                )
            })
            .collect();
        let digest = |outs: &[PointOutcome]| -> Vec<(String, usize, Vec<u64>, Vec<u64>)> {
            outs.iter()
                .map(|p| {
                    (
                        p.key().to_string(),
                        p.runs.len(),
                        p.runs.iter().map(|r| r.events_processed).collect(),
                        p.runs
                            .iter()
                            .flat_map(|r| r.flows.iter().map(|f| f.bytes_delivered))
                            .collect(),
                    )
                })
                .collect()
        };
        let serial = digest(&execute_sweep(points.clone(), 1));
        let parallel = digest(&execute_sweep(points.clone(), 4));
        assert_eq!(serial, parallel, "merge must be index-ordered");
        // sanity: runs are grouped per point in seed order
        assert_eq!(serial[0].1, 3);
    }

    #[test]
    fn sweep_traces_only_when_requested() {
        let traced = SweepPoint::homogeneous("t", 0.0, net(), Scheme::Cubic, 0..1, 4.0)
            .with_trace(vec![0], 100.0);
        let plain = SweepPoint::homogeneous("p", 0.0, net(), Scheme::Cubic, 0..1, 4.0);
        let outs = execute_sweep(vec![traced, plain], 2);
        assert!(outs[0].traces[0].is_some(), "trace requested");
        assert!(outs[1].traces[0].is_none(), "no trace requested");
        let tr = outs[0].traces[0].as_ref().unwrap();
        assert!(!tr.series[0].is_empty(), "samples recorded");
    }

    #[test]
    fn point_outcome_label_filtering() {
        let p = SweepPoint::mix(
            "mix",
            0.0,
            net(),
            vec![Scheme::Cubic, Scheme::NewReno],
            0..2,
            8.0,
        );
        let outs = execute_sweep(vec![p], 2);
        assert_eq!(outs[0].unique_labels(), vec!["cubic", "newreno"]);
        let (cubic_tpt, _) = outs[0].flow_points_labeled("cubic");
        let (reno_tpt, _) = outs[0].flow_points_labeled("newreno");
        assert_eq!(cubic_tpt.len(), 2, "one cubic flow x two seeds");
        assert_eq!(reno_tpt.len(), 2);
        assert!(outs[0].flow_points_labeled("absent").0.is_empty());
    }
}
