//! FigureData schema guarantees: serde round-trips, the on-disk JSON form
//! stays stable (golden file), and `learnability run calibration` produces
//! identical JSON across repeated runs and across thread counts.

use lcc_core::report::{
    ChartData, FigureData, PointData, RunMeta, SeriesData, SummaryItem, TableData,
    FIGURE_SCHEMA_VERSION,
};
use protocols::{Action, WhiskerTree};
use std::path::{Path, PathBuf};

/// A fixed figure exercising every schema field (error bars present and
/// absent, multiple charts/tables/notes).
fn reference_figure() -> FigureData {
    FigureData {
        schema_version: FIGURE_SCHEMA_VERSION,
        id: "reference".into(),
        paper_artifact: "Fig 0 / Table 0 — schema reference".into(),
        charts: vec![ChartData {
            title: "objective vs speed".into(),
            x_label: "Mbps".into(),
            series: vec![
                SeriesData {
                    name: "tao".into(),
                    points: vec![
                        PointData {
                            x: 1.0,
                            y: -0.25,
                            err: Some(0.05),
                        },
                        PointData {
                            x: 10.0,
                            y: -0.5,
                            err: None,
                        },
                    ],
                },
                SeriesData {
                    name: "cubic".into(),
                    points: vec![PointData {
                        x: 1.0,
                        y: -1.5,
                        err: None,
                    }],
                },
            ],
        }],
        tables: vec![TableData {
            title: "operating points".into(),
            headers: vec!["scheme".into(), "throughput".into()],
            rows: vec![
                vec!["tao".into(), "9.41 Mbps (±0.12)".into()],
                vec!["cubic".into(), "9.02 Mbps (±0.40)".into()],
            ],
        }],
        summary: vec![SummaryItem {
            key: "tao_fraction_of_omniscient".into(),
            value: 0.95,
        }],
        notes: vec!["tao throughput = 95.0% of omniscient".into()],
        meta: RunMeta {
            fidelity: "quick".into(),
            seeds: vec![0, 1, 2],
            git_describe: "schema-reference".into(),
        },
    }
}

#[test]
fn reference_figure_roundtrips() {
    let fig = reference_figure();
    let back = FigureData::from_json(&fig.to_json()).expect("parse own output");
    assert_eq!(fig, back);
}

/// Golden-file schema stability: the serialized form of the reference
/// figure is committed; any serialization change (field rename, ordering,
/// number formatting) fails here and requires a conscious
/// `FIGURE_SCHEMA_VERSION` bump. Regenerate with `LEARNABILITY_BLESS=1`.
#[test]
fn figure_json_matches_golden_file() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
        .join("figure_schema.json");
    let mut json = reference_figure().to_json();
    json.push('\n');
    if std::env::var("LEARNABILITY_BLESS").is_ok() {
        std::fs::create_dir_all(golden_path.parent().unwrap()).unwrap();
        std::fs::write(&golden_path, &json).unwrap();
    }
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", golden_path.display()));
    assert_eq!(
        json, golden,
        "FigureData JSON form changed — if intended, bump FIGURE_SCHEMA_VERSION \
         and regenerate with LEARNABILITY_BLESS=1"
    );
}

/// Scratch assets dir holding pre-built (untrained) protocol fixtures for
/// every experiment the determinism test drives, so it never pays for a
/// Remy run.
fn scratch_assets() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("learnability-figtest-{}", std::process::id()));
    for name in ["tao-calibration", "tao-mux-10"] {
        let proto = remy::TrainedProtocol {
            name: name.into(),
            tree: WhiskerTree::uniform(Action::new(1.0, 1.0, 1.0)),
            score: 0.0,
            description: "deterministic test fixture (not a trained protocol)".into(),
        };
        remy::serialize::save(&proto, &dir.join(format!("{name}.json"))).expect("save fixture");
    }
    dir
}

fn cli_run_json(id: &str, out_dir: &Path, threads: &str) -> String {
    let json_dir = out_dir.join(format!("{id}-threads-{threads}"));
    let code = lcc_core::cli::run(&[
        "run",
        id,
        "--fidelity",
        "quick",
        "--threads",
        threads,
        "--json",
        json_dir.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "learnability run {id} failed");
    std::fs::read_to_string(json_dir.join(format!("{id}.json"))).expect("artifact written")
}

/// `learnability run <id> --fidelity quick` must produce identical JSON
/// across two runs and across `--threads 1` vs `--threads N` — the sweep
/// engine's index-ordered merge is the only thing between us and
/// nondeterministic figures. Covers the original calibration experiment
/// and the scenario-diversity extensions (AQM gateways, asymmetric ACK
/// paths, flow churn, the shared-reverse-link uplink, M/G/∞ churn —
/// whose RED randomness, churn draws and reverse-queue drops must also
/// be pure functions of the seed).
#[test]
fn quick_json_is_deterministic_across_runs_and_threads() {
    let assets = scratch_assets();
    // Point the asset loader at the fixture dir programmatically —
    // std::env::set_var would race the other tests' getenv calls in this
    // parallel test binary.
    remy::serialize::set_assets_dir(Some(assets.clone()));

    let mut figs = std::collections::HashMap::new();
    for id in [
        "calibration",
        "aqm",
        "asymmetry",
        "churn",
        "shared_uplink",
        "churn_mginf",
    ] {
        let serial = cli_run_json(id, &assets, "1");
        let parallel = cli_run_json(id, &assets, "4");
        let again = cli_run_json(id, &assets, "1");
        assert_eq!(serial, again, "{id}: same flags, same JSON");
        assert_eq!(
            serial, parallel,
            "{id}: thread count must not change results"
        );

        let fig = FigureData::from_json(&serial).expect("valid FigureData artifact");
        assert_eq!(fig.id, id);
        assert_eq!(fig.schema_version, FIGURE_SCHEMA_VERSION);
        assert_eq!(fig.meta.fidelity, "quick");
        assert_eq!(fig.meta.seeds, vec![0, 1, 2]);
        assert!(
            !fig.tables.is_empty() || !fig.charts.is_empty(),
            "{id} renders data"
        );
        figs.insert(id, fig);
    }

    // Spot-check experiment-specific headline stats on the figures the
    // determinism loop already produced.
    assert!(
        figs["calibration"]
            .summary_value("tao_fraction_of_omniscient")
            .is_some(),
        "headline stat present"
    );
    assert!(
        figs["aqm"]
            .summary_value("tao_droptail_minus_worst_aqm")
            .is_some(),
        "AQM generality gap present"
    );
    assert!(
        figs["churn"]
            .summary_value("tao_churn1hz_minus_static")
            .is_some(),
        "churn consistency anchor present"
    );
    assert!(
        figs["shared_uplink"]
            .summary_value("tao_droptail_degradation_1_to_50")
            .is_some()
            && figs["shared_uplink"]
                .summary_value("tao_codel_degradation_1_to_50")
                .is_some(),
        "shared-uplink per-queue degradation stats present"
    );
    assert!(
        figs["churn_mginf"]
            .summary_value("tao_mginf_objective_at_5hz")
            .is_some(),
        "M/G/inf headline stat present"
    );

    remy::serialize::set_assets_dir(None);
    std::fs::remove_dir_all(&assets).ok();
}
