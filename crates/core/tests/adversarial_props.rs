//! Property-based tests of the adversarial-search contract: every point
//! the search can visit realizes to a valid network, and a certificate's
//! recorded score digest replays exactly on both scheduler backends.

use lcc_core::search::{adversarial_space, find_worst_case, realize, replay, SearchConfig};
use lcc_core::Scheme;
use netsim::event::SchedulerKind;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampled point of the adversarial box realizes to a config
    /// that passes `NetworkConfig::validate`, and sampling is a pure
    /// function of the seed.
    #[test]
    fn sampled_points_realize_valid(seed in 0u64..u64::MAX) {
        let space = adversarial_space();
        let p = space.sample(seed);
        prop_assert!(space.contains(&p), "sample left the box: {p:?}");
        prop_assert!(realize(&space, &p).validate().is_ok());
        prop_assert_eq!(space.sample(seed), p, "sampling not deterministic");
    }

    /// Bounded mutation never escapes the box, from any starting point —
    /// including points already mutated several times — so evolutionary
    /// refinement can only ever visit valid configs.
    #[test]
    fn mutation_chains_realize_valid(
        start_seed in 0u64..u64::MAX,
        step_seeds in proptest::collection::vec(0u64..u64::MAX, 1..6),
        strength in 0.01f64..1.0,
    ) {
        let space = adversarial_space();
        let mut p = space.sample(start_seed);
        for s in step_seeds {
            p = space.mutate(&p, s, strength);
            prop_assert!(space.contains(&p), "mutation left the box: {p:?}");
            prop_assert!(realize(&space, &p).validate().is_ok());
        }
    }

    /// Even arbitrary out-of-box vectors realize to a valid config (clamp
    /// is total), so a hand-edited certificate point cannot crash replay.
    #[test]
    fn realize_is_total(raw in proptest::collection::vec(-1e9f64..1e9, 11)) {
        let space = adversarial_space();
        prop_assert!(realize(&space, &raw).validate().is_ok());
    }
}

proptest! {
    // Replay runs real simulations, so keep the case count small; each
    // case is a full tiny search plus four replays.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The reproducibility contract of `learnability replay`: for any
    /// search seed, replaying the certificate's (config, seeds) on either
    /// scheduler backend reproduces the recorded score bit for bit.
    #[test]
    fn certificates_replay_bit_identically(seed in 0u64..u64::MAX) {
        let cfg = SearchConfig {
            population: 1,
            generations: 0,
            survivors: 1,
            children_per_survivor: 1,
            seeds: 0..1,
            duration_s: 1.0,
            seed,
            threads: 1,
            strength: 0.3,
        };
        for scheme in [Scheme::Cubic, Scheme::Vegas] {
            let Some(cert) = find_worst_case(&scheme, None, &cfg).certificate else {
                // A candidate where no flow turned ON yields no certificate;
                // that is a legal search outcome, not a replay failure.
                continue;
            };
            for kind in [SchedulerKind::Calendar, SchedulerKind::Heap] {
                let got = replay(&cert, &scheme, kind);
                prop_assert_eq!(
                    got.to_bits(), cert.score_bits,
                    "{:?}/{:?}: replayed {} vs recorded {}",
                    scheme.label(), kind, got, cert.score
                );
            }
        }
    }
}
