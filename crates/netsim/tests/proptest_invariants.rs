//! Property-based tests of the simulator's foundational invariants.

use netsim::event::{Event, EventQueue};
use netsim::packet::FlowId;
use netsim::queue::{DropTail, QueueDiscipline, QueuedPacket};
use netsim::rng::SimRng;
use netsim::time::{SimDuration, SimTime};
use proptest::prelude::*;

fn qp(flow: u32, seq: u64, data: bool) -> QueuedPacket {
    let pkt = netsim::packet::Packet::data(FlowId(flow), seq, 0, SimTime::ZERO, seq, false);
    QueuedPacket {
        pkt: if data {
            pkt
        } else {
            netsim::packet::Packet::ack_for(&pkt, SimTime::ZERO)
        },
        enqueued_at: SimTime::ZERO,
    }
}

proptest! {
    /// The event queue is a stable priority queue: pops come out in
    /// nondecreasing time order, FIFO within a timestamp.
    #[test]
    fn event_queue_is_stable_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(
                SimTime::from_nanos(t),
                Event::SenderWake { flow: FlowId(i as u32) },
            );
        }
        let mut last_time = SimTime::ZERO;
        let mut last_flow_at_time: Option<u32> = None;
        while let Some((at, ev)) = q.pop() {
            prop_assert!(at >= last_time);
            let flow = match ev {
                Event::SenderWake { flow } => flow.0,
                _ => unreachable!(),
            };
            if at == last_time {
                if let Some(prev) = last_flow_at_time {
                    // same-time events preserve insertion order only when
                    // their original indices are ordered; indices are the
                    // insertion order here.
                    let same_t: Vec<u32> = times
                        .iter()
                        .enumerate()
                        .filter(|(_, &t)| SimTime::from_nanos(t) == at)
                        .map(|(i, _)| i as u32)
                        .collect();
                    let pi = same_t.iter().position(|&x| x == prev);
                    let ci = same_t.iter().position(|&x| x == flow);
                    if let (Some(pi), Some(ci)) = (pi, ci) {
                        prop_assert!(pi < ci, "FIFO violated at {at:?}");
                    }
                }
                last_flow_at_time = Some(flow);
            } else {
                last_flow_at_time = Some(flow);
            }
            last_time = at;
        }
    }

    /// Drop-tail conserves packets and never exceeds its byte capacity.
    #[test]
    fn droptail_conserves_and_bounds(
        sizes in proptest::collection::vec(0u32..2, 1..300),
        cap_kb in 1u64..64,
    ) {
        let cap = cap_kb * 1024;
        let mut q = DropTail::new(Some(cap));
        let mut accepted = 0u64;
        for (i, &s) in sizes.iter().enumerate() {
            prop_assert!(q.len_bytes() <= cap);
            if q.enqueue(qp(0, i as u64, s == 0), SimTime::ZERO) {
                accepted += 1;
            }
            prop_assert!(q.len_bytes() <= cap);
        }
        let mut drained = 0u64;
        while q.dequeue(SimTime::ZERO).is_some() {
            drained += 1;
        }
        prop_assert_eq!(accepted, drained);
        let st = q.stats();
        prop_assert_eq!(st.enqueued, accepted);
        prop_assert_eq!(st.dropped as usize, sizes.len() - accepted as usize);
        prop_assert_eq!(q.len_bytes(), 0);
    }

    /// Exponential draws are nonnegative and deterministic per seed.
    #[test]
    fn rng_exponential_properties(seed in 0u64..u64::MAX, mean_ms in 1u64..10_000) {
        let mean = SimDuration::from_millis(mean_ms);
        let mut a = SimRng::from_seed(seed);
        let mut b = SimRng::from_seed(seed);
        for _ in 0..20 {
            let x = a.exp_duration(mean);
            let y = b.exp_duration(mean);
            prop_assert_eq!(x, y);
        }
    }

    /// Time arithmetic: `(t + d) - t == d` and subtraction saturates.
    #[test]
    fn time_addition_roundtrips(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let t0 = SimTime::from_nanos(t);
        let dur = SimDuration::from_nanos(d);
        prop_assert_eq!((t0 + dur) - t0, dur);
        prop_assert_eq!(t0.since(t0 + dur), SimDuration::ZERO);
    }

    /// Log-uniform draws stay within bounds for any valid range.
    #[test]
    fn log_uniform_in_bounds(seed in 0u64..u64::MAX, lo in 0.001f64..10.0, span in 1.0f64..1e5) {
        let hi = lo * span;
        let mut rng = SimRng::from_seed(seed);
        for _ in 0..10 {
            let x = rng.log_uniform(lo, hi);
            prop_assert!(x >= lo && x < hi * 1.0000001, "x={x} not in [{lo},{hi})");
        }
    }
}
