//! The bidirectional network's compatibility contract.
//!
//! With one flow there is nobody to contend with, so a *shared* reverse
//! link and a *private* per-flow reverse link must be the same machine:
//! the identical event sequence (order-sensitive dispatch digest), the
//! identical ack stream, the identical outcome — whatever the reverse
//! rate, queue discipline, seed or scheduler backend. This pins the
//! shared-contention code path to PR 4's per-flow reverse semantics
//! exactly where they are defined to coincide.

use netsim::prelude::*;
use netsim::sim::RunOutcome;
use netsim::topology::ReverseSpec;
use netsim::transport::AckInfo;
use proptest::prelude::*;

/// Window-driven AIMD (same shape as the determinism suite's) so the run
/// exercises queueing, loss recovery and RTO timers.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

/// Reverse queue disciplines under test, sized for a slow ACK channel.
fn reverse_queue(which: u8, rate_bps: f64) -> QueueSpec {
    match which % 3 {
        0 => QueueSpec::infinite(),
        1 => QueueSpec::DropTail {
            capacity_bytes: Some(2_000),
        },
        _ => QueueSpec::codel_default(rate_bps, 0.120, 5.0),
    }
}

fn run_single_flow(
    shared: bool,
    rate_bps: f64,
    queue: QueueSpec,
    seed: u64,
) -> (RunOutcome, Vec<Option<u64>>) {
    let mut net = dumbbell(
        1,
        8e6,
        0.120,
        QueueSpec::DropTail {
            capacity_bytes: Some(30_000),
        },
        WorkloadSpec::on_off_1s(),
    );
    net.links[0].reverse = Some(ReverseSpec {
        rate_bps,
        delay_s: 0.060,
        queue,
        shared,
    });
    let mut sim = Simulation::new(&net, vec![Box::new(Aimd { w: 2.0 })], seed);
    sim.enable_event_digest();
    let out = sim.run(SimDuration::from_secs(15));
    let acks = sim.ack_digests();
    (out, acks)
}

#[test]
fn single_flow_shared_equals_per_flow() {
    let (sh, sh_acks) = run_single_flow(true, 300e3, QueueSpec::infinite(), 3);
    let (pf, pf_acks) = run_single_flow(false, 300e3, QueueSpec::infinite(), 3);
    assert!(sh.events_processed > 10_000, "meaningful run");
    assert_eq!(sh.event_digest, pf.event_digest);
    assert_eq!(sh_acks, pf_acks);
    assert_eq!(sh.link_bytes, pf.link_bytes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `shared: true` with one flow is event-digest-identical to the
    /// per-flow reverse path, across reverse rates, reverse queue
    /// disciplines and seeds.
    #[test]
    fn shared_reverse_with_one_flow_is_digest_identical_to_per_flow(
        rate_kbps in prop_oneof![Just(100.0), Just(300.0), Just(2_000.0)],
        queue_kind in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let rate = rate_kbps * 1e3;
        let queue = reverse_queue(queue_kind, rate);
        let (sh, sh_acks) = run_single_flow(true, rate, queue.clone(), seed);
        let (pf, pf_acks) = run_single_flow(false, rate, queue, seed);
        prop_assert!(sh.event_digest.is_some());
        prop_assert_eq!(sh.event_digest, pf.event_digest, "event sequences diverged");
        prop_assert_eq!(sh_acks, pf_acks, "ack streams diverged");
        prop_assert_eq!(sh.events_processed, pf.events_processed);
        for (a, b) in sh.flows.iter().zip(&pf.flows) {
            prop_assert_eq!(a.bytes_delivered, b.bytes_delivered);
            prop_assert_eq!(a.drops.ack, b.drops.ack);
            prop_assert_eq!(a.throughput_bps.to_bits(), b.throughput_bps.to_bits());
        }
    }
}

#[test]
fn reverse_queue_disciplines_manage_ack_traffic() {
    // Eight aggressive senders' ACKs through one 300 kbps uplink. A tiny
    // drop-tail buffer tail-drops (per-flow `drops.ack` accounting, like
    // `drops.forward`); CoDel on a large buffer sheds its standing ACK
    // queue through sojourn-triggered dequeue drops, which — exactly as
    // on the forward path — are internal to the discipline and appear in
    // the reverse link's `QueueStats` only.
    let run = |queue: QueueSpec| {
        let mut net = dumbbell(
            8,
            20e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        net.links[0].reverse = Some(ReverseSpec::shared(300e3, 0.050, queue));
        let protocols: Vec<Box<dyn CongestionControl>> =
            (0..8).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
        let mut sim = Simulation::new(&net, protocols, 7);
        let out = sim.run(SimDuration::from_secs(20));
        assert_eq!(out.forward_links, 1, "reverse link reported after forward");
        (
            out.link_queues[1].dropped,
            out.flows.iter().map(|f| f.drops.ack).sum::<u64>(),
        )
    };
    // 2 kB = 50 ACKs of shared buffer: the standing queue overflows.
    let (dt_dropped, dt_flow_drops) = run(QueueSpec::DropTail {
        capacity_bytes: Some(2_000),
    });
    assert!(dt_dropped > 0, "tiny shared ACK buffer must tail-drop");
    assert_eq!(
        dt_dropped, dt_flow_drops,
        "tail drops are accounted per flow"
    );
    let (cd_dropped, cd_flow_drops) = run(QueueSpec::codel_default(300e3, 0.100, 5.0));
    assert!(
        cd_dropped > 0,
        "CoDel must shed standing ACK load (sojourn-triggered drops)"
    );
    assert_eq!(
        cd_flow_drops, 0,
        "CoDel drops on dequeue, inside the discipline — not at enqueue"
    );
}
