//! End-to-end behavior of the fault-injection layer: Gilbert–Elliott
//! bursty loss, link outages (drop and hold modes), and corruption —
//! including the accounting contract (fault drops are never queue drops)
//! and RTO-driven recovery after a blackout.

use netsim::prelude::*;
use netsim::sim::RunOutcome;
use netsim::transport::AckInfo;

/// The same aggressive AIMD the determinism suite uses: exercises
/// queueing, loss recovery, and RTO timers.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

/// Single always-on flow over an uncongested (infinite-buffer) dumbbell:
/// any loss the flow sees must come from the fault process, never a queue.
fn uncongested_net(fault: Option<FaultSpec>) -> NetworkConfig {
    let mut net = dumbbell(1, 8e6, 0.100, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
    net.links[0].fault = fault;
    net
}

fn run_net(net: &NetworkConfig, seed: u64, secs: u64) -> RunOutcome {
    let mut sim = Simulation::new(net, vec![Box::new(Aimd { w: 2.0 })], seed);
    sim.run(SimDuration::from_secs(secs))
}

#[test]
fn gilbert_elliott_losses_are_fault_drops_not_queue_drops() {
    // ~10% mean loss: bad state 50% lossy, occupied 20% of the time.
    let faulty = uncongested_net(Some(FaultSpec::GilbertElliott {
        loss_good: 0.0,
        loss_bad: 0.5,
        good_to_bad: 0.05,
        bad_to_good: 0.2,
    }));
    let clean = uncongested_net(None);
    let f = run_net(&faulty, 7, 10);
    let c = run_net(&clean, 7, 10);
    assert!(
        f.flows[0].drops.fault > 50,
        "GE process must destroy packets, got {}",
        f.flows[0].drops.fault
    );
    assert_eq!(
        f.flows[0].drops.forward, 0,
        "infinite buffer: no queue drop can occur"
    );
    assert_eq!(
        f.link_queues[0].dropped, 0,
        "queue stats untouched by faults"
    );
    assert!(
        f.flows[0].bytes_delivered < c.flows[0].bytes_delivered,
        "non-congestive loss must cost throughput"
    );
    assert!(
        f.flows[0].retransmissions > 0,
        "lost packets must be recovered via retransmission"
    );
}

#[test]
fn corruption_consumes_link_capacity_but_is_discarded() {
    let faulty = uncongested_net(Some(FaultSpec::corruption(0.05)));
    let f = run_net(&faulty, 3, 10);
    assert!(
        f.flows[0].drops.fault > 20,
        "corruption must discard packets, got {}",
        f.flows[0].drops.fault
    );
    assert_eq!(f.flows[0].drops.forward, 0);
    assert_eq!(f.link_queues[0].dropped, 0);
    // Corrupted packets crossed the link before being discarded: the
    // link transmitted more bytes than the receiver counted.
    assert!(
        f.link_bytes[0] > f.flows[0].bytes_delivered,
        "corrupted packets consume serialization capacity: link {} vs delivered {}",
        f.link_bytes[0],
        f.flows[0].bytes_delivered
    );
}

#[test]
fn flow_recovers_after_blackout_shorter_than_max_rto() {
    // Square wave: 4 s up, 2 s down (well under MAX_RTO = 60 s). In drop
    // mode every packet sent into the blackout is destroyed, so recovery
    // must come from the RTO exponential-backoff path.
    let net = uncongested_net(Some(FaultSpec::outage_scheduled(4.0, 2.0, true)));
    // Run A ends mid-blackout; run B sees the link return and a full
    // 4 s of post-outage service. The flow must resume — substantially
    // more bytes, not a black-holed stall.
    let a = run_net(&net, 11, 6);
    let b = run_net(&net, 11, 12);
    assert!(a.flows[0].drops.fault > 0, "blackout must destroy packets");
    assert!(
        b.flows[0].timeouts >= 1,
        "recovery must exercise the RTO path"
    );
    assert!(
        b.flows[0].bytes_delivered as f64 >= 1.5 * a.flows[0].bytes_delivered as f64,
        "flow must recover after the link returns: {} vs {} bytes",
        b.flows[0].bytes_delivered,
        a.flows[0].bytes_delivered
    );
}

#[test]
fn hold_mode_outage_preserves_packets() {
    // Same square wave, but packets are held in the (infinite) queue and
    // released when the link returns: nothing is destroyed.
    let net = uncongested_net(Some(FaultSpec::outage_scheduled(4.0, 2.0, false)));
    let out = run_net(&net, 11, 12);
    assert_eq!(out.flows[0].drops.fault, 0, "hold mode destroys nothing");
    assert_eq!(out.flows[0].drops.forward, 0);
    let held = run_net(&net, 11, 12).flows[0].bytes_delivered;
    let dropped = run_net(
        &uncongested_net(Some(FaultSpec::outage_scheduled(4.0, 2.0, true))),
        11,
        12,
    )
    .flows[0]
        .bytes_delivered;
    assert!(
        held > dropped,
        "holding packets across the blackout must beat destroying them: {held} vs {dropped}"
    );
}

#[test]
fn markov_outages_differ_by_seed_but_not_by_backend() {
    let net = uncongested_net(Some(FaultSpec::outage_markov(2.0, 0.5, true)));
    let a = run_net(&net, 1, 10);
    let b = run_net(&net, 2, 10);
    // Exponential dwells: different seeds see different outage patterns.
    assert_ne!(
        a.flows[0].bytes_delivered, b.flows[0].bytes_delivered,
        "Markov outages should vary with the seed"
    );
    // Same seed reproduces exactly.
    let a2 = run_net(&net, 1, 10);
    assert_eq!(a.flows[0].bytes_delivered, a2.flows[0].bytes_delivered);
    assert_eq!(a.flows[0].drops.fault, a2.flows[0].drops.fault);
}
