//! Failure-injection tests of the reliability layer inside the full
//! engine: lossy bottlenecks, RTO recovery, and workload churn must never
//! wedge a sender or corrupt accounting.

use netsim::prelude::*;
use netsim::transport::{AckInfo, CongestionControl};

/// A window protocol that ignores all feedback — worst case for the
/// transport because it never backs off.
struct Stubborn(f64);

impl CongestionControl for Stubborn {
    fn reset(&mut self, _: SimTime) {}
    fn on_ack(&mut self, _: SimTime, _: &Ack, _: &AckInfo) {}
    fn on_loss(&mut self, _: SimTime) {}
    fn on_timeout(&mut self, _: SimTime) {}
    fn window(&self) -> f64 {
        self.0
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "stubborn".into()
    }
}

#[test]
fn recovery_through_a_tiny_buffer() {
    // Buffer of 2 packets against a window of 60: constant heavy loss.
    let net = dumbbell(
        1,
        2e6,
        0.050,
        QueueSpec::DropTail {
            capacity_bytes: Some(3_000),
        },
        WorkloadSpec::AlwaysOn,
    );
    let mut sim = Simulation::new(&net, vec![Box::new(Stubborn(60.0))], 3);
    let out = sim.run(SimDuration::from_secs(20));
    let f = &out.flows[0];
    assert!(
        f.drops.forward > 500,
        "tiny buffer must shed heavily: {}",
        f.drops.forward
    );
    // Despite the loss storm the connection makes forward progress at
    // roughly line rate (goodput bounded by capacity, not collapsed).
    assert!(
        f.throughput_bps > 1.0e6,
        "goodput collapsed to {}",
        f.throughput_bps
    );
    // Every loss is eventually repaired: no sequence can be delivered
    // twice, and retransmissions happened.
    assert!(f.retransmissions > 100);
    assert!(f.throughput_bps <= 2e6 * 1.01);
}

#[test]
fn rto_fires_when_whole_window_is_lost() {
    // A lone flow always keeps an ack stream alive (per-packet selective
    // acks), so dupack detection recovers everything. Total ack
    // starvation needs contention: a huge-window hog keeps the shared
    // 4-packet buffer full, so the tiny-window victim regularly loses
    // its entire flight (2 packets — below the dupack threshold) and can
    // only recover via RTO.
    let net = dumbbell(
        2,
        1e6,
        0.100,
        QueueSpec::DropTail {
            capacity_bytes: Some(6_000),
        },
        WorkloadSpec::AlwaysOn,
    );
    let mut sim = Simulation::new(
        &net,
        vec![Box::new(Stubborn(300.0)), Box::new(Stubborn(2.0))],
        9,
    );
    let out = sim.run(SimDuration::from_secs(60));
    let victim = &out.flows[1];
    assert!(victim.drops.forward > 0, "victim must see drops");
    assert!(
        victim.timeouts > 0,
        "expected RTO-driven recovery for the victim"
    );
    assert!(victim.bytes_delivered > 0, "sender must not wedge");
}

#[test]
fn rapid_workload_churn_does_not_leak_state() {
    // 50 ms ON / 50 ms OFF for 30 s: hundreds of epochs. Stale acks from
    // prior epochs must be discarded, and stats must stay consistent.
    let net = dumbbell(
        2,
        5e6,
        0.040,
        QueueSpec::drop_tail_bdp(5e6, 0.040, 3.0),
        WorkloadSpec::OnOff {
            mean_on_s: 0.050,
            mean_off_s: 0.050,
        },
    );
    let mut sim = Simulation::new(
        &net,
        vec![Box::new(Stubborn(10.0)), Box::new(Stubborn(10.0))],
        21,
    );
    let out = sim.run(SimDuration::from_secs(30));
    for f in &out.flows {
        assert!(
            f.on_time_s > 5.0 && f.on_time_s < 25.0,
            "duty ~50%: {}",
            f.on_time_s
        );
        assert!(f.transmissions >= f.packets_delivered);
        // per-packet delay cannot be below one-way propagation
        if f.packets_delivered > 0 {
            assert!(
                f.avg_delay_s >= 0.0199,
                "delay {} below propagation",
                f.avg_delay_s
            );
        }
    }
}

#[test]
fn pulse_workload_exact_on_time() {
    let net = netsim::topology::dumbbell_mixed(
        5e6,
        0.060,
        QueueSpec::infinite(),
        vec![WorkloadSpec::pulse(2.0, 7.0)],
    );
    let mut sim = Simulation::new(&net, vec![Box::new(Stubborn(20.0))], 1);
    let out = sim.run(SimDuration::from_secs(10));
    let f = &out.flows[0];
    assert!(
        (f.on_time_s - 5.0).abs() < 1e-6,
        "pulse [2,7) means exactly 5 s ON, got {}",
        f.on_time_s
    );
    assert!(f.bytes_delivered > 0);
}

#[test]
fn pulse_still_on_at_sim_end_counts_partial_interval() {
    let net = netsim::topology::dumbbell_mixed(
        5e6,
        0.060,
        QueueSpec::infinite(),
        vec![WorkloadSpec::pulse(2.0, 70.0)],
    );
    let mut sim = Simulation::new(&net, vec![Box::new(Stubborn(20.0))], 1);
    let out = sim.run(SimDuration::from_secs(10));
    assert!(
        (out.flows[0].on_time_s - 8.0).abs() < 1e-6,
        "ON from t=2 to sim end at t=10, got {}",
        out.flows[0].on_time_s
    );
}
