//! Order-equivalence of the scheduler backends.
//!
//! The engine's determinism contract says any [`Scheduler`] backend must
//! realize the identical `(time, insertion-seq)` total order. These
//! properties drive the calendar queue and the reference binary heap
//! through arbitrary interleaved insert/pop sequences — dense
//! microsecond-scale times with exact same-instant ties, second-scale
//! times, far-future RTO-like timers, and instants at the saturated end
//! of the u64-nanosecond horizon — and require every pop to match.

use netsim::calendar::CalendarQueue;
use netsim::event::{BinaryHeapScheduler, Event, Scheduler};
use netsim::packet::FlowId;
use netsim::prelude::*;
use proptest::prelude::*;

/// One scripted queue operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    Push(u64),
    Pop,
}

/// Decode a `(mode, raw)` pair into an operation. Push modes deliberately
/// cover the regimes a simulation produces: mode 1 quantizes to whole
/// microseconds over a tiny horizon so exact ties are common, mode 3 is
/// an RTO-style far-future timer (seconds to a minute out), and mode 4
/// sits within a hair of `u64::MAX` (the saturated `SimTime` edge).
fn decode(mode: u8, raw: u64) -> Op {
    match mode {
        0 => Op::Pop,
        1 => Op::Push((raw % 64) * 1_000),
        2 => Op::Push(raw % 1_000_000_000),
        3 => Op::Push(1_000_000_000 + raw % 60_000_000_000),
        _ => Op::Push(u64::MAX - raw % 1_000),
    }
}

fn wake(seq: u64) -> Event {
    Event::SenderWake {
        flow: FlowId(seq as u32),
    }
}

/// The event payload is identified by the wake's flow id (set from the
/// insertion seq), so comparing it checks payload routing too.
fn wake_flow(ev: &Event) -> u32 {
    match ev {
        Event::SenderWake { flow } => flow.0,
        other => panic!("scheduler invented an event: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every pop from the calendar queue matches the heap, op for op,
    /// across arbitrary interleavings; both drain to the same sequence.
    #[test]
    fn calendar_matches_heap_pop_for_pop(
        script in collection::vec((0u8..=4, 0u64..=u64::MAX), 0..300),
    ) {
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for (mode, raw) in script {
            match decode(mode, raw) {
                Op::Push(nanos) => {
                    let at = SimTime::from_nanos(nanos);
                    heap.insert(at, seq, wake(seq));
                    cal.insert(at, seq, wake(seq));
                    seq += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(cal.peek_time(), heap.peek_time());
                    let (h, c) = (heap.pop(), cal.pop());
                    match (h, c) {
                        (None, None) => {}
                        (Some(h), Some(c)) => {
                            prop_assert_eq!(h.at, c.at);
                            prop_assert_eq!(h.seq, c.seq);
                            prop_assert_eq!(wake_flow(&h.event), wake_flow(&c.event));
                        }
                        (h, c) => prop_assert!(false, "pop divergence: heap={h:?} cal={c:?}"),
                    }
                }
            }
            prop_assert_eq!(heap.len(), cal.len());
        }
        // Drain what's left; order must still agree exactly.
        loop {
            let (h, c) = (heap.pop(), cal.pop());
            match (h, c) {
                (None, None) => break,
                (Some(h), Some(c)) => {
                    prop_assert_eq!((h.at, h.seq), (c.at, c.seq));
                }
                (h, c) => prop_assert!(false, "drain divergence: heap={h:?} cal={c:?}"),
            }
        }
    }

    /// A calendar queue seeded with an arbitrary width hint still agrees
    /// with the heap (the hint tunes constants, never order).
    #[test]
    fn width_hint_never_changes_order(
        hint_nanos in 0u64..=u64::MAX,
        script in collection::vec((0u8..=4, 0u64..=u64::MAX), 0..150),
    ) {
        let mut heap = BinaryHeapScheduler::new();
        let mut cal = CalendarQueue::with_width_hint(SimDuration::from_nanos(hint_nanos));
        let mut seq = 0u64;
        for (mode, raw) in script {
            match decode(mode, raw) {
                Op::Push(nanos) => {
                    let at = SimTime::from_nanos(nanos);
                    heap.insert(at, seq, wake(seq));
                    cal.insert(at, seq, wake(seq));
                    seq += 1;
                }
                Op::Pop => {
                    let (h, c) = (heap.pop(), cal.pop());
                    prop_assert_eq!(h.map(|e| (e.at, e.seq)), c.map(|e| (e.at, e.seq)));
                }
            }
        }
        while !heap.is_empty() || !cal.is_empty() {
            let (h, c) = (heap.pop(), cal.pop());
            prop_assert_eq!(h.map(|e| (e.at, e.seq)), c.map(|e| (e.at, e.seq)));
        }
    }

    /// Same-instant bursts pop FIFO from both backends even when buried
    /// among other times — the tie-break the optimizer's bit-identical
    /// comparisons rest on.
    #[test]
    fn same_instant_bursts_stay_fifo(
        instant in 0u64..=u64::MAX - 1_000_000,
        burst in 2usize..64,
        noise in collection::vec(0u64..1_000_000u64, 0..64),
    ) {
        let at = SimTime::from_nanos(instant);
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for _ in 0..burst {
            cal.insert(at, seq, wake(seq));
            seq += 1;
        }
        for &offset in &noise {
            cal.insert(SimTime::from_nanos(instant.saturating_add(offset + 1)), seq, wake(seq));
            seq += 1;
        }
        // The burst (seqs 0..burst) must come out first, in order.
        for expect in 0..burst as u64 {
            let e = cal.pop().unwrap();
            prop_assert_eq!(e.at, at);
            prop_assert_eq!(e.seq, expect);
        }
    }
}
