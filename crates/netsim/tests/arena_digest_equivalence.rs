//! Event-digest equivalence of the arena-backed, batch-stepped engine.
//!
//! The hot-path rework moved every packet-carrying event payload into
//! the generation-indexed [`netsim::arena::PacketArena`] (events carry
//! 8-byte handles, the digest resolves them at fold time) and taught the
//! engine to dispatch same-instant slots in batches popped straight from
//! the scheduler. Neither change is allowed to perturb a single
//! dispatched event: the digest folds the same words it folded when
//! events carried packets by value, and the batch loop realizes the same
//! `(time, insertion-seq)` total order as one-at-a-time popping.
//!
//! These properties pin that claim across the *full* scenario
//! cross-product — AQM discipline × reverse-path shape × fault process ×
//! churn workload × receiver policy — on both scheduler backends. Every
//! axis reaches the arena through a different event chain (AQM drops
//! free parked packets early, shared reverse links park real ACK
//! packets, outages re-park on link-up, churn starts/stops epochs,
//! delayed-ACK receivers run the AckTimer arm/cancel path), so a slot
//! recycled one event too early on any chain diverges the digest here.

use netsim::prelude::*;
use netsim::transport::AckInfo;
use proptest::prelude::*;

/// AIMD aggressive enough to pressure finite buffers and AQMs.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

/// One point of the scenario cross-product, as raw axis selectors.
#[derive(Clone, Copy, Debug)]
struct Axes {
    aqm: u8,
    reverse: u8,
    fault: u8,
    churn: u8,
    receiver: u8,
}

fn build_net(a: Axes) -> NetworkConfig {
    let queue = match a.aqm % 4 {
        0 => QueueSpec::DropTail {
            capacity_bytes: Some(18_000),
        },
        1 => QueueSpec::red_default(8e6, 0.120, 5.0),
        2 => QueueSpec::codel_default(8e6, 0.120, 5.0),
        _ => QueueSpec::sfq_codel_default(8e6, 0.120, 5.0),
    };
    let mut net = dumbbell(3, 8e6, 0.120, queue, WorkloadSpec::AlwaysOn);
    net = match a.reverse % 3 {
        0 => net,
        1 => net.with_reverse_slowdown(20.0),
        _ => net.with_shared_reverse(20.0, |_, _| QueueSpec::DropTail {
            capacity_bytes: Some(4_000),
        }),
    };
    net.links[0].fault = match a.fault % 4 {
        0 => None,
        1 => Some(FaultSpec::GilbertElliott {
            loss_good: 0.005,
            loss_bad: 0.4,
            good_to_bad: 0.02,
            bad_to_good: 0.1,
        }),
        2 => Some(FaultSpec::outage_scheduled(2.0, 0.5, true)),
        _ => Some(FaultSpec::Corruption { prob: 0.08 }),
    };
    match a.churn % 3 {
        0 => {}
        1 => net.flows[0].workload = WorkloadSpec::churn(1.5, 0.8),
        _ => net.flows[0].workload = WorkloadSpec::churn_mginf(1.5, 0.8),
    }
    let receiver = match a.receiver % 3 {
        0 => None,
        1 => Some(ReceiverSpec::delayed(4, 0.040)),
        _ => Some(ReceiverSpec::delayed(2, 0.080).with_rwnd(24)),
    };
    if let Some(spec) = receiver {
        net = net.with_receiver(spec);
    }
    net.validate()
        .expect("cross-product scenario must be valid");
    net
}

fn digest_of(net: &NetworkConfig, kind: SchedulerKind, seed: u64) -> (u64, u64, Vec<Option<u64>>) {
    let protocols: Vec<Box<dyn CongestionControl>> =
        (0..3).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
    let mut sim = Simulation::with_scheduler(net, protocols, seed, kind);
    sim.enable_event_digest();
    let out = sim.run(SimDuration::from_secs(10));
    (
        out.event_digest.expect("digest enabled"),
        out.events_processed,
        sim.ack_digests(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any (AQM × reverse × fault × churn × receiver) cell dispatches the
    /// identical event sequence on both scheduler backends, event for
    /// event — the digest resolves every arena handle it folds, so a
    /// prematurely recycled or double-freed slot cannot hide.
    #[test]
    fn axis_cross_product_is_digest_identical_across_backends(
        aqm in 0u8..4,
        reverse in 0u8..3,
        fault in 0u8..4,
        churn in 0u8..3,
        receiver in 0u8..3,
        seed in 0u64..1_000,
    ) {
        let net = build_net(Axes { aqm, reverse, fault, churn, receiver });
        let heap = digest_of(&net, SchedulerKind::Heap, seed);
        let cal = digest_of(&net, SchedulerKind::Calendar, seed);
        prop_assert_eq!(heap.1, cal.1, "event counts diverged");
        prop_assert_eq!(heap.0, cal.0, "event digests diverged");
        prop_assert_eq!(&heap.2, &cal.2, "per-flow ack digests diverged");
        // And re-running the same backend reproduces the digest exactly
        // (arena slot assignment is deterministic, not address-dependent).
        let again = digest_of(&net, SchedulerKind::Calendar, seed);
        prop_assert_eq!(cal.0, again.0, "calendar rerun diverged");
    }
}

/// Deterministic anchor: a handful of corner cells of the cross-product
/// run on every CI invocation regardless of proptest's case sampling —
/// each picks an axis combination with a distinctive arena lifecycle.
#[test]
fn corner_cells_are_digest_identical() {
    let corners = [
        // every axis off: the pure arena recycle chain
        Axes {
            aqm: 0,
            reverse: 0,
            fault: 0,
            churn: 0,
            receiver: 0,
        },
        // everything on at once, shared reverse + M/G/∞ + rwnd receiver
        Axes {
            aqm: 3,
            reverse: 2,
            fault: 1,
            churn: 2,
            receiver: 2,
        },
        // outage: parked packets survive a link blackout and re-park
        Axes {
            aqm: 1,
            reverse: 1,
            fault: 2,
            churn: 1,
            receiver: 1,
        },
        // corruption + sfqCoDel: mid-chain frees from two drop sources
        Axes {
            aqm: 3,
            reverse: 0,
            fault: 3,
            churn: 2,
            receiver: 1,
        },
    ];
    for a in corners {
        let net = build_net(a);
        let heap = digest_of(&net, SchedulerKind::Heap, 7);
        let cal = digest_of(&net, SchedulerKind::Calendar, 7);
        assert!(heap.1 > 3_000, "corner {a:?} too small: {} events", heap.1);
        assert_eq!(heap.0, cal.0, "digest diverged at corner {a:?}");
        assert_eq!(heap.2, cal.2, "ack digests diverged at corner {a:?}");
    }
}
