//! End-to-end determinism across scheduler backends.
//!
//! A fixed-seed simulation must be bit-identical whether events dispatch
//! through the binary heap or the bucketed calendar queue: the same
//! event sequence (order-sensitive dispatch digest), the same per-flow
//! ack sequences (transport ack digests), the same delivery totals, and
//! the same queue-occupancy trace. This is the contract that lets the
//! fast backend replace the reference one without perturbing a single
//! optimizer comparison.

use netsim::prelude::*;
use netsim::sim::RunOutcome;
use netsim::transport::AckInfo;

/// NewReno-ish AIMD with pacing, aggressive enough to overflow a finite
/// buffer: exercises queueing, drops, retransmissions, and RTO timers.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

struct Run {
    outcome: RunOutcome,
    ack_digests: Vec<Option<u64>>,
    trace: Vec<(SimTime, usize, u64, u64)>,
}

/// One fixed-seed dumbbell run on the chosen backend, with every
/// determinism probe enabled.
fn run_dumbbell(kind: SchedulerKind, seed: u64) -> Run {
    // Finite buffer + ON/OFF workload: drops, timeouts, epoch churn.
    let net = dumbbell(
        3,
        8e6,
        0.120,
        QueueSpec::DropTail {
            capacity_bytes: Some(18_000),
        },
        WorkloadSpec::on_off_1s(),
    );
    let protocols: Vec<Box<dyn CongestionControl>> =
        (0..3).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
    let mut sim = Simulation::with_scheduler(&net, protocols, seed, kind);
    assert_eq!(sim.scheduler_kind(), kind);
    sim.enable_event_digest();
    sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(50));
    let outcome = sim.run(SimDuration::from_secs(20));
    let ack_digests = sim.ack_digests();
    let trace = sim
        .take_trace()
        .unwrap()
        .series_for(LinkId(0))
        .unwrap()
        .iter()
        .map(|s| (s.at, s.packets, s.bytes, s.cum_drops))
        .collect();
    Run {
        outcome,
        ack_digests,
        trace,
    }
}

fn assert_bit_identical(a: &Run, b: &Run) {
    assert_eq!(
        a.outcome.event_digest, b.outcome.event_digest,
        "dispatched event sequences diverged"
    );
    assert!(
        a.ack_digests.iter().all(|d| d.is_some()),
        "ack digests must be enabled for this comparison to mean anything"
    );
    assert_eq!(
        a.ack_digests, b.ack_digests,
        "per-flow ack sequences diverged"
    );
    assert_eq!(a.outcome.events_processed, b.outcome.events_processed);
    assert_eq!(a.outcome.link_bytes, b.outcome.link_bytes);
    assert_eq!(a.trace, b.trace, "queue-occupancy traces diverged");
    for (fa, fb) in a.outcome.flows.iter().zip(&b.outcome.flows) {
        assert_eq!(fa.bytes_delivered, fb.bytes_delivered);
        assert_eq!(fa.transmissions, fb.transmissions);
        assert_eq!(fa.retransmissions, fb.retransmissions);
        assert_eq!(fa.forward_drops, fb.forward_drops);
        assert_eq!(fa.timeouts, fb.timeouts);
        assert_eq!(fa.throughput_bps.to_bits(), fb.throughput_bps.to_bits());
        assert_eq!(
            fa.avg_queueing_delay_s.to_bits(),
            fb.avg_queueing_delay_s.to_bits()
        );
    }
}

#[test]
fn heap_and_calendar_run_bit_identical_dumbbells() {
    for seed in [1u64, 42, 0xDEADBEEF] {
        let heap = run_dumbbell(SchedulerKind::Heap, seed);
        let cal = run_dumbbell(SchedulerKind::Calendar, seed);
        assert!(
            heap.outcome.events_processed > 10_000,
            "run too small to be meaningful: {} events",
            heap.outcome.events_processed
        );
        assert!(
            heap.outcome.flows.iter().any(|f| f.retransmissions > 0),
            "scenario must exercise the loss/RTO machinery"
        );
        assert_bit_identical(&heap, &cal);
    }
}

#[test]
fn same_backend_reruns_are_bit_identical() {
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let a = run_dumbbell(kind, 7);
        let b = run_dumbbell(kind, 7);
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the digest machinery trivially returning a constant.
    let a = run_dumbbell(SchedulerKind::Calendar, 1);
    let b = run_dumbbell(SchedulerKind::Calendar, 2);
    assert_ne!(a.outcome.event_digest, b.outcome.event_digest);
}
