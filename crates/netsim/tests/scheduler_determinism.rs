//! End-to-end determinism across scheduler backends.
//!
//! A fixed-seed simulation must be bit-identical whether events dispatch
//! through the binary heap or the bucketed calendar queue: the same
//! event sequence (order-sensitive dispatch digest), the same per-flow
//! ack sequences (transport ack digests), the same delivery totals, and
//! the same queue-occupancy trace. This is the contract that lets the
//! fast backend replace the reference one without perturbing a single
//! optimizer comparison.

use netsim::prelude::*;
use netsim::sim::RunOutcome;
use netsim::transport::AckInfo;
use proptest::prelude::*;

/// NewReno-ish AIMD with pacing, aggressive enough to overflow a finite
/// buffer: exercises queueing, drops, retransmissions, and RTO timers.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

struct Run {
    outcome: RunOutcome,
    ack_digests: Vec<Option<u64>>,
    trace: Vec<(SimTime, usize, u64, u64)>,
}

/// One fixed-seed dumbbell run on the chosen backend, with every
/// determinism probe enabled.
fn run_dumbbell(kind: SchedulerKind, seed: u64) -> Run {
    // Finite buffer + ON/OFF workload: drops, timeouts, epoch churn.
    let net = dumbbell(
        3,
        8e6,
        0.120,
        QueueSpec::DropTail {
            capacity_bytes: Some(18_000),
        },
        WorkloadSpec::on_off_1s(),
    );
    let protocols: Vec<Box<dyn CongestionControl>> =
        (0..3).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
    let mut sim = Simulation::with_scheduler(&net, protocols, seed, kind);
    assert_eq!(sim.scheduler_kind(), kind);
    sim.enable_event_digest();
    sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(50));
    let outcome = sim.run(SimDuration::from_secs(20));
    let ack_digests = sim.ack_digests();
    let trace = sim
        .take_trace()
        .unwrap()
        .series_for(LinkId(0))
        .unwrap()
        .iter()
        .map(|s| (s.at, s.packets, s.bytes, s.cum_drops))
        .collect();
    Run {
        outcome,
        ack_digests,
        trace,
    }
}

fn assert_bit_identical(a: &Run, b: &Run) {
    assert_eq!(
        a.outcome.event_digest, b.outcome.event_digest,
        "dispatched event sequences diverged"
    );
    assert!(
        a.ack_digests.iter().all(|d| d.is_some()),
        "ack digests must be enabled for this comparison to mean anything"
    );
    assert_eq!(
        a.ack_digests, b.ack_digests,
        "per-flow ack sequences diverged"
    );
    assert_eq!(a.outcome.events_processed, b.outcome.events_processed);
    assert_eq!(a.outcome.link_bytes, b.outcome.link_bytes);
    assert_eq!(a.trace, b.trace, "queue-occupancy traces diverged");
    for (fa, fb) in a.outcome.flows.iter().zip(&b.outcome.flows) {
        assert_eq!(fa.bytes_delivered, fb.bytes_delivered);
        assert_eq!(fa.transmissions, fb.transmissions);
        assert_eq!(fa.retransmissions, fb.retransmissions);
        assert_eq!(fa.drops.forward, fb.drops.forward);
        assert_eq!(fa.drops.ack, fb.drops.ack);
        assert_eq!(fa.drops.fault, fb.drops.fault);
        assert_eq!(fa.timeouts, fb.timeouts);
        assert_eq!(fa.throughput_bps.to_bits(), fb.throughput_bps.to_bits());
        assert_eq!(
            fa.avg_queueing_delay_s.to_bits(),
            fb.avg_queueing_delay_s.to_bits()
        );
    }
}

#[test]
fn heap_and_calendar_run_bit_identical_dumbbells() {
    for seed in [1u64, 42, 0xDEADBEEF] {
        let heap = run_dumbbell(SchedulerKind::Heap, seed);
        let cal = run_dumbbell(SchedulerKind::Calendar, seed);
        assert!(
            heap.outcome.events_processed > 10_000,
            "run too small to be meaningful: {} events",
            heap.outcome.events_processed
        );
        assert!(
            heap.outcome.flows.iter().any(|f| f.retransmissions > 0),
            "scenario must exercise the loss/RTO machinery"
        );
        assert_bit_identical(&heap, &cal);
    }
}

#[test]
fn same_backend_reruns_are_bit_identical() {
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let a = run_dumbbell(kind, 7);
        let b = run_dumbbell(kind, 7);
        assert_bit_identical(&a, &b);
    }
}

#[test]
fn different_seeds_actually_differ() {
    // Guards against the digest machinery trivially returning a constant.
    let a = run_dumbbell(SchedulerKind::Calendar, 1);
    let b = run_dumbbell(SchedulerKind::Calendar, 2);
    assert_ne!(a.outcome.event_digest, b.outcome.event_digest);
}

// ---------------------------------------------------------------------------
// Scenario-diversity axes: AQM gateways, asymmetric ACK paths, flow churn.
// ---------------------------------------------------------------------------

/// The AQM disciplines a sweep cell can select, as concrete specs for a
/// 8 Mbps / 120 ms dumbbell with a ~7.5-BDP buffer.
fn aqm_queue(which: u8) -> QueueSpec {
    match which % 4 {
        0 => QueueSpec::DropTail {
            capacity_bytes: Some(90_000),
        },
        1 => QueueSpec::red_default(8e6, 0.120, 5.0),
        2 => QueueSpec::codel_default(8e6, 0.120, 5.0),
        _ => QueueSpec::sfq_codel_default(8e6, 0.120, 5.0),
    }
}

/// A parking-lot scenario exercising every new axis at once: an AQM
/// discipline per bottleneck, an asymmetric reverse path (per-flow
/// channels, or one shared reverse link per bottleneck with its own AQM
/// queue), and a churning flow — blocked or unblocked M/G/∞ — next to
/// ON/OFF cross-traffic.
fn diversity_net(
    aqm0: u8,
    aqm1: u8,
    slowdown: f64,
    churn_rate: f64,
    shared_reverse: bool,
    mginf: bool,
) -> NetworkConfig {
    // Always-on cross-traffic so the AIMD windows grow enough to pressure
    // the AQMs (ON/OFF resets would keep queues empty); flow 0 churns.
    let base = parking_lot(
        8e6,
        8e6,
        0.060,
        aqm_queue(aqm0),
        aqm_queue(aqm1),
        WorkloadSpec::AlwaysOn,
    );
    let mut net = if shared_reverse {
        // Shared uplinks with a deliberately tight drop-tail ACK buffer
        // so reverse-queue drops are part of the equivalence check.
        base.with_shared_reverse(slowdown, |_, _| QueueSpec::DropTail {
            capacity_bytes: Some(4_000),
        })
    } else {
        base.with_reverse_slowdown(slowdown)
    };
    net.flows[0].workload = if mginf {
        WorkloadSpec::churn_mginf(churn_rate, 0.8)
    } else {
        WorkloadSpec::churn(churn_rate, 0.8)
    };
    net.validate().expect("diversity scenario must be valid");
    net
}

fn run_diversity(kind: SchedulerKind, seed: u64, net: &NetworkConfig) -> Run {
    let protocols: Vec<Box<dyn CongestionControl>> =
        (0..3).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
    let mut sim = Simulation::with_scheduler(net, protocols, seed, kind);
    sim.enable_event_digest();
    sim.enable_trace(vec![LinkId(0), LinkId(1)], SimDuration::from_millis(50));
    let outcome = sim.run(SimDuration::from_secs(12));
    let ack_digests = sim.ack_digests();
    let trace = sim
        .take_trace()
        .unwrap()
        .series_for(LinkId(0))
        .unwrap()
        .iter()
        .map(|s| (s.at, s.packets, s.bytes, s.cum_drops))
        .collect();
    Run {
        outcome,
        ack_digests,
        trace,
    }
}

#[test]
fn red_codel_asymmetric_churn_runs_bit_identical_across_backends() {
    // RED and CoDel at the two bottlenecks, a 1/20x reverse path, churn.
    let net = diversity_net(1, 2, 20.0, 1.5, false, false);
    for seed in [3u64, 99] {
        let heap = run_diversity(SchedulerKind::Heap, seed, &net);
        let cal = run_diversity(SchedulerKind::Calendar, seed, &net);
        assert!(
            heap.outcome.events_processed > 5_000,
            "run too small: {} events",
            heap.outcome.events_processed
        );
        assert_bit_identical(&heap, &cal);
    }
    // The AQMs must actually be in play for the equivalence to mean much.
    // (Probed on the symmetric variant: a 1/20x reverse path ACK-throttles
    // the senders so hard the forward queues never fill.)
    let probe = run_diversity(
        SchedulerKind::Calendar,
        3,
        &diversity_net(1, 2, 1.0, 1.5, false, false),
    );
    assert!(
        probe.outcome.link_queues.iter().any(|q| q.dropped > 0),
        "scenario should exercise AQM drops: {:?}",
        probe.outcome.link_queues
    );
}

#[test]
fn shared_uplink_mginf_runs_bit_identical_across_backends() {
    // The PR-5 axes together: shared reverse links (tight ACK buffers,
    // reverse drops) and an unblocked M/G/∞ churn slot. The new
    // reverse-link event chain and the FlowArrival/FlowDeparture timers
    // must dispatch identically on both scheduler backends.
    let net = diversity_net(1, 2, 20.0, 1.5, true, true);
    for seed in [3u64, 99] {
        let heap = run_diversity(SchedulerKind::Heap, seed, &net);
        let cal = run_diversity(SchedulerKind::Calendar, seed, &net);
        assert!(
            heap.outcome.events_processed > 5_000,
            "run too small: {} events",
            heap.outcome.events_processed
        );
        assert_bit_identical(&heap, &cal);
    }
    // The shared ACK buffers must actually drop for the arm to bite: at
    // a 1/100x uplink the shared ACK service rate (~250/s) is far below
    // the bottleneck delivery rate, so the tight buffer overflows.
    let probe = run_diversity(
        SchedulerKind::Calendar,
        3,
        &diversity_net(0, 0, 100.0, 1.5, true, true),
    );
    assert!(
        probe.outcome.flows.iter().any(|f| f.drops.ack > 0),
        "scenario should exercise shared reverse-queue drops"
    );
}

// ---------------------------------------------------------------------------
// Fault-injection axes: bursty loss, outages, corruption.
// ---------------------------------------------------------------------------

/// The fault modes a sweep cell can select, scaled by `rate` in [0, 1].
fn fault_mode(which: u8, rate: f64) -> FaultSpec {
    match which % 4 {
        0 => FaultSpec::GilbertElliott {
            loss_good: rate * 0.01,
            loss_bad: rate,
            good_to_bad: 0.02,
            bad_to_good: 0.1,
        },
        1 => FaultSpec::outage_scheduled(2.0, 0.3 + rate, true),
        2 => FaultSpec::outage_markov(2.0, 0.3 + rate, false),
        _ => FaultSpec::Corruption { prob: rate * 0.2 },
    }
}

/// Dumbbell with a fault process on the bottleneck; finite buffer so
/// queue drops and fault drops coexist in the same run.
fn fault_net(which: u8, rate: f64) -> NetworkConfig {
    let mut net = dumbbell(
        3,
        8e6,
        0.120,
        QueueSpec::DropTail {
            capacity_bytes: Some(18_000),
        },
        WorkloadSpec::AlwaysOn,
    );
    net.links[0].fault = Some(fault_mode(which, rate));
    net.validate().expect("fault scenario must be valid");
    net
}

/// Like [`run_diversity`] but tracing only the single bottleneck link.
fn run_fault(kind: SchedulerKind, seed: u64, net: &NetworkConfig) -> Run {
    let protocols: Vec<Box<dyn CongestionControl>> =
        (0..3).map(|_| Box::new(Aimd { w: 2.0 }) as _).collect();
    let mut sim = Simulation::with_scheduler(net, protocols, seed, kind);
    sim.enable_event_digest();
    sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(50));
    let outcome = sim.run(SimDuration::from_secs(12));
    let ack_digests = sim.ack_digests();
    let trace = sim
        .take_trace()
        .unwrap()
        .series_for(LinkId(0))
        .unwrap()
        .iter()
        .map(|s| (s.at, s.packets, s.bytes, s.cum_drops))
        .collect();
    Run {
        outcome,
        ack_digests,
        trace,
    }
}

#[test]
fn every_fault_mode_runs_bit_identical_across_backends() {
    for which in 0u8..4 {
        let net = fault_net(which, 0.5);
        let heap = run_fault(SchedulerKind::Heap, 5, &net);
        let cal = run_fault(SchedulerKind::Calendar, 5, &net);
        assert!(
            heap.outcome.flows.iter().any(|f| f.drops.fault > 0)
                || matches!(net.links[0].fault, Some(FaultSpec::Outage { .. })),
            "fault mode {which} must actually destroy packets"
        );
        assert_bit_identical(&heap, &cal);
    }
    // The loss modes must be exercised for the equivalence to mean much.
    let probe = run_fault(SchedulerKind::Calendar, 5, &fault_net(0, 0.5));
    assert!(
        probe.outcome.flows.iter().any(|f| f.drops.fault > 0),
        "GE scenario should produce fault drops"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any combination of AQM disciplines, reverse-path slowdown (per-flow
    /// or shared reverse links) and churn rate (blocked or M/G/∞)
    /// dispatches the identical event sequence on both scheduler backends
    /// — the contract that lets every scenario axis run on the fast
    /// backend without perturbing a figure.
    #[test]
    fn scenario_axes_never_break_backend_equivalence(
        aqm0 in 0u8..4,
        aqm1 in 0u8..4,
        slowdown in prop_oneof![Just(1.0), Just(8.0), Just(40.0)],
        churn_rate in prop_oneof![Just(0.3), Just(2.0)],
        shared_reverse in prop_oneof![Just(false), Just(true)],
        mginf in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1_000,
    ) {
        let net = diversity_net(aqm0, aqm1, slowdown, churn_rate, shared_reverse, mginf);
        let heap = run_diversity(SchedulerKind::Heap, seed, &net);
        let cal = run_diversity(SchedulerKind::Calendar, seed, &net);
        assert_bit_identical(&heap, &cal);
    }

    /// Every fault mode (Gilbert–Elliott, scheduled/Markov outage,
    /// corruption) at any rate dispatches the identical event sequence
    /// on both scheduler backends — faults draw from a per-link RNG
    /// child, never from dispatch order.
    #[test]
    fn fault_axes_never_break_backend_equivalence(
        which in 0u8..4,
        rate in prop_oneof![Just(0.05), Just(0.3), Just(0.9)],
        seed in 0u64..1_000,
    ) {
        let net = fault_net(which, rate);
        let heap = run_fault(SchedulerKind::Heap, seed, &net);
        let cal = run_fault(SchedulerKind::Calendar, seed, &net);
        assert_bit_identical(&heap, &cal);
    }
}
