//! End-to-end contracts of the receiver-policy subsystem.
//!
//! The endpoint redesign moved ACK synthesis behind
//! [`netsim::topology::ReceiverSpec`]. Two claims must hold across the
//! whole scenario space, not just on a bare dumbbell:
//!
//! 1. **Default transparency.** A flow with an explicit default spec
//!    (`Some(ReceiverSpec::default())`) dispatches the *bit-identical*
//!    event sequence as a flow with no spec at all (`None`), whatever
//!    AQM discipline, churn process, fault mode, or reverse-path tier is
//!    active, on both scheduler backends. The policy machinery may not
//!    perturb a single committed figure.
//! 2. **Backend equivalence.** When a policy *is* active (delayed ACKs,
//!    flush timers, rwnd advertisements), the new `AckTimer` event chain
//!    still dispatches identically on the heap and calendar schedulers.

use netsim::prelude::*;
use netsim::sim::RunOutcome;
use netsim::transport::AckInfo;
use proptest::prelude::*;

/// AIMD with enough aggression to overflow finite buffers: drops,
/// retransmissions and RTO timers are all in play.
struct Aimd {
    w: f64,
}

impl CongestionControl for Aimd {
    fn reset(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {
        self.w += 4.0 / self.w.max(1.0);
    }
    fn on_loss(&mut self, _now: SimTime) {
        self.w = (self.w / 2.0).max(2.0);
    }
    fn on_timeout(&mut self, _now: SimTime) {
        self.w = 2.0;
    }
    fn window(&self) -> f64 {
        self.w
    }
    fn intersend(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn name(&self) -> String {
        "aimd-test".into()
    }
}

/// The AQM disciplines an axis can select (8 Mbps / 120 ms bottleneck).
fn aqm_queue(which: u8) -> QueueSpec {
    match which % 4 {
        0 => QueueSpec::DropTail {
            capacity_bytes: Some(18_000),
        },
        1 => QueueSpec::red_default(8e6, 0.120, 5.0),
        2 => QueueSpec::codel_default(8e6, 0.120, 5.0),
        _ => QueueSpec::sfq_codel_default(8e6, 0.120, 5.0),
    }
}

/// A dumbbell exercising the orthogonal scenario axes the policy has to
/// be transparent across: AQM, reverse-path tier (arithmetic, private, or
/// shared with a tight ACK buffer), fault mode, and flow churn.
fn axis_net(aqm: u8, reverse: u8, fault: u8, mginf: bool) -> NetworkConfig {
    let mut net = dumbbell(3, 8e6, 0.120, aqm_queue(aqm), WorkloadSpec::AlwaysOn);
    net = match reverse % 3 {
        0 => net, // paper's uncongested reverse arithmetic
        1 => net.with_reverse_slowdown(20.0),
        _ => net.with_shared_reverse(20.0, |_, _| QueueSpec::DropTail {
            capacity_bytes: Some(4_000),
        }),
    };
    match fault % 3 {
        0 => {}
        1 => {
            net.links[0].fault = Some(FaultSpec::GilbertElliott {
                loss_good: 0.005,
                loss_bad: 0.5,
                good_to_bad: 0.02,
                bad_to_good: 0.1,
            });
        }
        _ => {
            net.links[0].fault = Some(FaultSpec::outage_scheduled(2.0, 0.5, true));
        }
    }
    net.flows[0].workload = if mginf {
        WorkloadSpec::churn_mginf(1.5, 0.8)
    } else {
        WorkloadSpec::churn(1.5, 0.8)
    };
    net.validate().expect("axis scenario must be valid");
    net
}

/// Copy of `net` with every flow carrying an explicit receiver spec.
fn with_spec(net: &NetworkConfig, spec: ReceiverSpec) -> NetworkConfig {
    let mut net = net.clone();
    for f in &mut net.flows {
        f.receiver = Some(spec.clone());
    }
    net
}

struct Run {
    outcome: RunOutcome,
    ack_digests: Vec<Option<u64>>,
}

fn run(net: &NetworkConfig, kind: SchedulerKind, seed: u64) -> Run {
    let protocols: Vec<Box<dyn CongestionControl>> = (0..net.flows.len())
        .map(|_| Box::new(Aimd { w: 2.0 }) as _)
        .collect();
    let mut sim = Simulation::with_scheduler(net, protocols, seed, kind);
    sim.enable_event_digest();
    let outcome = sim.run(SimDuration::from_secs(10));
    let ack_digests = sim.ack_digests();
    Run {
        outcome,
        ack_digests,
    }
}

fn assert_bit_identical(a: &Run, b: &Run, what: &str) {
    assert_eq!(
        a.outcome.event_digest, b.outcome.event_digest,
        "{what}: dispatched event sequences diverged"
    );
    assert_eq!(
        a.ack_digests, b.ack_digests,
        "{what}: per-flow ack sequences diverged"
    );
    assert_eq!(a.outcome.events_processed, b.outcome.events_processed);
    assert_eq!(a.outcome.link_bytes, b.outcome.link_bytes);
    for (fa, fb) in a.outcome.flows.iter().zip(&b.outcome.flows) {
        assert_eq!(fa.bytes_delivered, fb.bytes_delivered);
        assert_eq!(fa.retransmissions, fb.retransmissions);
        assert_eq!(fa.timeouts, fb.timeouts);
        assert_eq!(fa.throughput_bps.to_bits(), fb.throughput_bps.to_bits());
    }
}

#[test]
fn explicit_default_spec_is_transparent_on_the_calibration_dumbbell() {
    let net = axis_net(0, 0, 0, false);
    let with_default = with_spec(&net, ReceiverSpec::default());
    for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
        let bare = run(&net, kind, 7);
        let spec = run(&with_default, kind, 7);
        assert!(bare.outcome.events_processed > 5_000, "run too small");
        assert_bit_identical(&bare, &spec, "default vs none");
    }
}

#[test]
fn delayed_policy_dispatches_identically_on_both_backends() {
    // The AckTimer chain under the nastiest combination: shared reverse
    // links with a tight ACK buffer, an outage fault, M/G/∞ churn.
    let net = with_spec(&axis_net(2, 2, 2, true), ReceiverSpec::delayed(4, 0.040));
    for seed in [3u64, 99] {
        let heap = run(&net, SchedulerKind::Heap, seed);
        let cal = run(&net, SchedulerKind::Calendar, seed);
        assert_bit_identical(&heap, &cal, "heap vs calendar");
    }
}

#[test]
fn rwnd_policy_dispatches_identically_on_both_backends() {
    let net = with_spec(
        &axis_net(1, 1, 1, false),
        ReceiverSpec::delayed(2, 0.040).with_rwnd(16),
    );
    let heap = run(&net, SchedulerKind::Heap, 11);
    let cal = run(&net, SchedulerKind::Calendar, 11);
    assert_bit_identical(&heap, &cal, "heap vs calendar");
    // The advertisement must actually bite for the equivalence to mean
    // much: a 16-packet cap on a ~7-BDP pipe keeps AIMD from overflowing
    // the queue, so the capped run delivers fewer bytes than an uncapped
    // one at the same seed.
    let uncapped = run(&axis_net(1, 1, 1, false), SchedulerKind::Calendar, 11);
    assert_ne!(
        cal.outcome.event_digest, uncapped.outcome.event_digest,
        "rwnd policy should change the event stream"
    );
}

#[test]
fn delayed_policy_actually_thins_the_ack_stream() {
    let net = axis_net(0, 0, 0, false);
    let delayed = with_spec(&net, ReceiverSpec::delayed(8, 0.200));
    let base = run(&net, SchedulerKind::Calendar, 5);
    let thin = run(&delayed, SchedulerKind::Calendar, 5);
    assert!(
        thin.outcome.events_processed < base.outcome.events_processed,
        "coalescing 8:1 must shrink the event stream: {} vs {}",
        thin.outcome.events_processed,
        base.outcome.events_processed
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Default transparency across the whole axis cross-product: an
    /// explicit default spec and no spec dispatch the identical event
    /// sequence on both scheduler backends, whatever AQM, reverse tier,
    /// fault mode, or churn process is active.
    #[test]
    fn default_spec_never_perturbs_any_scenario_axis(
        aqm in 0u8..4,
        reverse in 0u8..3,
        fault in 0u8..3,
        mginf in prop_oneof![Just(false), Just(true)],
        seed in 0u64..1_000,
    ) {
        let net = axis_net(aqm, reverse, fault, mginf);
        let with_default = with_spec(&net, ReceiverSpec::default());
        for kind in [SchedulerKind::Heap, SchedulerKind::Calendar] {
            let bare = run(&net, kind, seed);
            let spec = run(&with_default, kind, seed);
            assert_bit_identical(&bare, &spec, "default vs none");
        }
    }

    /// Active policies never break scheduler-backend equivalence: the
    /// AckTimer event and batch-ACK bookkeeping order identically on the
    /// heap and calendar queues across the same axis cross-product.
    #[test]
    fn active_policies_never_break_backend_equivalence(
        aqm in 0u8..4,
        reverse in 0u8..3,
        fault in 0u8..3,
        ack_every in prop_oneof![Just(2u32), Just(4), Just(16)],
        seed in 0u64..1_000,
    ) {
        let net = with_spec(
            &axis_net(aqm, reverse, fault, false),
            ReceiverSpec::delayed(ack_every, 0.040),
        );
        let heap = run(&net, SchedulerKind::Heap, seed);
        let cal = run(&net, SchedulerKind::Calendar, seed);
        assert_bit_identical(&heap, &cal, "heap vs calendar");
    }
}
