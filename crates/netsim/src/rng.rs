//! Deterministic randomness for the simulator.
//!
//! Every stochastic component (workload ON/OFF draws, sfqCoDel hash salt,
//! per-link fault processes — Gilbert–Elliott loss, Markov outages,
//! corruption — and scenario sampling) pulls from a [`SimRng`] derived
//! from a single root
//! seed, so a simulation is a pure function of `(config, seed)`. The
//! optimizer exploits this for common-random-number comparisons between
//! candidate protocols.

use crate::time::SimDuration;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Distribution, Exp};

/// A deterministic random number generator.
///
/// Thin wrapper over `StdRng` adding the distribution draws the simulator
/// needs (exponential holding times) and a stable `fork` operation for
/// giving each component an independent stream.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// A stream seeded directly from `seed`.
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream. The child is a pure function of
    /// `(self's seed history, salt)`, so components get stable streams no
    /// matter how many draws other components make.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.inner.gen::<u64>() ^ splitmix64(salt);
        SimRng::from_seed(s)
    }

    /// Exponentially distributed duration with the given mean.
    ///
    /// A zero mean returns zero (used to express "always on" workloads with
    /// a degenerate OFF period).
    pub fn exp_duration(&mut self, mean: SimDuration) -> SimDuration {
        if mean.is_zero() {
            return SimDuration::ZERO;
        }
        let lambda = 1.0 / mean.as_secs_f64();
        let exp = Exp::new(lambda).expect("positive rate");
        SimDuration::from_secs_f64(exp.sample(&mut self.inner))
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Log-uniform f64 in `[lo, hi)`: uniform in the exponent, as the paper
    /// samples link speeds ("sampled 100 link speeds logarithmically").
    pub fn log_uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo > 0.0 && hi >= lo, "log_uniform requires 0 < lo <= hi");
        if lo == hi {
            return lo;
        }
        let (llo, lhi) = (lo.ln(), hi.ln());
        self.uniform(llo, lhi).exp()
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn uniform_u32(&mut self, lo: u32, hi: u32) -> u32 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..=hi)
    }

    /// Uniform draw over all of `u64`.
    pub fn gen_u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

/// SplitMix64 finalizer: turns correlated salts into well-spread seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::from_seed(42);
        let mut b = SimRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.gen_u64(), b.gen_u64());
        }
    }

    #[test]
    fn forked_streams_differ_but_are_stable() {
        let mut root1 = SimRng::from_seed(7);
        let mut root2 = SimRng::from_seed(7);
        let mut c1 = root1.fork(1);
        let mut c2 = root1.fork(2);
        let mut c1_again = root2.fork(1);
        let mut c2_again = root2.fork(2);
        let (x1, x2) = (c1.gen_u64(), c2.gen_u64());
        assert_ne!(x1, x2, "different salts give different streams");
        assert_eq!(x1, c1_again.gen_u64());
        assert_eq!(x2, c2_again.gen_u64());
    }

    #[test]
    fn exp_duration_mean_is_close() {
        let mut rng = SimRng::from_seed(1);
        let mean = SimDuration::from_secs(1);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| rng.exp_duration(mean).as_secs_f64()).sum();
        let avg = total / n as f64;
        assert!(
            (avg - 1.0).abs() < 0.05,
            "sample mean {avg} too far from 1.0"
        );
    }

    #[test]
    fn exp_duration_zero_mean() {
        let mut rng = SimRng::from_seed(1);
        assert_eq!(rng.exp_duration(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn log_uniform_within_bounds_and_log_spread() {
        let mut rng = SimRng::from_seed(3);
        let mut below_geomean = 0;
        let n = 10_000;
        for _ in 0..n {
            let x = rng.log_uniform(1.0, 1000.0);
            assert!((1.0..1000.0).contains(&x));
            // geometric mean of the range is ~31.6; half the draws should sit below it
            if x < 31.6227766 {
                below_geomean += 1;
            }
        }
        let frac = below_geomean as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.03, "log-uniform median off: {frac}");
    }

    #[test]
    fn degenerate_ranges() {
        let mut rng = SimRng::from_seed(3);
        assert_eq!(rng.uniform(5.0, 5.0), 5.0);
        assert_eq!(rng.log_uniform(8.0, 8.0), 8.0);
        assert_eq!(rng.uniform_u32(9, 9), 9);
    }
}
