//! The sender-side reliability layer and the congestion-control plug-in
//! interface.
//!
//! The paper separates *what to send when* (reliability: sequencing,
//! retransmission, timeouts — common to every protocol) from *how much and
//! how fast* (congestion control: the window/pacing decisions that differ
//! between Tao, NewReno and Cubic). [`Transport`] implements the former;
//! the [`CongestionControl`] trait is the plug-in point for the latter.
//!
//! Loss detection follows SACK-style reordering: a packet is declared lost
//! once three transmissions sent after it have been acknowledged. RTO uses
//! the standard `srtt + 4·rttvar` estimator with exponential backoff.

use crate::packet::{Ack, FlowId, Packet};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Ordered map over near-dense, window-bounded integer keys (sequence
/// numbers, transmission indices), backed by a sliding `VecDeque` of
/// slots instead of a search tree. All hot operations — insert at the
/// frontier, remove by key, first-key lookup — are O(1) amortized; this
/// runs several times per packet, where `BTreeMap` paid a tree descent
/// and node allocations.
#[derive(Debug, Default)]
struct WindowMap<T> {
    /// Key of `slots[0]`.
    base: u64,
    slots: VecDeque<Option<T>>,
    len: usize,
}

impl<T> WindowMap<T> {
    fn new() -> Self {
        WindowMap {
            base: 0,
            slots: VecDeque::new(),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
        self.base = 0;
    }

    /// Grow the backing ring to hold `cap` slots without reallocating
    /// (no-op once capacity is there — `clear` keeps it).
    fn reserve(&mut self, cap: usize) {
        if self.slots.capacity() < cap {
            let extra = cap - self.slots.len();
            self.slots.reserve(extra);
        }
    }

    fn insert(&mut self, key: u64, value: T) {
        if self.slots.is_empty() {
            self.base = key;
        } else if key < self.base {
            // Retransmissions can reuse a sequence below the trimmed
            // front; re-expand (bounded by the reordering window).
            for _ in key..self.base {
                self.slots.push_front(None);
            }
            self.base = key;
        }
        let idx = (key - self.base) as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        debug_assert!(self.slots[idx].is_none(), "duplicate key {key}");
        self.slots[idx] = Some(value);
        self.len += 1;
    }

    fn get(&self, key: u64) -> Option<&T> {
        if key < self.base {
            return None;
        }
        self.slots
            .get((key - self.base) as usize)
            .and_then(|s| s.as_ref())
    }

    fn remove(&mut self, key: u64) -> Option<T> {
        if key < self.base {
            return None;
        }
        let idx = (key - self.base) as usize;
        let taken = self.slots.get_mut(idx)?.take();
        if taken.is_some() {
            self.len -= 1;
            self.trim_front();
        }
        taken
    }

    /// Drop leading empty slots so `first` stays O(1).
    fn trim_front(&mut self) {
        while matches!(self.slots.front(), Some(None)) {
            self.slots.pop_front();
            self.base += 1;
        }
        if self.slots.is_empty() {
            self.base = 0;
        }
    }

    /// Smallest key and its value.
    fn first(&self) -> Option<(u64, &T)> {
        // trim_front keeps slot 0 occupied whenever the map is nonempty.
        self.slots
            .front()
            .and_then(|s| s.as_ref())
            .map(|v| (self.base, v))
    }

    /// Remove and return all entries with `key <= cutoff`, ascending.
    fn drain_upto(&mut self, cutoff: u64) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while let Some(front) = self.slots.front_mut() {
            if self.base > cutoff {
                break;
            }
            if let Some(v) = front.take() {
                self.len -= 1;
                out.push((self.base, v));
            }
            self.slots.pop_front();
            self.base += 1;
        }
        self.trim_front();
        out
    }

    /// Iterate entries in ascending key order.
    fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (self.base + i as u64, v)))
    }
}

/// Packets sent after a given packet that must be acked before that packet
/// is declared lost (the classic dupack threshold).
pub const REORDER_THRESHOLD: u64 = 3;

/// Lower bound on the retransmission timer.
pub const MIN_RTO: SimDuration = SimDuration::from_millis(200);

/// Initial RTO before the first RTT sample (RFC 6298 uses 1 s).
pub const INITIAL_RTO: SimDuration = SimDuration::from_secs(1);

/// Upper bound on the backed-off RTO.
pub const MAX_RTO: SimDuration = SimDuration::from_secs(60);

/// Context passed to [`CongestionControl::on_ack`] alongside the ACK itself.
#[derive(Clone, Copy, Debug)]
pub struct AckInfo {
    /// RTT sample from the echoed sender timestamp (Karn-filtered: absent
    /// for acks of retransmissions).
    pub rtt: Option<SimDuration>,
    /// Smallest RTT observed so far this epoch.
    pub min_rtt: SimDuration,
    /// Packets still outstanding after this ack was processed.
    pub in_flight: usize,
    /// Receive-window advertisement carried on this ack, in packets
    /// (`None` when the receiver advertises nothing — the default).
    /// The transport already caps the effective window at
    /// `min(cwnd, rwnd)`; schemes may additionally clamp their own
    /// window so their internal state never runs ahead of what the
    /// receiver will accept.
    pub rwnd: Option<u32>,
}

/// A congestion-control algorithm: decides the window (cap on packets in
/// flight) and a minimum pacing interval between transmissions.
///
/// Implementations are event-driven, mirroring the paper's §3.5: the
/// reliability layer calls `on_ack` for every acknowledgment, `on_loss`
/// when the reordering detector declares a packet lost, and `on_timeout`
/// when the RTO fires.
pub trait CongestionControl: Send {
    /// Start of a new flow epoch (the workload turned ON): clear all state,
    /// as Remy's senders do between bursts.
    fn reset(&mut self, now: SimTime);

    /// An acknowledgment of the current epoch arrived.
    fn on_ack(&mut self, now: SimTime, ack: &Ack, info: &AckInfo);

    /// A packet was declared lost via reordering. May be called several
    /// times per window; implementations enforce their own once-per-RTT
    /// reaction if desired.
    fn on_loss(&mut self, now: SimTime);

    /// The retransmission timer expired with data outstanding.
    fn on_timeout(&mut self, now: SimTime);

    /// Current congestion window in packets. The transport sends while
    /// `in_flight < floor(window)`.
    fn window(&self) -> f64;

    /// Minimum interval between transmissions (τ in the paper's action
    /// triple). `SimDuration::ZERO` disables pacing.
    fn intersend(&self) -> SimDuration;

    /// Human-readable protocol name for figures and traces.
    fn name(&self) -> String;

    /// Downcast hook: protocols that expose post-run state (e.g. the Tao
    /// executor's whisker usage counts, which the optimizer reads back)
    /// override this to return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

#[derive(Clone, Copy, Debug)]
struct Outstanding {
    tx_index: u64,
    sent_at: SimTime,
}

/// Sender-side reliability state for one flow.
#[derive(Debug)]
pub struct Transport {
    flow: FlowId,
    epoch: u32,
    next_seq: u64,
    next_tx_index: u64,
    /// In-flight packets keyed by sequence number.
    outstanding: WindowMap<Outstanding>,
    /// In-flight packets keyed by transmission index (loss detector order).
    by_tx_index: WindowMap<u64>,
    /// Sequences awaiting retransmission.
    retx_queue: VecDeque<u64>,
    highest_acked_tx_index: Option<u64>,
    /// RTT estimation (RFC 6298).
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    min_rtt: Option<SimDuration>,
    /// Latest receive-window advertisement from the peer, in packets
    /// (`None` until an ack carries one; reset each epoch). The engine
    /// sends while `in_flight < min(floor(cwnd), peer_rwnd)`.
    peer_rwnd: Option<u32>,
    /// Exponential RTO backoff multiplier (resets on a valid ack).
    backoff: u32,
    /// Generation counter invalidating stale RTO events.
    rto_gen: u64,
    /// Expected steady-state window in packets (0 = no hint). Set once
    /// from the flow's bottleneck bandwidth-delay product; every
    /// [`start_epoch`](Self::start_epoch) pre-sizes the in-flight maps
    /// to it, so churn flows ramp their first window without a chain of
    /// doubling reallocations.
    window_hint: usize,
    /// Order-sensitive FNV-1a digest of every ack processed (valid or
    /// not), `None` until [`enable_ack_digest`](Self::enable_ack_digest).
    /// Opt-in like the engine's event digest: it is a test-only probe,
    /// and `on_ack` runs millions of times per training run.
    /// Cross-scheduler determinism tests compare this per flow: two
    /// runs with equal digests fed this transport the identical ack
    /// sequence.
    ack_digest: Option<u64>,
}

/// Result of processing one acknowledgment.
#[derive(Debug)]
pub struct AckOutcome {
    /// Whether the ack matched an outstanding packet of the current epoch.
    pub valid: bool,
    /// Derived RTT/progress facts when the ack was valid.
    pub info: Option<AckInfo>,
    /// Packets declared lost by the reordering detector (now queued for
    /// retransmission).
    pub newly_lost: Vec<u64>,
}

impl Transport {
    /// A fresh reliability layer for `flow` (epoch 0, nothing in flight).
    pub fn new(flow: FlowId) -> Self {
        Transport {
            flow,
            epoch: 0,
            next_seq: 0,
            next_tx_index: 0,
            outstanding: WindowMap::new(),
            by_tx_index: WindowMap::new(),
            retx_queue: VecDeque::new(),
            highest_acked_tx_index: None,
            srtt: None,
            rttvar: SimDuration::ZERO,
            min_rtt: None,
            peer_rwnd: None,
            backoff: 0,
            rto_gen: 0,
            window_hint: 0,
            ack_digest: None,
        }
    }

    /// Record the expected steady-state window (packets); subsequent
    /// epochs pre-size the in-flight maps to it. Zero disables.
    pub fn set_window_hint(&mut self, hint: usize) {
        self.window_hint = hint;
    }

    /// Current flow epoch (bumped on each workload ON transition).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Packets outstanding (sent, neither acked nor declared lost).
    pub fn in_flight(&self) -> usize {
        self.outstanding.len()
    }

    /// Whether any declared-lost packets await retransmission.
    pub fn has_retx_pending(&self) -> bool {
        !self.retx_queue.is_empty()
    }

    /// Smallest RTT observed so far this epoch.
    pub fn min_rtt(&self) -> Option<SimDuration> {
        self.min_rtt
    }

    /// Latest receive-window advertisement from the peer, in packets
    /// (`None` until an ack of the current epoch carried one).
    pub fn peer_rwnd(&self) -> Option<u32> {
        self.peer_rwnd
    }

    /// Current RTO timer generation (stale-timer detection).
    pub fn rto_gen(&self) -> u64 {
        self.rto_gen
    }

    /// Start digesting processed acks (determinism tests only).
    pub fn enable_ack_digest(&mut self) {
        self.ack_digest.get_or_insert(crate::event::FNV_OFFSET);
    }

    /// Running digest of the ack sequence this transport has processed
    /// (`None` unless [`enable_ack_digest`](Self::enable_ack_digest)).
    pub fn ack_digest(&self) -> Option<u64> {
        self.ack_digest
    }

    /// Begin a new epoch (workload turned ON): abandon all in-flight state.
    pub fn start_epoch(&mut self) -> u32 {
        self.epoch = self.epoch.wrapping_add(1);
        self.next_seq = 0;
        self.next_tx_index = 0;
        self.outstanding.clear();
        self.by_tx_index.clear();
        self.retx_queue.clear();
        self.highest_acked_tx_index = None;
        self.srtt = None;
        self.rttvar = SimDuration::ZERO;
        self.min_rtt = None;
        self.peer_rwnd = None;
        self.backoff = 0;
        self.rto_gen += 1;
        if self.window_hint > 0 {
            self.outstanding.reserve(self.window_hint);
            self.by_tx_index.reserve(self.window_hint);
        }
        self.epoch
    }

    /// Abandon in-flight state without starting a new epoch (workload
    /// turned OFF).
    pub fn abort(&mut self) {
        self.outstanding.clear();
        self.by_tx_index.clear();
        self.retx_queue.clear();
        self.rto_gen += 1;
    }

    /// Produce the next packet to transmit (retransmissions first), or
    /// `None` if sending must be limited by the window.
    pub fn produce(&mut self, now: SimTime, window: usize) -> Option<Packet> {
        if self.outstanding.len() >= window {
            return None;
        }
        let (seq, is_retx) = match self.retx_queue.pop_front() {
            Some(s) => (s, true),
            None => {
                let s = self.next_seq;
                self.next_seq += 1;
                (s, false)
            }
        };
        let tx_index = self.next_tx_index;
        self.next_tx_index += 1;
        self.outstanding.insert(
            seq,
            Outstanding {
                tx_index,
                sent_at: now,
            },
        );
        self.by_tx_index.insert(tx_index, seq);
        Some(Packet::data(
            self.flow, seq, self.epoch, now, tx_index, is_retx,
        ))
    }

    /// Process an acknowledgment: RTT estimation, removal from the
    /// in-flight set, and reordering-based loss detection.
    pub fn on_ack(&mut self, now: SimTime, ack: &Ack) -> AckOutcome {
        if let Some(digest) = &mut self.ack_digest {
            for word in [
                now.as_nanos(),
                ack.seq ^ ((ack.epoch as u64) << 48),
                ack.echo_tx_index ^ ((ack.was_retx as u64) << 63),
            ] {
                *digest = crate::event::fnv(*digest, word);
            }
        }
        if ack.epoch != self.epoch {
            return AckOutcome {
                valid: false,
                info: None,
                newly_lost: Vec::new(),
            };
        }
        if ack.rwnd > 0 {
            self.peer_rwnd = Some(ack.rwnd);
        }
        // A stretch ack (batch > 1) covers a run of consecutive
        // sequences ending at `ack.seq`: the lower sequences leave the
        // in-flight set here — no RTT sample (their send times are not
        // echoed), no loss-detector cutoff of their own — and the top
        // sequence is then processed exactly like a per-packet ack.
        // Guarded so the default batch-of-1 path is bit-identical to the
        // pre-policy transport.
        if ack.batch > 1 {
            let first = ack.seq.saturating_sub(ack.batch as u64 - 1);
            for seq in first..ack.seq {
                if let Some(out) = self.outstanding.remove(seq) {
                    self.by_tx_index.remove(out.tx_index);
                    self.highest_acked_tx_index = Some(
                        self.highest_acked_tx_index
                            .map_or(out.tx_index, |h| h.max(out.tx_index)),
                    );
                }
            }
        }
        let Some(out) = self.outstanding.remove(ack.seq) else {
            // Duplicate or ack of an already-retransmitted packet.
            return AckOutcome {
                valid: false,
                info: None,
                newly_lost: Vec::new(),
            };
        };
        self.by_tx_index.remove(out.tx_index);
        self.backoff = 0;

        // Karn's rule: only un-ambiguous samples update the estimators.
        let rtt = if ack.was_retx {
            None
        } else {
            let sample = now - ack.echo_sent_at;
            self.update_rtt(sample);
            Some(sample)
        };

        let acked_tx = ack.echo_tx_index;
        self.highest_acked_tx_index = Some(
            self.highest_acked_tx_index
                .map_or(acked_tx, |h| h.max(acked_tx)),
        );

        // Reordering loss detection: everything sent REORDER_THRESHOLD
        // transmissions before the newest ack is presumed lost.
        let mut newly_lost = Vec::new();
        if let Some(h) = self.highest_acked_tx_index {
            if h >= REORDER_THRESHOLD {
                let cutoff = h - REORDER_THRESHOLD;
                for (_tx, seq) in self.by_tx_index.drain_upto(cutoff) {
                    self.outstanding.remove(seq);
                    self.retx_queue.push_back(seq);
                    newly_lost.push(seq);
                }
            }
        }

        let info = AckInfo {
            rtt,
            min_rtt: self.min_rtt.unwrap_or(SimDuration::ZERO),
            in_flight: self.outstanding.len(),
            rwnd: (ack.rwnd > 0).then_some(ack.rwnd),
        };
        AckOutcome {
            valid: true,
            info: Some(info),
            newly_lost,
        }
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        self.min_rtt = Some(match self.min_rtt {
            Some(m) => m.min(sample),
            None => sample,
        });
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = sample.div_u64(2);
            }
            Some(srtt) => {
                // RFC 6298: rttvar = 3/4 rttvar + 1/4 |srtt - sample|
                let err = if sample > srtt {
                    sample - srtt
                } else {
                    srtt - sample
                };
                self.rttvar = self.rttvar.mul_f64(0.75) + err.mul_f64(0.25);
                self.srtt = Some(srtt.mul_f64(0.875) + sample.mul_f64(0.125));
            }
        }
    }

    /// Current retransmission timeout with backoff applied.
    pub fn rto(&self) -> SimDuration {
        let base = match self.srtt {
            Some(srtt) => {
                let candidate = srtt + self.rttvar.mul_f64(4.0);
                candidate.max(MIN_RTO)
            }
            None => INITIAL_RTO,
        };
        let backed = base.mul_f64((1u64 << self.backoff.min(8)) as f64);
        backed.min(MAX_RTO)
    }

    /// Handle an expired retransmission timer: every outstanding packet is
    /// queued for retransmission (go-back-N) and the RTO backs off.
    /// Returns the number of packets queued.
    pub fn on_timeout(&mut self) -> usize {
        let n = self.outstanding.len();
        // Re-queue in sequence order for in-order recovery.
        for (seq, _) in self.outstanding.iter() {
            self.retx_queue.push_back(seq);
        }
        self.outstanding.clear();
        self.by_tx_index.clear();
        self.backoff = (self.backoff + 1).min(16);
        self.rto_gen += 1;
        n
    }

    /// Bump the RTO generation (invalidates scheduled RtoCheck events).
    pub fn bump_rto_gen(&mut self) -> u64 {
        self.rto_gen += 1;
        self.rto_gen
    }

    /// Oldest outstanding transmission time (None when idle); the RTO
    /// deadline is measured from here.
    ///
    /// `sent_at` is monotone in `tx_index` (packets transmit in index
    /// order at non-decreasing times), so the minimum is the entry with
    /// the smallest tx_index — an O(1) front lookup rather than a full
    /// scan. This runs on every ack via `reschedule_rto`.
    pub fn oldest_outstanding_at(&self) -> Option<SimTime> {
        let (_, &seq) = self.by_tx_index.first()?;
        Some(self.outstanding.get(seq).expect("indexed").sent_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack_for(pkt: &Packet, now: SimTime) -> Ack {
        Ack {
            flow: pkt.flow,
            seq: pkt.seq,
            epoch: pkt.epoch,
            echo_sent_at: pkt.sent_at,
            echo_tx_index: pkt.tx_index,
            recv_at: now,
            was_retx: pkt.is_retx(),
            batch: 1,
            rwnd: 0,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn window_limits_production() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        assert!(tr.produce(t(0), 2).is_some());
        assert!(tr.produce(t(0), 2).is_some());
        assert!(tr.produce(t(0), 2).is_none(), "window of 2 is full");
        assert_eq!(tr.in_flight(), 2);
    }

    #[test]
    fn ack_frees_window_and_updates_rtt() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let p = tr.produce(t(0), 10).unwrap();
        let out = tr.on_ack(t(150), &ack_for(&p, t(75)));
        assert!(out.valid);
        let info = out.info.unwrap();
        assert_eq!(info.rtt, Some(SimDuration::from_millis(150)));
        assert_eq!(info.min_rtt, SimDuration::from_millis(150));
        assert_eq!(info.in_flight, 0);
        assert!(out.newly_lost.is_empty());
    }

    #[test]
    fn stale_epoch_acks_rejected() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let p = tr.produce(t(0), 10).unwrap();
        tr.start_epoch(); // workload cycled
        let out = tr.on_ack(t(10), &ack_for(&p, t(5)));
        assert!(!out.valid);
    }

    #[test]
    fn duplicate_acks_rejected() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let p = tr.produce(t(0), 10).unwrap();
        assert!(tr.on_ack(t(150), &ack_for(&p, t(75))).valid);
        assert!(!tr.on_ack(t(151), &ack_for(&p, t(75))).valid);
    }

    #[test]
    fn reordering_loss_detection() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let pkts: Vec<Packet> = (0..6).map(|_| tr.produce(t(0), 10).unwrap()).collect();
        // Packet 0 is "lost": ack packets 1..=3. After ack of tx_index 3,
        // packet 0 (tx_index 0) has 3 later acks -> lost.
        assert!(tr
            .on_ack(t(150), &ack_for(&pkts[1], t(75)))
            .newly_lost
            .is_empty());
        assert!(tr
            .on_ack(t(151), &ack_for(&pkts[2], t(75)))
            .newly_lost
            .is_empty());
        let out = tr.on_ack(t(152), &ack_for(&pkts[3], t(75)));
        assert_eq!(out.newly_lost, vec![0], "seq 0 declared lost");
        assert!(tr.has_retx_pending());
        // The retransmission goes out first and carries is_retx.
        let r = tr.produce(t(200), 10).unwrap();
        assert_eq!(r.seq, 0);
        assert!(r.is_retx());
    }

    #[test]
    fn karn_rule_ignores_retx_rtt() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let pkts: Vec<Packet> = (0..5).map(|_| tr.produce(t(0), 10).unwrap()).collect();
        for i in 1..=3 {
            tr.on_ack(t(150 + i), &ack_for(&pkts[i as usize], t(75)));
        }
        let r = tr.produce(t(200), 10).unwrap();
        assert!(r.is_retx());
        let out = tr.on_ack(t(900), &ack_for(&r, t(850)));
        assert!(out.valid);
        assert_eq!(out.info.unwrap().rtt, None, "retx ack gives no RTT sample");
    }

    #[test]
    fn timeout_requeues_everything_and_backs_off() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        for _ in 0..4 {
            tr.produce(t(0), 10);
        }
        let rto_before = tr.rto();
        assert_eq!(rto_before, INITIAL_RTO);
        let n = tr.on_timeout();
        assert_eq!(n, 4);
        assert_eq!(tr.in_flight(), 0);
        assert!(tr.rto() > rto_before, "exponential backoff");
        // All four retransmit in order.
        for want in 0..4 {
            let p = tr.produce(t(1000), 10).unwrap();
            assert_eq!(p.seq, want);
            assert!(p.is_retx());
        }
    }

    #[test]
    fn repeated_timeouts_cap_the_rto_shift() {
        // Pin the intended asymmetry: `on_timeout` caps the backoff
        // *counter* at 16 (cheap saturation guard), while `rto()` caps
        // the *shift* at 8 before clamping to MAX_RTO — so the doubling
        // stops mattering once 2^8 * base exceeds MAX_RTO, and a long
        // outage can never overflow the multiplier.
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        tr.produce(t(0), 10);
        for k in 1..=8 {
            tr.produce(t(0), 10);
            tr.on_timeout();
            let expect = INITIAL_RTO.mul_f64((1u64 << k.min(8)) as f64).min(MAX_RTO);
            assert_eq!(tr.rto(), expect, "after {k} timeouts");
        }
        // 1 s << 8 = 256 s > MAX_RTO: fully saturated from here on.
        assert_eq!(tr.rto(), MAX_RTO);
        // Far past both caps: the counter saturates at 16, the shift at
        // 8, and the RTO stays exactly MAX_RTO with no overflow.
        for _ in 0..64 {
            tr.produce(t(0), 10);
            tr.on_timeout();
        }
        assert_eq!(tr.rto(), MAX_RTO);
    }

    #[test]
    fn valid_ack_resets_rto_backoff() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        for _ in 0..3 {
            tr.produce(t(0), 10);
            tr.on_timeout();
        }
        assert!(tr.rto() > INITIAL_RTO, "backed off before the ack");
        // Drain the retransmission queue, then ack one packet.
        let p = tr.produce(t(100), 10).unwrap();
        let out = tr.on_ack(t(200), &ack_for(&p, t(150)));
        assert!(out.valid);
        // backoff is 0 again. The acked packet was a retransmission, so
        // Karn's rule leaves srtt unset and the RTO is exactly the
        // un-backed-off INITIAL_RTO — one eighth of the pre-ack 8 s.
        assert_eq!(tr.rto(), INITIAL_RTO, "backoff must reset on a valid ack");
        // An *invalid* ack (stale epoch) must not reset the backoff.
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let stale = tr.produce(t(0), 10).unwrap();
        tr.start_epoch();
        tr.produce(t(0), 10);
        tr.on_timeout();
        let backed = tr.rto();
        assert!(!tr.on_ack(t(10), &ack_for(&stale, t(5))).valid);
        assert_eq!(tr.rto(), backed, "invalid ack must not touch backoff");
    }

    #[test]
    fn rto_tracks_srtt() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        // feed a stream of 100 ms RTT samples
        for _ in 0..20 {
            let p = tr.produce(t(0), 100).unwrap();
            tr.on_ack(
                p.sent_at + SimDuration::from_millis(100),
                &ack_for(&p, t(50)),
            );
        }
        let rto = tr.rto();
        // srtt -> 100 ms, rttvar -> small; RTO clamps at MIN_RTO = 200 ms.
        assert!(rto >= MIN_RTO);
        assert!(rto < SimDuration::from_millis(400), "rto={rto:?}");
    }

    #[test]
    fn abort_clears_in_flight() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        tr.produce(t(0), 10);
        tr.produce(t(0), 10);
        tr.abort();
        assert_eq!(tr.in_flight(), 0);
        assert!(!tr.has_retx_pending());
    }

    #[test]
    fn batch_ack_clears_the_covered_run() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let pkts: Vec<Packet> = (0..5).map(|_| tr.produce(t(0), 10).unwrap()).collect();
        // One stretch ack covering seqs 0..=3 (batch 4, top seq 3).
        let mut ack = ack_for(&pkts[3], t(75));
        ack.batch = 4;
        let out = tr.on_ack(t(150), &ack);
        assert!(out.valid);
        let info = out.info.unwrap();
        assert_eq!(info.in_flight, 1, "only seq 4 still outstanding");
        assert_eq!(
            info.rtt,
            Some(SimDuration::from_millis(150)),
            "RTT sampled from the top (echoed) sequence"
        );
        assert!(
            out.newly_lost.is_empty(),
            "implicitly acked packets must not trip the loss detector"
        );
        // The remaining packet acks normally.
        assert!(tr.on_ack(t(151), &ack_for(&pkts[4], t(76))).valid);
        assert_eq!(tr.in_flight(), 0);
    }

    #[test]
    fn batch_ack_tolerates_already_acked_sequences() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let pkts: Vec<Packet> = (0..3).map(|_| tr.produce(t(0), 10).unwrap()).collect();
        assert!(tr.on_ack(t(100), &ack_for(&pkts[0], t(50))).valid);
        // A batch covering 0..=2 where 0 is already gone: 1 and 2 clear.
        let mut ack = ack_for(&pkts[2], t(60));
        ack.batch = 3;
        let out = tr.on_ack(t(110), &ack);
        assert!(out.valid);
        assert_eq!(tr.in_flight(), 0);
    }

    #[test]
    fn rwnd_advertisement_is_cached_per_epoch() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        assert_eq!(tr.peer_rwnd(), None);
        let p = tr.produce(t(0), 10).unwrap();
        let mut ack = ack_for(&p, t(75));
        ack.rwnd = 12;
        let out = tr.on_ack(t(150), &ack);
        assert_eq!(out.info.unwrap().rwnd, Some(12));
        assert_eq!(tr.peer_rwnd(), Some(12));
        // An ack without an advertisement leaves the cached value.
        let p = tr.produce(t(200), 10).unwrap();
        let out = tr.on_ack(t(350), &ack_for(&p, t(275)));
        assert_eq!(out.info.unwrap().rwnd, None);
        assert_eq!(tr.peer_rwnd(), Some(12), "advertisement persists");
        // A new epoch forgets the peer's window.
        tr.start_epoch();
        assert_eq!(tr.peer_rwnd(), None);
    }

    #[test]
    fn min_rtt_is_monotone_decreasing() {
        let mut tr = Transport::new(FlowId(0));
        tr.start_epoch();
        let p1 = tr.produce(t(0), 10).unwrap();
        tr.on_ack(t(200), &ack_for(&p1, t(100)));
        assert_eq!(tr.min_rtt(), Some(SimDuration::from_millis(200)));
        let p2 = tr.produce(t(300), 10).unwrap();
        tr.on_ack(t(450), &ack_for(&p2, t(400)));
        assert_eq!(tr.min_rtt(), Some(SimDuration::from_millis(150)));
        let p3 = tr.produce(t(500), 10).unwrap();
        tr.on_ack(t(800), &ack_for(&p3, t(700)));
        assert_eq!(
            tr.min_rtt(),
            Some(SimDuration::from_millis(150)),
            "does not increase"
        );
    }
}
