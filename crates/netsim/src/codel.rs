//! CoDel ("controlled delay") active queue management.
//!
//! Implementation of Nichols & Jacobson, *Controlling Queue Delay* (ACM
//! Queue, 2012) — the per-bin AQM inside the paper's sfqCoDel gateway. CoDel
//! tracks each packet's sojourn time; once sojourn stays above `target` for
//! a full `interval`, it enters a dropping state, dropping packets at
//! intervals shrinking with the inverse square root of the drop count.

use crate::queue::{QueueStats, QueuedPacket};
use crate::time::{SimDuration, SimTime};
use std::collections::VecDeque;

/// CoDel control-law parameters. The reference (and paper) values are a
/// 5 ms target and 100 ms interval.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CodelParams {
    /// Acceptable standing-queue sojourn time.
    pub target: SimDuration,
    /// Sliding window over which sojourn must exceed `target` to trigger
    /// dropping; also the initial drop spacing.
    pub interval: SimDuration,
}

impl Default for CodelParams {
    fn default() -> Self {
        CodelParams {
            target: SimDuration::from_millis(5),
            interval: SimDuration::from_millis(100),
        }
    }
}

/// A single CoDel-managed FIFO.
#[derive(Debug)]
pub struct Codel {
    params: CodelParams,
    q: VecDeque<QueuedPacket>,
    bytes: u64,
    /// Time at which sojourn first exceeded target (None = below target).
    first_above_time: Option<SimTime>,
    /// True while in the dropping state.
    dropping: bool,
    /// Next scheduled drop while in dropping state.
    drop_next: SimTime,
    /// Drops in the current dropping episode.
    count: u32,
    /// `count` value when the last dropping episode ended, for the
    /// control-law warm start.
    last_count: u32,
    stats: QueueStats,
}

impl Codel {
    /// An empty CoDel state machine with the given parameters.
    pub fn new(params: CodelParams) -> Self {
        Codel {
            params,
            q: VecDeque::new(),
            bytes: 0,
            first_above_time: None,
            dropping: false,
            drop_next: SimTime::ZERO,
            count: 0,
            last_count: 0,
            stats: QueueStats::default(),
        }
    }

    /// Enqueue a packet at the tail.
    pub fn push(&mut self, qp: QueuedPacket) {
        self.bytes += qp.pkt.size() as u64;
        self.stats.enqueued += 1;
        self.q.push_back(qp);
    }

    /// Number of queued packets.
    pub fn len_packets(&self) -> usize {
        self.q.len()
    }

    /// Total queued bytes.
    pub fn len_bytes(&self) -> u64 {
        self.bytes
    }

    /// Lifetime enqueue/drop counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// `interval / sqrt(count)`: the CoDel control law.
    fn control_law(&self, t: SimTime) -> SimTime {
        t + self
            .params
            .interval
            .mul_f64(1.0 / (self.count.max(1) as f64).sqrt())
    }

    fn pop_front(&mut self) -> Option<QueuedPacket> {
        let qp = self.q.pop_front()?;
        self.bytes -= qp.pkt.size() as u64;
        Some(qp)
    }

    /// Core "should we drop the packet at the head" check from the paper's
    /// pseudocode (`dodeque`). Returns the packet and whether CoDel judged
    /// it droppable.
    fn dodeque(&mut self, now: SimTime) -> Option<(QueuedPacket, bool)> {
        let qp = self.pop_front()?;
        let sojourn = now - qp.enqueued_at;
        if sojourn < self.params.target || self.bytes < 1500 {
            // Below target (or queue nearly empty): leave the "above" state.
            self.first_above_time = None;
            Some((qp, false))
        } else {
            let ok_to_drop = match self.first_above_time {
                None => {
                    self.first_above_time = Some(now + self.params.interval);
                    false
                }
                Some(fat) => now >= fat,
            };
            Some((qp, ok_to_drop))
        }
    }

    /// Dequeue the next packet to forward, applying CoDel's drop law.
    pub fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        let (mut qp, mut ok_to_drop) = self.dodeque(now)?;

        if self.dropping {
            if !ok_to_drop {
                self.dropping = false;
            } else {
                while self.dropping && now >= self.drop_next {
                    // Drop the current packet, advance the law, fetch another.
                    self.stats.dropped += 1;
                    self.count += 1;
                    match self.dodeque(now) {
                        Some((next_qp, next_ok)) => {
                            qp = next_qp;
                            ok_to_drop = next_ok;
                            if !ok_to_drop {
                                self.dropping = false;
                            } else {
                                self.drop_next = self.control_law(self.drop_next);
                            }
                        }
                        None => {
                            self.dropping = false;
                            return None;
                        }
                    }
                }
            }
        } else if ok_to_drop {
            // Enter dropping state: drop this packet, deliver the next.
            self.stats.dropped += 1;
            let next = self.dodeque(now);
            self.dropping = true;
            // Control-law warm start: if we recently dropped, resume near
            // the prior drop rate rather than restarting from 1.
            let delta = self.count.saturating_sub(self.last_count);
            self.count = if delta > 1 && now - self.drop_next < self.params.interval.mul_f64(16.0) {
                delta
            } else {
                1
            };
            self.last_count = self.count;
            self.drop_next = self.control_law(now);
            match next {
                Some((next_qp, _)) => qp = next_qp,
                None => return None,
            }
        }

        self.stats.dequeued += 1;
        Some(qp)
    }
}

/// A single CoDel-managed FIFO with a hard byte-capacity backstop,
/// usable as a link discipline ([`QueueSpec::Codel`](crate::queue::QueueSpec)).
/// This is the "plain CoDel gateway" of the AQM ablation: one shared
/// sojourn-controlled queue, no per-flow isolation (contrast with
/// [`crate::sfq_codel::SfqCodel`]).
#[derive(Debug)]
pub struct CodelQueue {
    inner: Codel,
    capacity_bytes: u64,
    tail_drops: u64,
}

impl CodelQueue {
    /// A CoDel queue with a hard byte capacity (tail-drops past it).
    pub fn new(capacity_bytes: u64, params: CodelParams) -> Self {
        assert!(capacity_bytes > 0, "CoDel needs a finite buffer");
        CodelQueue {
            inner: Codel::new(params),
            capacity_bytes,
            tail_drops: 0,
        }
    }
}

impl crate::queue::QueueDiscipline for CodelQueue {
    fn enqueue(&mut self, qp: QueuedPacket, _now: SimTime) -> bool {
        if self.inner.len_bytes() + qp.pkt.size() as u64 > self.capacity_bytes {
            self.tail_drops += 1;
            return false;
        }
        self.inner.push(qp);
        true
    }

    fn dequeue(&mut self, now: SimTime) -> Option<QueuedPacket> {
        self.inner.dequeue(now)
    }

    fn len_packets(&self) -> usize {
        self.inner.len_packets()
    }

    fn len_bytes(&self) -> u64 {
        self.inner.len_bytes()
    }

    fn stats(&self) -> QueueStats {
        let mut s = self.inner.stats();
        s.dropped += self.tail_drops;
        s
    }

    fn name(&self) -> &'static str {
        "codel"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::queue::QueueDiscipline;

    fn qp(seq: u64, at: SimTime) -> QueuedPacket {
        QueuedPacket {
            pkt: Packet::data(FlowId(0), seq, 0, at, seq, false),
            enqueued_at: at,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn no_drops_below_target() {
        let mut c = Codel::new(CodelParams::default());
        // sojourn 1 ms < 5 ms target: everything passes
        for i in 0..100 {
            c.push(qp(i, t(i)));
        }
        let mut out = 0;
        for i in 0..100 {
            if c.dequeue(t(i + 1)).is_some() {
                out += 1;
            }
        }
        assert_eq!(out, 100);
        assert_eq!(c.stats().dropped, 0);
    }

    #[test]
    fn sustained_high_sojourn_triggers_dropping() {
        let mut c = Codel::new(CodelParams::default());
        // Fill a queue whose head is always >= 50 ms old.
        for i in 0..500 {
            c.push(qp(i, t(i)));
        }
        let mut drops_before = 0;
        let mut dequeues = 0;
        // Drain one packet per ms starting at t=200ms: sojourn grows, CoDel
        // must enter dropping within interval (100 ms) and start shedding.
        for step in 0..400 {
            let now = t(200 + step);
            if c.dequeue(now).is_some() {
                dequeues += 1;
            }
            if step == 99 {
                drops_before = c.stats().dropped;
            }
        }
        assert!(
            c.stats().dropped > drops_before,
            "drop count grows during episode"
        );
        assert!(
            c.stats().dropped >= 2,
            "entered dropping state: {:?}",
            c.stats()
        );
        assert!(dequeues > 0);
    }

    #[test]
    fn leaves_dropping_when_queue_drains() {
        let mut c = Codel::new(CodelParams::default());
        for i in 0..200 {
            c.push(qp(i, t(0)));
        }
        // force a dropping episode
        let mut now = t(150);
        for _ in 0..150 {
            now += SimDuration::from_millis(2);
            c.dequeue(now);
            if c.len_packets() == 0 {
                break;
            }
        }
        let dropped_at_empty = c.stats().dropped;
        assert!(dropped_at_empty > 0);
        // refill with fresh packets, drain immediately: no new drops
        for i in 0..20 {
            c.push(qp(1000 + i, now));
        }
        for _ in 0..20 {
            c.dequeue(now + SimDuration::from_millis(1));
        }
        assert_eq!(c.stats().dropped, dropped_at_empty);
    }

    #[test]
    fn codel_queue_tail_drops_at_capacity() {
        let mut q = CodelQueue::new(4500, CodelParams::default());
        assert!(q.enqueue(qp(0, t(0)), t(0)));
        assert!(q.enqueue(qp(1, t(0)), t(0)));
        assert!(q.enqueue(qp(2, t(0)), t(0)));
        assert!(!q.enqueue(qp(3, t(0)), t(0)), "over capacity");
        assert_eq!(q.stats().dropped, 1);
        assert_eq!(q.len_bytes(), 4500);
        assert_eq!(q.name(), "codel");
        // draining frees capacity again
        assert!(q.dequeue(t(1)).is_some());
        assert!(q.enqueue(qp(4, t(1)), t(1)));
    }

    #[test]
    fn byte_accounting() {
        let mut c = Codel::new(CodelParams::default());
        c.push(qp(0, t(0)));
        c.push(qp(1, t(0)));
        assert_eq!(c.len_bytes(), 3000);
        c.dequeue(t(1));
        assert_eq!(c.len_bytes(), 1500);
        assert_eq!(c.len_packets(), 1);
    }
}
