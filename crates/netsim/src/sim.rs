//! The simulation engine.
//!
//! Wires the pieces together: senders (a [`CongestionControl`] plugged into
//! a [`Transport`]) emit packets over routed paths of [`Link`]s; receivers
//! acknowledge every delivery; ON/OFF [`crate::workload::Workload`]
//! processes gate offered load. A run is a pure function of
//! `(NetworkConfig, protocols, seed)`.
//!
//! # The reverse (ACK) path
//!
//! The network is bidirectional in three compatibility tiers, decided per
//! flow from the [`crate::topology::ReverseSpec`]s on its route:
//!
//! * **No spec on any route link** — the paper's model, preserved bit for
//!   bit: the acknowledgment arrives after the flow's reverse propagation
//!   delay plus a negligible 1 Gbps serialization. No reverse links exist.
//! * **`shared: false` specs** — each flow gets a *private* reverse
//!   [`Link`] per spec'd hop: its ACKs serialize one at a time at the
//!   reverse rate (the historical per-flow channel, now a real link
//!   object with a real queue discipline), but never contend with other
//!   flows. On routes whose reverse path has **one** spec'd hop — every
//!   committed figure configuration — this reproduces the old
//!   `busy_until` arithmetic bit for bit. On multi-hop reverse paths the
//!   semantics are deliberately *more physical* than before: the ACK
//!   serializes at every spec'd hop (store-and-forward), where the old
//!   scalar serialized it once at the route's minimum reverse rate.
//! * **`shared: true` specs** — one reverse [`Link`] per spec'd forward
//!   link carries *every* crossing flow's ACKs: they queue, interleave
//!   and (under a finite or AQM reverse queue) drop together, so ACK
//!   compression on a shared uplink is a property of the simulated
//!   network rather than an arithmetic approximation.
//!
//! In the link tiers, ACKs are first-class [`Packet`]s
//! ([`PacketDir::Ack`]) dispatched through the same
//! `Arrive → TxComplete → Propagated` event chain as data. Route hops
//! without a spec contribute pure propagation delay, applied after the
//! last reverse link.
//!
//! # Endpoint policies
//!
//! Receivers are first-class: each flow may carry a
//! [`crate::topology::ReceiverSpec`] turning its receiver into a small
//! state machine — delayed/stretch ACKs (acknowledge once per *k*
//! consecutive deliveries, with an optional [`Event::AckTimer`] flush
//! bounding how long a partial run is held), and advertised receive
//! windows (every ACK stamps `rwnd`; the sender transmits while
//! `in_flight < min(cwnd, rwnd)`). All acknowledgments — immediate or
//! coalesced — leave through one `Simulation::emit_ack` gateway, which
//! picks the flow's reverse tier. A flow may also set `reverse_data`:
//! its *data* then travels over the route's reverse links (the upload
//! direction of an access network, contending with everyone's ACKs on a
//! shared uplink) while its own acknowledgments return over the forward
//! direction via the paper arithmetic. A flow without a spec (or with
//! the default spec) takes the historical immediate-ACK path bit for
//! bit.

use crate::arena::PacketArena;
use crate::event::{Event, EventQueue, SchedulerKind};
use crate::flow::{FlowOutcome, FlowStats, OnTimeTracker};
use crate::link::{Link, Offer};
use crate::packet::{Ack, FlowId, LinkId, Packet, PacketDir, ACK_BYTES};
use crate::queue::QueueStats;
use crate::rng::SimRng;
use crate::seqtrack::SeqTracker;
use crate::time::{SimDuration, SimTime};
use crate::topology::{FaultSpec, NetworkConfig, ReceiverSpec};
use crate::trace::{QueueSample, Trace};
use crate::transport::{CongestionControl, Transport};

struct SenderSlot {
    cc: Box<dyn CongestionControl>,
    transport: Transport,
    workload: crate::workload::Workload,
    route: Vec<usize>,
    /// Full reverse-path propagation delay (the paper-model arithmetic
    /// tier uses it directly).
    ack_delay: SimDuration,
    /// Reverse links (indices into `Simulation::links`) this flow's ACKs
    /// traverse, in reverse-route order; empty selects the paper's
    /// uncongested-reverse arithmetic.
    ack_route: Vec<usize>,
    /// Propagation of route hops without a [`crate::topology::ReverseSpec`]
    /// (pure delay applied after the last reverse link).
    ack_residual_delay: SimDuration,
    /// Concurrent transfers hosted by this slot (unblocked M/G/∞ churn);
    /// the slot is ON while this is nonzero.
    active_flows: u32,
    on: bool,
    on_tracker: OnTimeTracker,
    /// Time of the last transmission, for pacing.
    last_send: Option<SimTime>,
    /// Earliest pending SenderWake, to avoid duplicate timers.
    pending_wake: Option<SimTime>,
    /// Current RTO deadline (valid only at the matching rto_gen).
    rto_deadline: SimTime,
    toggle_gen: u64,
    rng: SimRng,
}

/// Runtime state of one forward link's [`FaultSpec`] process: the
/// per-link child RNG (forked only for links that declare a fault, so
/// `fault: None` configs keep their exact pre-fault streams) and the
/// Gilbert–Elliott channel state.
struct FaultState {
    spec: FaultSpec,
    rng: SimRng,
    /// Gilbert–Elliott: currently in the bad (lossy) state.
    bad: bool,
}

/// Per-flow receiver state: which sequences have been seen this epoch
/// (deduplicates retransmissions in the delivery stats). Sequences are
/// near-sequential, so a sliding bitmap replaces the per-delivery hash.
#[derive(Default)]
struct ReceiverSlot {
    epoch: u32,
    seen: SeqTracker,
    /// ACK-policy state machine; `None` (every flow whose spec is absent
    /// or [`ReceiverSpec::is_immediate`]) selects the historical
    /// immediate per-packet-ack path, bit for bit.
    policy: Option<PolicyState>,
}

/// Runtime state of one receiver's non-immediate ACK policy.
struct PolicyState {
    spec: ReceiverSpec,
    /// Deliveries coalesced into the batch so far (the `batch` count an
    /// eventual flush carries).
    pending: u32,
    /// Latest coalesced delivery and its arrival time (the packet whose
    /// echo fields the flush's single ACK will carry).
    held: Option<(Packet, SimTime)>,
    /// Generation guard: an [`Event::AckTimer`] fires only if its `gen`
    /// still matches (every flush and epoch restart bumps this).
    timer_gen: u64,
    /// A flush timer for the current batch is already in the queue.
    timer_armed: bool,
}

impl PolicyState {
    fn new(spec: ReceiverSpec) -> Self {
        PolicyState {
            spec,
            pending: 0,
            held: None,
            timer_gen: 0,
            timer_armed: false,
        }
    }

    /// Drop all coalescing state and invalidate any armed timer (epoch
    /// restart).
    fn reset(&mut self) {
        self.pending = 0;
        self.held = None;
        self.timer_gen += 1;
        self.timer_armed = false;
    }
}

/// Aggregate outcome of a simulation run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-flow results, indexed by flow id.
    pub flows: Vec<FlowOutcome>,
    /// Simulated wall-clock length, seconds.
    pub duration_s: f64,
    /// Final queue counters per link. Indices `0..forward_links` are the
    /// config's links in order; any further entries are reverse (ACK)
    /// links (shared ones first, in link order, then per-flow private
    /// ones in flow order).
    pub link_queues: Vec<QueueStats>,
    /// Bytes each link transmitted (utilization = bytes*8 / rate / T),
    /// indexed like `link_queues`.
    pub link_bytes: Vec<u64>,
    /// Number of forward links (`== config.links.len()`); entries past
    /// this index in `link_queues`/`link_bytes` are reverse links.
    pub forward_links: usize,
    /// Total events dispatched.
    pub events_processed: u64,
    /// `true` when the run stopped because it exhausted the event budget
    /// ([`Simulation::set_event_budget`]) rather than reaching the
    /// requested duration. Every per-flow statistic then covers only the
    /// simulated prefix — consumers must treat the outcome as a partial
    /// result, not a converged measurement.
    pub truncated: bool,
    /// Order-sensitive FNV-1a digest of every dispatched event, when
    /// enabled via [`Simulation::enable_event_digest`] (`None` otherwise).
    /// Two runs with equal digests dispatched the identical event
    /// sequence — the strongest cross-backend determinism check.
    pub event_digest: Option<u64>,
}

impl RunOutcome {
    /// Utilization of a link over the run.
    pub fn utilization(&self, link: usize, rate_bps: f64) -> f64 {
        self.link_bytes[link] as f64 * 8.0 / (rate_bps * self.duration_s)
    }
}

/// A configured simulation, ready to run.
pub struct Simulation {
    now: SimTime,
    events: EventQueue,
    /// Backing store for packets parked inside scheduled events (see
    /// [`crate::arena`]); slots recycle through the free-list, so at
    /// steady state scheduling a packet event allocates nothing.
    arena: PacketArena,
    /// Forward links (config order), then reverse links (see
    /// [`RunOutcome::link_queues`] for the layout).
    links: Vec<Link>,
    /// Number of forward links; `links[n_forward..]` are reverse links.
    n_forward: usize,
    /// Shared reverse link index per forward link (`None` when the link
    /// has no shared [`crate::topology::ReverseSpec`]).
    shared_rev: Vec<Option<usize>>,
    senders: Vec<SenderSlot>,
    receivers: Vec<ReceiverSlot>,
    /// Fault-process state per forward link (`None` = no fault declared).
    faults: Vec<Option<FaultState>>,
    stats: Vec<FlowStats>,
    min_one_way: Vec<SimDuration>,
    trace: Option<Trace>,
    events_processed: u64,
    /// Hard cap on events to guard against pathological protocol settings
    /// (e.g. a candidate action with near-zero pacing during optimization).
    event_budget: u64,
    scheduler: SchedulerKind,
    /// Running FNV-1a digest over dispatched events (None = disabled).
    event_digest: Option<u64>,
}

impl Simulation {
    /// Build a simulation on the default scheduler backend (the calendar
    /// queue, unless overridden via `NETSIM_SCHEDULER=heap|calendar`).
    /// `protocols[i]` drives `config.flows[i]`; the whole run is
    /// deterministic in `seed`.
    pub fn new(
        config: &NetworkConfig,
        protocols: Vec<Box<dyn CongestionControl>>,
        seed: u64,
    ) -> Self {
        Self::with_scheduler(config, protocols, seed, SchedulerKind::env_default())
    }

    /// Build a simulation on an explicit scheduler backend. Backends are
    /// order-equivalent, so the outcome is bit-identical whichever is
    /// chosen — this knob exists for benchmarking and regression tests.
    pub fn with_scheduler(
        config: &NetworkConfig,
        protocols: Vec<Box<dyn CongestionControl>>,
        seed: u64,
        scheduler: SchedulerKind,
    ) -> Self {
        // Fail here with the validator's message rather than as an
        // index-out-of-bounds somewhere deep in the event loop.
        if let Err(msg) = config.validate() {
            panic!("invalid network config: {msg}");
        }
        assert_eq!(
            protocols.len(),
            config.flows.len(),
            "one protocol per flow required"
        );
        let mut root = SimRng::from_seed(seed);
        let mut links: Vec<Link> = config
            .links
            .iter()
            .enumerate()
            .map(|(i, ls)| {
                let salt = root.fork(0x1111 + i as u64).gen_u64();
                Link::new(ls.rate_bps, ls.one_way_delay(), ls.queue.build(salt))
            })
            .collect();
        let mut senders: Vec<SenderSlot> = protocols
            .into_iter()
            .enumerate()
            .map(|(i, cc)| SenderSlot {
                cc,
                transport: Transport::new(FlowId(i as u32)),
                workload: crate::workload::Workload::new(config.flows[i].workload.clone()),
                route: config.flows[i].route.clone(),
                ack_delay: config.ack_delay(i),
                ack_route: Vec::new(),
                ack_residual_delay: SimDuration::ZERO,
                active_flows: 0,
                on: false,
                on_tracker: OnTimeTracker::default(),
                last_send: None,
                pending_wake: None,
                rto_deadline: SimTime::MAX,
                toggle_gen: 0,
                rng: root.fork(0x2222 + i as u64),
            })
            .collect();
        let n = senders.len();
        // Pre-size each sender's reliability maps to its path's
        // bandwidth-delay product (the steady-state window bound), so
        // the first window ramp of every epoch grows into reserved
        // capacity instead of a chain of doubling reallocations — with
        // 10^4 churn flows each restarting repeatedly, those reallocs
        // were a measurable slice of the run. Clamped: tiny paths still
        // get a useful floor, and a long-fat path can't pin megabytes
        // per idle flow.
        for (i, s) in senders.iter_mut().enumerate() {
            let rate = config.bottleneck_rate(i);
            let rtt_s: f64 = config.flows[i]
                .route
                .iter()
                .map(|&l| config.links[l].delay_s)
                .sum();
            let bdp_packets = rate * rtt_s / (crate::packet::DATA_PACKET_BYTES as f64 * 8.0);
            s.transport
                .set_window_hint((bdp_packets.ceil() as usize).clamp(8, 512));
        }
        // Reverse links, appended after the forward links: one shared
        // link per spec'd LinkSpec (link order), then one private link
        // per (flow, unshared spec'd hop) pair (flow order, reverse-route
        // order). Built after the sender RNG forks so configs without
        // shared reverse links keep their exact pre-refactor streams.
        let n_forward = links.len();
        let mut rev_fork = 0u64;
        let mut salt = |root: &mut SimRng| {
            let s = root.fork(0x3333 + rev_fork).gen_u64();
            rev_fork += 1;
            s
        };
        let mut shared_rev: Vec<Option<usize>> = vec![None; n_forward];
        for (l, ls) in config.links.iter().enumerate() {
            if let Some(r) = &ls.reverse {
                if r.shared {
                    shared_rev[l] = Some(links.len());
                    links.push(Link::new(
                        r.rate_bps,
                        SimDuration::from_secs_f64(r.delay_s),
                        r.queue.build(salt(&mut root)),
                    ));
                }
            }
        }
        for (i, f) in config.flows.iter().enumerate() {
            let mut ack_route = Vec::new();
            let mut residual = SimDuration::ZERO;
            for &l in f.route.iter().rev() {
                match &config.links[l].reverse {
                    Some(r) => ack_route.push(match shared_rev[l] {
                        Some(idx) => idx,
                        None => {
                            let idx = links.len();
                            links.push(Link::new(
                                r.rate_bps,
                                SimDuration::from_secs_f64(r.delay_s),
                                r.queue.build(salt(&mut root)),
                            ));
                            idx
                        }
                    }),
                    None => residual += config.links[l].one_way_delay(),
                }
            }
            if f.reverse_data {
                // Upload flow: its *data* traverses the route's reverse
                // links (in reverse-route order), while its own
                // acknowledgments return over the forward direction via
                // the paper arithmetic — so ack_route stays empty and
                // ack_delay becomes the forward propagation. Validation
                // guarantees every route hop declared a ReverseSpec, so
                // the reverse chain covers the whole path.
                senders[i].route = ack_route;
                senders[i].ack_delay = config.min_one_way(i);
            } else if !ack_route.is_empty() {
                senders[i].ack_route = ack_route;
                senders[i].ack_residual_delay = residual;
            }
        }
        // Fault-process RNGs, forked last and only for links declaring a
        // fault: a `fault: None` config performs the identical fork
        // sequence as before this field existed, keeping it bit-identical.
        let faults: Vec<Option<FaultState>> = config
            .links
            .iter()
            .enumerate()
            .map(|(i, ls)| {
                ls.fault.as_ref().map(|spec| FaultState {
                    spec: spec.clone(),
                    rng: root.fork(0x4444 + i as u64),
                    bad: false,
                })
            })
            .collect();
        // Seed the calendar queue's bucket width with the tightest
        // per-packet event spacing in the topology: the fastest forward
        // link's data serialization time, or a reverse link's ACK
        // serialization time if that is tighter. The queue self-tunes
        // from there.
        let spacing_hint = links
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i < n_forward {
                    l.event_spacing_hint()
                } else {
                    l.tx_time(ACK_BYTES)
                }
            })
            .min();
        Simulation {
            now: SimTime::ZERO,
            events: EventQueue::with_kind_and_hint(scheduler, spacing_hint),
            arena: PacketArena::new(),
            links,
            n_forward,
            shared_rev,
            senders,
            receivers: config
                .flows
                .iter()
                .map(|f| ReceiverSlot {
                    epoch: 0,
                    seen: SeqTracker::default(),
                    policy: f
                        .receiver
                        .as_ref()
                        .filter(|r| !r.is_immediate())
                        .map(|spec| PolicyState::new(spec.clone())),
                })
                .collect(),
            faults,
            stats: vec![FlowStats::default(); n],
            min_one_way: (0..n)
                .map(|i| {
                    if config.flows[i].reverse_data {
                        // The data path is the reverse direction, so the
                        // propagation floor for delay statistics is the
                        // reverse chain's.
                        config.ack_delay(i)
                    } else {
                        config.min_one_way(i)
                    }
                })
                .collect(),
            trace: None,
            events_processed: 0,
            event_budget: u64::MAX,
            scheduler,
            event_digest: None,
        }
    }

    /// The scheduler backend this simulation dispatches through.
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.scheduler
    }

    /// The [`LinkId`] of the shared reverse link built for forward link
    /// `link`, if its [`crate::topology::ReverseSpec`] is `shared` —
    /// usable with [`enable_trace`](Self::enable_trace) to sample the
    /// shared ACK queue.
    pub fn shared_reverse_link(&self, link: usize) -> Option<LinkId> {
        self.shared_rev
            .get(link)
            .copied()
            .flatten()
            .map(|idx| LinkId(idx as u32))
    }

    /// Record queue occupancy of `links` every `period` (Fig 8).
    pub fn enable_trace(&mut self, links: Vec<LinkId>, period: SimDuration) {
        self.trace = Some(Trace::new(links, period));
    }

    /// Fold every dispatched event into an order-sensitive digest,
    /// reported in [`RunOutcome::event_digest`]. Off by default (it costs
    /// a few ns per event); determinism tests turn it on to prove two
    /// runs dispatched the identical event sequence.
    pub fn enable_event_digest(&mut self) {
        self.event_digest = Some(crate::event::FNV_OFFSET);
        for s in &mut self.senders {
            s.transport.enable_ack_digest();
        }
    }

    /// Cap the number of processed events (optimizer safety valve).
    pub fn set_event_budget(&mut self, budget: u64) {
        self.event_budget = budget;
    }

    /// Run for `duration` of simulated time and return per-flow outcomes.
    pub fn run(&mut self, duration: SimDuration) -> RunOutcome {
        let end = SimTime::ZERO + duration;

        // Prime workload processes. Unblocked (M/G/∞) churn slots draw
        // the same exp(1/λ) first arrival as the blocked variant but
        // enter the per-slot multiplexing machinery instead of the
        // single-chain toggle process.
        for i in 0..self.senders.len() {
            let s = &mut self.senders[i];
            if s.workload.is_on() {
                self.turn_on(i);
            } else {
                let first = {
                    let s = &mut self.senders[i];
                    let mut rng = s.rng.fork(0x9999);
                    s.workload.first_toggle(&mut rng)
                };
                if let Some(t) = first {
                    let flow = FlowId(i as u32);
                    let gen = self.senders[i].toggle_gen;
                    let ev = if self.senders[i].workload.mginf_rates().is_some() {
                        Event::FlowArrival { flow, gen }
                    } else {
                        Event::WorkloadToggle { flow, gen }
                    };
                    self.events.schedule(t, ev);
                }
            }
        }
        if self.trace.is_some() {
            self.events.schedule(SimTime::ZERO, Event::TraceSample);
        }
        // Prime outage processes: every Outage-faulted link starts up and
        // goes down after its first up dwell.
        for l in 0..self.n_forward {
            if let Some(f) = &mut self.faults[l] {
                if let FaultSpec::Outage {
                    up_s, scheduled, ..
                } = f.spec
                {
                    let dwell = outage_dwell(up_s, scheduled, &mut f.rng);
                    self.events.schedule(
                        SimTime::ZERO + dwell,
                        Event::LinkDown {
                            link: LinkId(l as u32),
                        },
                    );
                }
            }
        }

        // Batched stepping: drain each instant's same-time run in one
        // scheduler round-trip (the calendar answers the "more at this
        // instant?" question in O(1) from its pop state), then dispatch
        // the run with the clock advanced once. Events scheduled while a
        // batch is dispatched carry later insertion seqs, so they sort
        // after every batch member and are picked up by the next
        // `pop_batch` — the dispatch order, digests, budget accounting
        // and truncation point are identical to one-at-a-time popping.
        let mut truncated = false;
        let mut batch: Vec<Event> = Vec::new();
        'event_loop: while let Some(at) = self.events.pop_batch(&mut batch) {
            if at > end {
                break;
            }
            self.now = at;
            for ev in batch.drain(..) {
                self.events_processed += 1;
                if self.events_processed > self.event_budget {
                    truncated = true;
                    break 'event_loop;
                }
                if let Some(digest) = &mut self.event_digest {
                    *digest = fold_event(*digest, at, &ev, &self.arena);
                }
                self.dispatch(ev, end);
            }
        }
        self.now = end;

        // Close out ON intervals.
        for i in 0..self.senders.len() {
            if self.senders[i].on {
                let d = self.senders[i].on_tracker.finish(end);
                self.stats[i].on_time += d;
            }
        }

        RunOutcome {
            flows: (0..self.senders.len())
                .map(|i| FlowOutcome::from_stats(i, &self.stats[i], self.min_one_way[i]))
                .collect(),
            duration_s: duration.as_secs_f64(),
            link_queues: self.links.iter().map(|l| l.queue_stats()).collect(),
            link_bytes: self.links.iter().map(|l| l.bytes_transmitted()).collect(),
            forward_links: self.n_forward,
            events_processed: self.events_processed,
            truncated,
            event_digest: self.event_digest,
        }
    }

    /// Per-flow running digests of every acknowledgment the reliability
    /// layer processed (see [`Transport::ack_digest`]); the determinism
    /// tests compare these across scheduler backends. `None` per flow
    /// unless [`enable_event_digest`](Self::enable_event_digest) was
    /// called before the run.
    pub fn ack_digests(&self) -> Vec<Option<u64>> {
        self.senders
            .iter()
            .map(|s| s.transport.ack_digest())
            .collect()
    }

    /// Take the recorded trace (after `run`).
    pub fn take_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Consume the simulation and hand back the protocol objects (the
    /// optimizer reads whisker usage counts out of Tao executors).
    pub fn into_protocols(self) -> Vec<Box<dyn CongestionControl>> {
        self.senders.into_iter().map(|s| s.cc).collect()
    }

    fn dispatch(&mut self, ev: Event, end: SimTime) {
        match ev {
            Event::Arrive { link, pkt } => {
                let pkt = self.arena.take(pkt);
                self.handle_arrive(link, pkt)
            }
            Event::TxComplete { link, pkt } => {
                let pkt = self.arena.take(pkt);
                self.handle_tx_complete(link, pkt)
            }
            Event::Propagated { link, pkt } => {
                let pkt = self.arena.take(pkt);
                self.handle_propagated(link, pkt)
            }
            Event::AckArrive { flow, pkt } => {
                let ack = self.arena.take(pkt).as_ack();
                self.handle_ack(flow, ack)
            }
            Event::SenderWake { flow } => {
                let i = flow.0 as usize;
                self.senders[i].pending_wake = None;
                self.try_send(i);
            }
            Event::RtoCheck { flow, gen } => self.handle_rto(flow, gen),
            Event::WorkloadToggle { flow, gen } => self.handle_toggle(flow, gen),
            Event::FlowArrival { flow, gen } => self.handle_flow_arrival(flow, gen),
            Event::FlowDeparture { flow, gen } => self.handle_flow_departure(flow, gen),
            Event::TraceSample => self.handle_trace_sample(end),
            Event::LinkDown { link } => self.handle_link_down(link),
            Event::LinkUp { link } => self.handle_link_up(link),
            Event::AckTimer { flow, gen } => self.handle_ack_timer(flow, gen),
        }
    }

    fn handle_arrive(&mut self, link: LinkId, pkt: Packet) {
        let l = link.0 as usize;
        // Ingress fault checks (forward links only; ACKs arrive only at
        // reverse links, which carry no fault process).
        if l < self.n_forward {
            if let Some(f) = &mut self.faults[l] {
                match f.spec {
                    FaultSpec::GilbertElliott {
                        loss_good,
                        loss_bad,
                        good_to_bad,
                        bad_to_good,
                    } => {
                        // Fixed draw order (loss, then transition) keeps
                        // the stream identical across scheduler backends.
                        let lost = f.rng.chance(if f.bad { loss_bad } else { loss_good });
                        if f.rng.chance(if f.bad { bad_to_good } else { good_to_bad }) {
                            f.bad = !f.bad;
                        }
                        if lost {
                            self.stats[pkt.flow.0 as usize].drops.fault += 1;
                            return;
                        }
                    }
                    FaultSpec::Outage {
                        drop_while_down: true,
                        ..
                    } if self.links[l].is_down() => {
                        self.stats[pkt.flow.0 as usize].drops.fault += 1;
                        return;
                    }
                    _ => {}
                }
            }
        }
        match self.links[l].offer(pkt, self.now) {
            Offer::StartTx(d) => {
                let pkt = self.arena.alloc(pkt);
                self.events
                    .schedule(self.now + d, Event::TxComplete { link, pkt })
            }
            Offer::Queued => {}
            Offer::Dropped => {
                let st = &mut self.stats[pkt.flow.0 as usize];
                match pkt.dir() {
                    PacketDir::Data => st.drops.forward += 1,
                    PacketDir::Ack => st.drops.ack += 1,
                }
                if let Some(tr) = &mut self.trace {
                    if tr.links.contains(&link) {
                        tr.record_drop(self.now);
                    }
                }
            }
        }
    }

    fn handle_tx_complete(&mut self, link: LinkId, pkt: Packet) {
        let l = link.0 as usize;
        // The finished packet begins propagating (its freed arena slot is
        // immediately reclaimed here — the steady-state recycle).
        let id = self.arena.alloc(pkt);
        self.events.schedule(
            self.now + self.links[l].delay(),
            Event::Propagated { link, pkt: id },
        );
        // Pull the next packet from the queue.
        if let Some((next, d)) = self.links[l].tx_complete(&pkt, self.now) {
            let next = self.arena.alloc(next);
            self.events
                .schedule(self.now + d, Event::TxComplete { link, pkt: next });
        }
    }

    fn handle_propagated(&mut self, link: LinkId, pkt: Packet) {
        if pkt.dir() == PacketDir::Ack {
            return self.handle_ack_propagated(pkt);
        }
        // Corruption destroys the packet *after* it crossed the link: it
        // consumed serialization capacity and queue space (unlike a queue
        // drop, which never transmits) but is discarded at the far end.
        // Fault processes exist only on forward links; a reverse_data
        // flow's data packets cross reverse links, which carry none.
        let l = link.0 as usize;
        if l < self.n_forward {
            if let Some(f) = &mut self.faults[l] {
                if let FaultSpec::Corruption { prob } = f.spec {
                    if f.rng.chance(prob) {
                        self.stats[pkt.flow.0 as usize].drops.fault += 1;
                        return;
                    }
                }
            }
        }
        let flow = pkt.flow.0 as usize;
        let route = &self.senders[flow].route;
        let next_hop = pkt.hop() as usize + 1;
        if next_hop < route.len() {
            let mut fwd = pkt;
            fwd.set_hop(next_hop as u8);
            let next_link = LinkId(route[next_hop] as u32);
            let fwd = self.arena.alloc(fwd);
            self.events.schedule(
                self.now,
                Event::Arrive {
                    link: next_link,
                    pkt: fwd,
                },
            );
            return;
        }
        debug_assert_eq!(route[pkt.hop() as usize], link.0 as usize);

        // Delivery at the receiver.
        let rx = &mut self.receivers[flow];
        if rx.epoch != pkt.epoch {
            // Stale packet from a previous burst: ignore entirely.
            return;
        }
        if rx.seen.insert(pkt.seq) {
            let delay = self.now - pkt.sent_at;
            self.stats[flow].record_delivery(pkt.size(), delay);
        }
        self.receive(flow, pkt);
    }

    /// The receiver's acknowledgment decision for a delivered data
    /// packet: the immediate per-packet selective ACK when the flow has
    /// no (non-trivial) [`ReceiverSpec`] — the historical engine, bit for
    /// bit — or the delayed-ACK state machine otherwise.
    fn receive(&mut self, flow: usize, pkt: Packet) {
        if self.receivers[flow].policy.is_none() {
            let ack = Packet::ack_for(&pkt, self.now);
            self.emit_ack(flow, ack);
            return;
        }
        // Only seq-consecutive in-order runs coalesce: a gap (or a
        // duplicate) means the held acknowledgment must go out on its
        // own before this delivery starts a new run — folding across the
        // gap would silently acknowledge sequences that never arrived.
        let breaks_run = self.receivers[flow]
            .policy
            .as_ref()
            .and_then(|p| p.held.as_ref())
            .is_some_and(|(held, _)| pkt.seq != held.seq + 1);
        if breaks_run {
            self.flush_ack(flow);
        }
        let now = self.now;
        let p = self.receivers[flow].policy.as_mut().expect("checked above");
        p.held = Some((pkt, now));
        p.pending += 1;
        // A retransmitted delivery acknowledges immediately: the sender
        // is in recovery and stretching its ACK clock would stall it.
        let flush_now = pkt.is_retx() || p.pending >= p.spec.ack_every;
        if !flush_now {
            if let Some(t) = p.spec.flush_timer_s {
                if !p.timer_armed {
                    p.timer_armed = true;
                    let gen = p.timer_gen;
                    self.events.schedule(
                        now + SimDuration::from_secs_f64(t),
                        Event::AckTimer {
                            flow: FlowId(flow as u32),
                            gen,
                        },
                    );
                }
            }
            return;
        }
        self.flush_ack(flow);
    }

    /// Emit the coalesced acknowledgment for a policy receiver's held
    /// run (no-op when nothing is held), invalidating any armed flush
    /// timer. The ACK departs *now* but echoes the held packet's arrival
    /// time, so sender RTT samples include the coalescing delay — the
    /// real cost of a delayed-ACK receiver.
    fn flush_ack(&mut self, flow: usize) {
        let Some(p) = &mut self.receivers[flow].policy else {
            return;
        };
        let Some((pkt, recv_at)) = p.held.take() else {
            return;
        };
        let batch = p.pending;
        p.pending = 0;
        p.timer_gen += 1;
        p.timer_armed = false;
        let rwnd = p.spec.rwnd_packets;
        let mut ack = Packet::ack_for(&pkt, recv_at);
        ack.batch = batch as u16;
        if let Some(w) = rwnd {
            ack.rwnd = w as u16;
        }
        self.emit_ack(flow, ack);
    }

    /// The single ACK gateway: every acknowledgment — immediate or
    /// coalesced — leaves the receiver here, over the flow's reverse
    /// tier.
    fn emit_ack(&mut self, flow: usize, ack_pkt: Packet) {
        let s = &self.senders[flow];
        if s.ack_route.is_empty() {
            // Paper model, preserved bit for bit: uncongested reverse
            // path, negligible (1 Gbps) ACK serialization.
            let arrive_at =
                self.now + s.ack_delay + SimDuration::from_secs_f64(ACK_BYTES as f64 * 8.0 / 1e9);
            let flow = ack_pkt.flow;
            let id = self.arena.alloc(ack_pkt);
            self.events
                .schedule(arrive_at, Event::AckArrive { flow, pkt: id });
        } else {
            // The ACK is a real packet: it enters the first reverse link
            // and queues, serializes and propagates like any other
            // traffic (contending with every other flow's ACKs when the
            // reverse link is shared).
            let first = LinkId(s.ack_route[0] as u32);
            let id = self.arena.alloc(ack_pkt);
            self.events.schedule(
                self.now,
                Event::Arrive {
                    link: first,
                    pkt: id,
                },
            );
        }
    }

    /// A receiver's delayed-ACK flush timer fired: emit the held partial
    /// batch, unless a flush or epoch restart already invalidated this
    /// timer generation.
    fn handle_ack_timer(&mut self, flow: FlowId, gen: u64) {
        let i = flow.0 as usize;
        let Some(p) = &mut self.receivers[i].policy else {
            return;
        };
        if gen != p.timer_gen {
            return;
        }
        p.timer_armed = false;
        self.flush_ack(i);
    }

    /// An ACK packet finished propagating across a reverse link: forward
    /// it to the next reverse hop, or deliver it to the sender (after any
    /// residual pure-delay segment from route hops without a reverse
    /// spec).
    fn handle_ack_propagated(&mut self, pkt: Packet) {
        let flow = pkt.flow.0 as usize;
        let s = &self.senders[flow];
        let next_hop = pkt.hop() as usize + 1;
        if next_hop < s.ack_route.len() {
            let mut fwd = pkt;
            fwd.set_hop(next_hop as u8);
            let next_link = LinkId(s.ack_route[next_hop] as u32);
            let fwd = self.arena.alloc(fwd);
            self.events.schedule(
                self.now,
                Event::Arrive {
                    link: next_link,
                    pkt: fwd,
                },
            );
            return;
        }
        if s.ack_residual_delay.is_zero() {
            self.handle_ack(pkt.flow, pkt.as_ack());
        } else {
            let at = self.now + s.ack_residual_delay;
            let flow = pkt.flow;
            let id = self.arena.alloc(pkt);
            self.events.schedule(at, Event::AckArrive { flow, pkt: id });
        }
    }

    fn handle_ack(&mut self, flow: FlowId, ack: Ack) {
        let i = flow.0 as usize;
        let s = &mut self.senders[i];
        if !s.on {
            return; // burst already ended; ignore late acks
        }
        let outcome = s.transport.on_ack(self.now, &ack);
        if !outcome.valid {
            return;
        }
        for _ in &outcome.newly_lost {
            self.stats[i].losses += 1;
            s.cc.on_loss(self.now);
        }
        if let Some(info) = &outcome.info {
            s.cc.on_ack(self.now, &ack, info);
        }
        self.reschedule_rto(i);
        self.try_send(i);
    }

    fn handle_rto(&mut self, flow: FlowId, gen: u64) {
        let i = flow.0 as usize;
        let s = &mut self.senders[i];
        if !s.on || gen != s.transport.rto_gen() {
            return;
        }
        if self.now < s.rto_deadline {
            return; // superseded deadline
        }
        if s.transport.in_flight() == 0 && !s.transport.has_retx_pending() {
            return;
        }
        self.stats[i].timeouts += 1;
        s.cc.on_timeout(self.now);
        s.transport.on_timeout();
        self.reschedule_rto(i);
        self.try_send(i);
    }

    fn handle_toggle(&mut self, flow: FlowId, gen: u64) {
        let i = flow.0 as usize;
        if gen != self.senders[i].toggle_gen {
            return;
        }
        let (on, next) = {
            let s = &mut self.senders[i];
            let mut rng = s.rng.fork(0xAAAA ^ self.now.as_nanos());
            s.workload.toggle(self.now, &mut rng)
        };
        if let Some(t) = next {
            let gen = self.senders[i].toggle_gen;
            self.events.schedule(t, Event::WorkloadToggle { flow, gen });
        }
        if on && !self.senders[i].on {
            self.turn_on(i);
        } else if !on && self.senders[i].on {
            self.turn_off(i);
        }
    }

    /// A transfer arrives at an unblocked (M/G/∞) churn slot: draw the
    /// next Poisson interarrival and this transfer's exponential
    /// duration, bump the concurrent-transfer count, and turn the slot ON
    /// if it was idle. Arrivals never block — overlapping transfers
    /// extend the slot's busy period.
    fn handle_flow_arrival(&mut self, flow: FlowId, gen: u64) {
        let i = flow.0 as usize;
        if gen != self.senders[i].toggle_gen {
            return;
        }
        let (next_arrival, duration) = {
            let s = &mut self.senders[i];
            let (lambda, d) = s.workload.mginf_rates().expect("M/G/inf churn slot");
            let mut rng = s.rng.fork(0xBBBB ^ self.now.as_nanos());
            // Clamp zero-length draws to 1 µs (same guard as toggles): a
            // zero interarrival would re-fire at this instant with the
            // identical RNG fork and spin forever.
            let clamp = |d: SimDuration| {
                if d.is_zero() {
                    SimDuration::from_micros(1)
                } else {
                    d
                }
            };
            (
                clamp(rng.exp_duration(SimDuration::from_secs_f64(1.0 / lambda))),
                clamp(rng.exp_duration(SimDuration::from_secs_f64(d))),
            )
        };
        self.events
            .schedule(self.now + next_arrival, Event::FlowArrival { flow, gen });
        self.events
            .schedule(self.now + duration, Event::FlowDeparture { flow, gen });
        self.senders[i].active_flows += 1;
        if self.senders[i].active_flows == 1 {
            self.turn_on(i);
        }
    }

    /// One transfer of an unblocked churn slot completes; the slot turns
    /// OFF when the last concurrent transfer drains.
    fn handle_flow_departure(&mut self, flow: FlowId, gen: u64) {
        let i = flow.0 as usize;
        if gen != self.senders[i].toggle_gen {
            return;
        }
        let s = &mut self.senders[i];
        debug_assert!(s.active_flows > 0, "departure without arrival");
        s.active_flows -= 1;
        if s.active_flows == 0 {
            self.turn_off(i);
        }
    }

    fn turn_on(&mut self, i: usize) {
        let s = &mut self.senders[i];
        s.on = true;
        s.on_tracker.turn_on(self.now);
        let epoch = s.transport.start_epoch();
        s.cc.reset(self.now);
        s.last_send = None;
        s.rto_deadline = SimTime::MAX;
        let rx = &mut self.receivers[i];
        rx.epoch = epoch;
        rx.seen.clear();
        if let Some(p) = &mut rx.policy {
            p.reset();
        }
        self.try_send(i);
    }

    fn turn_off(&mut self, i: usize) {
        let s = &mut self.senders[i];
        s.on = false;
        let d = s.on_tracker.turn_off(self.now);
        self.stats[i].on_time += d;
        s.transport.abort();
        s.rto_deadline = SimTime::MAX;
    }

    /// Send as many packets as window and pacing allow; schedule a pacing
    /// wake-up if the window has room but pacing blocks.
    fn try_send(&mut self, i: usize) {
        loop {
            let s = &mut self.senders[i];
            if !s.on {
                return;
            }
            // Effective window: the congestion window, capped by the
            // receiver's advertised window when one has been seen this
            // epoch.
            let cwnd = s.cc.window().floor().max(0.0) as usize;
            let window = match s.transport.peer_rwnd() {
                Some(r) => cwnd.min(r as usize),
                None => cwnd,
            };
            if s.transport.in_flight() >= window {
                return;
            }
            // Pacing check.
            let intersend = s.cc.intersend();
            if let (Some(last), false) = (s.last_send, intersend.is_zero()) {
                let allowed = last + intersend;
                if allowed > self.now {
                    if s.pending_wake.is_none_or(|w| allowed < w) {
                        s.pending_wake = Some(allowed);
                        self.events.schedule(
                            allowed,
                            Event::SenderWake {
                                flow: FlowId(i as u32),
                            },
                        );
                    }
                    return;
                }
            }
            let Some(pkt) = s.transport.produce(self.now, window) else {
                return;
            };
            s.last_send = Some(self.now);
            self.stats[i].transmissions += 1;
            if pkt.is_retx() {
                self.stats[i].retransmissions += 1;
            }
            let first_link = LinkId(s.route[0] as u32);
            let had_outstanding = s.transport.in_flight() > 1;
            let id = self.arena.alloc(pkt);
            self.events.schedule(
                self.now,
                Event::Arrive {
                    link: first_link,
                    pkt: id,
                },
            );
            if !had_outstanding {
                self.reschedule_rto(i);
            }
        }
    }

    fn reschedule_rto(&mut self, i: usize) {
        let s = &mut self.senders[i];
        if s.transport.in_flight() == 0 && !s.transport.has_retx_pending() {
            s.transport.bump_rto_gen();
            s.rto_deadline = SimTime::MAX;
            return;
        }
        let base = s.transport.oldest_outstanding_at().unwrap_or(self.now);
        let deadline = base.max(self.now) + s.transport.rto();
        s.rto_deadline = deadline;
        let gen = s.transport.rto_gen();
        self.events.schedule(
            deadline,
            Event::RtoCheck {
                flow: FlowId(i as u32),
                gen,
            },
        );
    }

    /// An outage blackout begins: stop the link and schedule its return.
    fn handle_link_down(&mut self, link: LinkId) {
        let l = link.0 as usize;
        self.links[l].set_down();
        let Some(f) = &mut self.faults[l] else { return };
        let FaultSpec::Outage {
            down_s, scheduled, ..
        } = f.spec
        else {
            return;
        };
        let dwell = outage_dwell(down_s, scheduled, &mut f.rng);
        self.events
            .schedule(self.now + dwell, Event::LinkUp { link });
    }

    /// The outage ends: resume service on any held queue and schedule the
    /// next blackout.
    fn handle_link_up(&mut self, link: LinkId) {
        let l = link.0 as usize;
        if let Some((pkt, d)) = self.links[l].set_up(self.now) {
            let pkt = self.arena.alloc(pkt);
            self.events
                .schedule(self.now + d, Event::TxComplete { link, pkt });
        }
        let Some(f) = &mut self.faults[l] else { return };
        let FaultSpec::Outage {
            up_s, scheduled, ..
        } = f.spec
        else {
            return;
        };
        let dwell = outage_dwell(up_s, scheduled, &mut f.rng);
        self.events
            .schedule(self.now + dwell, Event::LinkDown { link });
    }

    fn handle_trace_sample(&mut self, end: SimTime) {
        let Some(tr) = &mut self.trace else { return };
        for (idx, &lid) in tr.links.clone().iter().enumerate() {
            let l = &self.links[lid.0 as usize];
            let sample = QueueSample {
                at: self.now,
                packets: l.queue_len_packets(),
                bytes: l.queue_len_bytes(),
                cum_drops: l.queue_stats().dropped,
            };
            tr.record(idx, sample);
        }
        let next = self.now + tr.period;
        if next <= end {
            self.events.schedule(next, Event::TraceSample);
        }
    }
}

use crate::event::fnv;

/// One outage dwell: exact for scheduled outages, exponential for Markov
/// ones, clamped to 1 µs so a degenerate draw can never schedule the
/// opposing transition at the same instant forever.
fn outage_dwell(mean_s: f64, scheduled: bool, rng: &mut SimRng) -> SimDuration {
    let d = if scheduled {
        SimDuration::from_secs_f64(mean_s)
    } else {
        rng.exp_duration(SimDuration::from_secs_f64(mean_s))
    };
    if d.is_zero() {
        SimDuration::from_micros(1)
    } else {
        d
    }
}

/// Fold one dispatched event into the order-sensitive run digest: firing
/// time, event kind, and the identifying payload (flow/link/seq/gen).
/// Packet-carrying events resolve their [`crate::arena::PktId`] through
/// `arena` — the handle is still live here because the digest folds
/// *before* dispatch frees the slot — and fold exactly the words the
/// by-value representation folded, so digests are unchanged across the
/// arena refactor.
fn fold_event(digest: u64, at: SimTime, ev: &Event, arena: &PacketArena) -> u64 {
    let digest = fnv(digest, at.as_nanos());
    match ev {
        Event::Arrive { link, pkt } => {
            let pkt = arena.get(*pkt);
            fnv(
                fnv(fnv(digest, 1), link.0 as u64),
                pkt.seq ^ ((pkt.flow.0 as u64) << 48),
            )
        }
        Event::TxComplete { link, pkt } => {
            let pkt = arena.get(*pkt);
            fnv(
                fnv(fnv(digest, 2), link.0 as u64),
                pkt.seq ^ ((pkt.flow.0 as u64) << 48),
            )
        }
        Event::Propagated { link, pkt } => {
            let pkt = arena.get(*pkt);
            fnv(
                fnv(fnv(digest, 3), link.0 as u64),
                pkt.seq ^ ((pkt.flow.0 as u64) << 48),
            )
        }
        Event::AckArrive { flow, pkt } => {
            let ack = arena.get(*pkt);
            fnv(
                fnv(fnv(digest, 4), flow.0 as u64),
                ack.seq ^ ack.tx_index.rotate_left(32),
            )
        }
        Event::SenderWake { flow } => fnv(fnv(digest, 5), flow.0 as u64),
        Event::RtoCheck { flow, gen } => fnv(fnv(fnv(digest, 6), flow.0 as u64), *gen),
        Event::WorkloadToggle { flow, gen } => fnv(fnv(fnv(digest, 7), flow.0 as u64), *gen),
        Event::TraceSample => fnv(digest, 8),
        Event::FlowArrival { flow, gen } => fnv(fnv(fnv(digest, 9), flow.0 as u64), *gen),
        Event::FlowDeparture { flow, gen } => fnv(fnv(fnv(digest, 10), flow.0 as u64), *gen),
        Event::LinkDown { link } => fnv(fnv(digest, 11), link.0 as u64),
        Event::LinkUp { link } => fnv(fnv(digest, 12), link.0 as u64),
        Event::AckTimer { flow, gen } => fnv(fnv(fnv(digest, 13), flow.0 as u64), *gen),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueSpec;
    use crate::topology::dumbbell;
    use crate::transport::AckInfo;
    use crate::workload::WorkloadSpec;

    /// Fixed-window protocol for engine tests.
    struct FixedWindow {
        w: f64,
        intersend: SimDuration,
    }

    impl CongestionControl for FixedWindow {
        fn reset(&mut self, _now: SimTime) {}
        fn on_ack(&mut self, _now: SimTime, _ack: &Ack, _info: &AckInfo) {}
        fn on_loss(&mut self, _now: SimTime) {}
        fn on_timeout(&mut self, _now: SimTime) {}
        fn window(&self) -> f64 {
            self.w
        }
        fn intersend(&self) -> SimDuration {
            self.intersend
        }
        fn name(&self) -> String {
            format!("fixed-{}", self.w)
        }
    }

    fn fixed(w: f64) -> Box<dyn CongestionControl> {
        Box::new(FixedWindow {
            w,
            intersend: SimDuration::ZERO,
        })
    }

    #[test]
    fn single_flow_saturates_link_with_big_window() {
        // 10 Mbps, 100 ms RTT, BDP ~ 83 packets; window 200 saturates.
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(200.0)], 1);
        let out = sim.run(SimDuration::from_secs(20));
        let f = &out.flows[0];
        assert!(
            f.throughput_bps > 9.2e6,
            "throughput {} should approach 10 Mbps",
            f.throughput_bps
        );
        // Standing queue of ~117 packets: delay well above propagation.
        assert!(f.avg_queueing_delay_s > 0.005);
        assert_eq!(f.drops.forward, 0);
    }

    #[test]
    fn small_window_is_rtt_limited() {
        // window 10 over 100 ms RTT = ~100 pkt/s = 1.2 Mbps
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(10.0)], 1);
        let out = sim.run(SimDuration::from_secs(20));
        let f = &out.flows[0];
        let expect = 10.0 * 1500.0 * 8.0 / 0.100;
        assert!(
            (f.throughput_bps - expect).abs() / expect < 0.08,
            "throughput {} vs rtt-limited {}",
            f.throughput_bps,
            expect
        );
        // no queueing: delay ~= propagation
        assert!(f.avg_queueing_delay_s < 0.002, "{}", f.avg_queueing_delay_s);
    }

    #[test]
    fn two_flows_share_bottleneck() {
        let net = dumbbell(
            2,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(100.0), fixed(100.0)], 7);
        let out = sim.run(SimDuration::from_secs(30));
        let t0 = out.flows[0].throughput_bps;
        let t1 = out.flows[1].throughput_bps;
        assert!((t0 + t1) > 9.2e6, "link saturated: {}", t0 + t1);
        // equal windows, equal RTT: close to equal split
        assert!(
            (t0 - t1).abs() / (t0 + t1) < 0.1,
            "fair split expected: {t0} vs {t1}"
        );
    }

    #[test]
    fn finite_buffer_drops_under_overload() {
        let net = dumbbell(
            1,
            1e6,
            0.100,
            QueueSpec::DropTail {
                capacity_bytes: Some(15_000),
            },
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(400.0)], 3);
        let out = sim.run(SimDuration::from_secs(10));
        assert!(out.flows[0].drops.forward > 0, "oversized window must drop");
        assert!(out.flows[0].retransmissions > 0, "losses get retransmitted");
        // Delivered bytes are unique: throughput can't exceed line rate.
        assert!(out.flows[0].throughput_bps <= 1.0e6 * 1.01);
    }

    #[test]
    fn pacing_limits_rate() {
        // Pacing of 10 ms/packet = 1.2 Mbps regardless of window.
        let net = dumbbell(
            1,
            100e6,
            0.050,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(
            &net,
            vec![Box::new(FixedWindow {
                w: 1000.0,
                intersend: SimDuration::from_millis(10),
            })],
            5,
        );
        let out = sim.run(SimDuration::from_secs(20));
        let expect = 1500.0 * 8.0 / 0.010;
        let tput = out.flows[0].throughput_bps;
        assert!(
            (tput - expect).abs() / expect < 0.05,
            "paced throughput {tput} vs {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let net = dumbbell(
            2,
            5e6,
            0.080,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        let run = |seed| {
            let mut sim = Simulation::new(&net, vec![fixed(50.0), fixed(50.0)], seed);
            let out = sim.run(SimDuration::from_secs(15));
            (
                out.flows[0].bytes_delivered,
                out.flows[1].bytes_delivered,
                out.events_processed,
            )
        };
        assert_eq!(run(42), run(42), "same seed, same run");
        assert_ne!(run(42), run(43), "different seed, different workload draws");
    }

    #[test]
    fn on_off_workload_reduces_on_time() {
        let net = dumbbell(
            1,
            10e6,
            0.050,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        let mut sim = Simulation::new(&net, vec![fixed(40.0)], 11);
        let out = sim.run(SimDuration::from_secs(60));
        let on = out.flows[0].on_time_s;
        assert!(on > 15.0 && on < 45.0, "duty cycle ~50%: on_time={on}");
        assert!(out.flows[0].throughput_bps > 0.0);
    }

    #[test]
    fn parking_lot_multihop_delivery() {
        let net = crate::topology::parking_lot(
            10e6,
            10e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(50.0), fixed(50.0), fixed(50.0)], 2);
        let out = sim.run(SimDuration::from_secs(20));
        // all three flows deliver
        for f in &out.flows {
            assert!(f.bytes_delivered > 0, "flow {} delivered nothing", f.flow);
        }
        // flow 0 (two hops) has roughly double the propagation delay
        assert!(out.flows[0].min_one_way_s > out.flows[1].min_one_way_s * 1.9);
    }

    #[test]
    fn trace_records_queue_series() {
        let net = dumbbell(1, 1e6, 0.100, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let mut sim = Simulation::new(&net, vec![fixed(100.0)], 1);
        sim.enable_trace(vec![LinkId(0)], SimDuration::from_millis(100));
        sim.run(SimDuration::from_secs(5));
        let tr = sim.take_trace().unwrap();
        let series = tr.series_for(LinkId(0)).unwrap();
        assert!(
            series.len() >= 40,
            "expect ~50 samples, got {}",
            series.len()
        );
        assert!(tr.peak_packets(LinkId(0)) > 50, "standing queue builds");
    }

    #[test]
    fn event_budget_stops_runaway() {
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(1000.0)], 1);
        sim.set_event_budget(10_000);
        let out = sim.run(SimDuration::from_secs(1_000));
        assert!(out.events_processed <= 10_001);
        assert!(out.truncated, "budget exhaustion must be flagged");
        // A run that completes within budget is not truncated.
        let mut sim = Simulation::new(&net, vec![fixed(10.0)], 1);
        let out = sim.run(SimDuration::from_secs(1));
        assert!(!out.truncated);
    }

    #[test]
    #[should_panic(expected = "invalid network config: flow 0 routes over unknown link 7")]
    fn malformed_route_panics_with_validation_message() {
        let mut net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        net.flows[0].route = vec![7];
        let _ = Simulation::new(&net, vec![fixed(10.0)], 1);
    }

    #[test]
    fn slow_reverse_path_throttles_ack_clock() {
        // 10 Mbps forward ≈ 833 pkt/s; a 100 kbps reverse path carries at
        // most 312 ACKs/s, so with window-clocked sending the forward
        // throughput must collapse to roughly the ACK rate.
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut asym = net.clone();
        asym.links[0].reverse = Some(crate::topology::ReverseSpec::per_flow(100e3, 0.050));
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, vec![fixed(60.0)], 9);
            sim.run(SimDuration::from_secs(20)).flows[0].throughput_bps
        };
        let (sym_tpt, asym_tpt) = (run(&net), run(&asym));
        assert!(sym_tpt > 6e6, "symmetric baseline healthy: {sym_tpt}");
        let ack_rate_limit = 100e3 / (ACK_BYTES as f64 * 8.0) * 1500.0 * 8.0;
        assert!(
            asym_tpt < ack_rate_limit * 1.05,
            "ACK-clocked throughput {asym_tpt} must respect the reverse \
             bottleneck (~{ack_rate_limit})"
        );
        assert!(asym_tpt > 0.0, "flow still progresses");
    }

    #[test]
    fn mild_asymmetry_leaves_throughput_intact() {
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let asym = net.with_reverse_slowdown(1.0);
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, vec![fixed(200.0)], 4);
            sim.run(SimDuration::from_secs(20)).flows[0].throughput_bps
        };
        let (sym_tpt, asym_tpt) = (run(&net), run(&asym));
        assert!(
            (sym_tpt - asym_tpt).abs() / sym_tpt < 0.05,
            "symmetric explicit reverse ~= implicit: {sym_tpt} vs {asym_tpt}"
        );
    }

    #[test]
    fn churn_workload_runs_and_idles() {
        let net = dumbbell(
            2,
            10e6,
            0.050,
            QueueSpec::infinite(),
            WorkloadSpec::churn(0.5, 1.0),
        );
        let mut sim = Simulation::new(&net, vec![fixed(40.0), fixed(40.0)], 13);
        let out = sim.run(SimDuration::from_secs(60));
        // duty cycle λd/(1+λd) = 1/3: on_time well inside (0, 60)
        for f in &out.flows {
            assert!(
                f.on_time_s > 5.0 && f.on_time_s < 40.0,
                "on={}",
                f.on_time_s
            );
            assert!(f.bytes_delivered > 0);
        }
    }

    #[test]
    fn mginf_churn_overlaps_flows_per_slot() {
        // λ = 1/s, d = 1 s: blocked churn has duty λd/(1+λd) = 1/2, the
        // unblocked M/G/∞ slot is ON with probability 1 − e^{−1} ≈ 0.632.
        // Busy periods are unions of overlapping transfers, so the
        // unblocked slot must accumulate measurably more ON time.
        let run = |spec: WorkloadSpec, seed: u64| {
            let net = dumbbell(2, 10e6, 0.050, QueueSpec::infinite(), spec);
            let mut sim = Simulation::new(&net, vec![fixed(40.0), fixed(40.0)], seed);
            let out = sim.run(SimDuration::from_secs(300));
            out.flows.iter().map(|f| f.on_time_s).sum::<f64>() / 2.0 / 300.0
        };
        let blocked: f64 = (0..3)
            .map(|s| run(WorkloadSpec::churn(1.0, 1.0), s))
            .sum::<f64>()
            / 3.0;
        let unblocked: f64 = (0..3)
            .map(|s| run(WorkloadSpec::churn_mginf(1.0, 1.0), s))
            .sum::<f64>()
            / 3.0;
        assert!(
            (blocked - 0.5).abs() < 0.06,
            "blocked duty {blocked} != 1/2"
        );
        assert!(
            (unblocked - 0.632).abs() < 0.06,
            "M/G/inf duty {unblocked} != 1 - 1/e"
        );
        assert!(unblocked > blocked + 0.05, "overlap extends busy periods");
    }

    #[test]
    fn shared_reverse_link_contends_across_flows() {
        // Four senders, forward path far from saturated, but all ACKs
        // share one slow uplink: per-flow reverse channels of the same
        // rate leave each flow its full private ACK bandwidth, so the
        // shared variant must deliver materially less in aggregate.
        let base = dumbbell(
            4,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut per_flow = base.clone();
        per_flow.links[0].reverse = Some(crate::topology::ReverseSpec::per_flow(200e3, 0.050));
        let mut shared = base.clone();
        shared.links[0].reverse = Some(crate::topology::ReverseSpec::shared(
            200e3,
            0.050,
            QueueSpec::infinite(),
        ));
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, (0..4).map(|_| fixed(30.0)).collect(), 5);
            let out = sim.run(SimDuration::from_secs(20));
            out.flows.iter().map(|f| f.throughput_bps).sum::<f64>()
        };
        let (pf_tpt, sh_tpt) = (run(&per_flow), run(&shared));
        // One 200 kbps uplink carries at most 625 ACKs/s in total: the
        // ACK-clocked aggregate can't exceed ~7.5 Mbps worth of data.
        let shared_limit = 200e3 / (ACK_BYTES as f64 * 8.0) * 1500.0 * 8.0;
        assert!(
            sh_tpt < shared_limit * 1.05,
            "shared uplink caps the aggregate: {sh_tpt} vs {shared_limit}"
        );
        // Private channels: each flow has its own 200 kbps of ACK
        // bandwidth (~7.5 Mbps of data each), so the 10 Mbps forward link
        // is the binding constraint again.
        assert!(
            pf_tpt > 9e6,
            "private reverse channels leave the forward link binding: {pf_tpt}"
        );
        assert!(
            pf_tpt > sh_tpt * 1.2,
            "shared contention must cost aggregate throughput: {pf_tpt} vs {sh_tpt}"
        );
    }

    #[test]
    fn shared_reverse_queue_can_drop_acks() {
        // A shared uplink with a tiny drop-tail buffer: ACK drops are
        // accounted per flow, and the flows survive via loss recovery.
        let mut net = dumbbell(
            4,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        net.links[0].reverse = Some(crate::topology::ReverseSpec::shared(
            100e3,
            0.050,
            QueueSpec::DropTail {
                capacity_bytes: Some(400),
            },
        ));
        let mut sim = Simulation::new(&net, (0..4).map(|_| fixed(30.0)).collect(), 9);
        let out = sim.run(SimDuration::from_secs(20));
        let ack_drops: u64 = out.flows.iter().map(|f| f.drops.ack).sum();
        assert!(ack_drops > 0, "10-ACK buffer must overflow");
        assert_eq!(
            out.flows.iter().map(|f| f.drops.forward).sum::<u64>(),
            0,
            "forward path uncongested: drops are reverse-only"
        );
        for f in &out.flows {
            assert!(f.bytes_delivered > 0, "flow {} starved", f.flow);
        }
        // Reverse links are reported after the forward links.
        assert_eq!(out.forward_links, 1);
        assert_eq!(out.link_queues.len(), 2, "one shared reverse link");
        assert_eq!(out.link_queues[1].dropped, ack_drops);
    }

    #[test]
    fn explicit_default_receiver_spec_is_bit_identical() {
        // `Some(ReceiverSpec::default())` must take the same immediate-ack
        // fast path as `None`: identical event sequence, not just
        // identical aggregates.
        let net = dumbbell(
            2,
            10e6,
            0.080,
            QueueSpec::DropTail {
                capacity_bytes: Some(45_000),
            },
            WorkloadSpec::on_off_1s(),
        );
        let explicit = net.with_receiver(crate::topology::ReceiverSpec::default());
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, vec![fixed(80.0), fixed(80.0)], 17);
            sim.enable_event_digest();
            let out = sim.run(SimDuration::from_secs(20));
            (out.event_digest, out.events_processed)
        };
        assert_eq!(run(&net), run(&explicit));
    }

    #[test]
    fn delayed_ack_coalesces_the_ack_stream() {
        // ack-every-4 acknowledges each window in a quarter of the ACK
        // events, so the run dispatches materially fewer events while
        // goodput stays close (the window is generous).
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let delayed = net.with_receiver(crate::topology::ReceiverSpec::delayed(4, 0.2));
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, vec![fixed(200.0)], 1);
            let out = sim.run(SimDuration::from_secs(20));
            (out.flows[0].throughput_bps, out.events_processed)
        };
        let ((base_tpt, base_ev), (del_tpt, del_ev)) = (run(&net), run(&delayed));
        assert!(
            del_ev < base_ev * 9 / 10,
            "coalescing must shrink the event count: {del_ev} vs {base_ev}"
        );
        assert!(
            del_tpt > base_tpt * 0.9,
            "stretch ACKs keep goodput with a generous window: {del_tpt} vs {base_tpt}"
        );
    }

    #[test]
    fn flush_timer_rescues_a_stalled_partial_batch() {
        // ack_every far above the window: without a flush timer the
        // receiver sits on every batch and progress happens only through
        // retransmission timeouts; a 10 ms timer keeps the ACK clock
        // running.
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let run = |spec: crate::topology::ReceiverSpec| {
            let n = net.with_receiver(spec);
            let mut sim = Simulation::new(&n, vec![fixed(30.0)], 3);
            let out = sim.run(SimDuration::from_secs(20));
            (out.flows[0].throughput_bps, out.flows[0].timeouts)
        };
        let no_timer = crate::topology::ReceiverSpec {
            ack_every: 1000,
            flush_timer_s: None,
            rwnd_packets: None,
        };
        let (stalled_tpt, stalled_to) = run(no_timer);
        let (timer_tpt, timer_to) = run(crate::topology::ReceiverSpec::delayed(1000, 0.010));
        assert!(stalled_to > 0, "no timer: progress only via RTO");
        assert_eq!(timer_to, 0, "timer flushes keep the RTO quiet");
        assert!(
            timer_tpt > stalled_tpt * 5.0,
            "timer must rescue throughput: {timer_tpt} vs {stalled_tpt}"
        );
    }

    #[test]
    fn advertised_rwnd_clamps_the_sender_window() {
        // cwnd 100 but rwnd 5 over a 100 ms RTT: throughput collapses to
        // ~5 packets per RTT once the first advertisement arrives.
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let clamped = net.with_receiver(crate::topology::ReceiverSpec::default().with_rwnd(5));
        let run = |n: &crate::topology::NetworkConfig| {
            let mut sim = Simulation::new(n, vec![fixed(100.0)], 1);
            sim.run(SimDuration::from_secs(20)).flows[0].throughput_bps
        };
        let (open, tight) = (run(&net), run(&clamped));
        let expect = 5.0 * 1500.0 * 8.0 / 0.100;
        assert!(open > 5e6, "unclamped baseline healthy: {open}");
        assert!(
            (tight - expect).abs() / expect < 0.1,
            "rwnd-limited throughput {tight} vs {expect}"
        );
    }

    #[test]
    fn reverse_data_rides_the_reverse_links() {
        // An upload flow: data crosses the shared reverse uplink (the
        // binding 2 Mbps constraint), ACKs return over the forward
        // direction via the paper arithmetic — so the forward link
        // carries no traffic at all.
        let mut net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        net.links[0].reverse = Some(crate::topology::ReverseSpec::shared(
            2e6,
            0.050,
            QueueSpec::infinite(),
        ));
        net.flows[0].reverse_data = true;
        let mut sim = Simulation::new(&net, vec![fixed(100.0)], 6);
        let out = sim.run(SimDuration::from_secs(20));
        assert_eq!(out.link_bytes[0], 0, "forward link idle for an upload");
        assert!(out.link_bytes[1] > 0, "data rides the reverse link");
        let tpt = out.flows[0].throughput_bps;
        assert!(
            tpt > 1.8e6 && tpt <= 2e6 * 1.01,
            "upload saturates the 2 Mbps uplink: {tpt}"
        );
        // The delay floor is the reverse chain's 50 ms, not the forward 100 ms.
        assert!(
            (out.flows[0].min_one_way_s - 0.050).abs() < 1e-9,
            "min one-way follows the data path: {}",
            out.flows[0].min_one_way_s
        );
    }

    #[test]
    fn zero_window_sends_nothing() {
        let net = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        let mut sim = Simulation::new(&net, vec![fixed(0.0)], 1);
        let out = sim.run(SimDuration::from_secs(5));
        assert_eq!(out.flows[0].bytes_delivered, 0);
    }
}
