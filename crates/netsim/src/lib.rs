//! # netsim — deterministic packet-level network simulator
//!
//! The simulation substrate for the learnability-of-congestion-control
//! study. Models store-and-forward links with pluggable queue disciplines
//! (drop-tail, RED, CoDel, sfqCoDel), dumbbell and parking-lot
//! topologies, exponential ON/OFF and Poisson flow-churn workloads
//! (blocked, or unblocked M/G/∞ with overlapping transfers per slot),
//! and a sender-side reliability layer into which congestion-control
//! algorithms plug via the [`transport::CongestionControl`] trait.
//!
//! The network is bidirectional: acknowledgments are first-class
//! [`packet::Packet`]s. A link with a [`topology::ReverseSpec`] carries
//! its ACK traffic over a real reverse [`link::Link`] with its own queue
//! discipline — per-flow private channels, or one shared reverse link on
//! which every flow's ACKs queue, interleave and drop together (see
//! [`sim`] for the three compatibility tiers; without a spec, the
//! paper's uncongested-reverse arithmetic is preserved bit for bit).
//!
//! Every run is a pure function of `(NetworkConfig, protocols, seed)`:
//! integer nanosecond time, a deterministic event queue, and per-component
//! forked RNG streams make results bit-identical across runs and platforms.
//!
//! ```
//! use netsim::prelude::*;
//!
//! // 10 Mbps dumbbell, 100 ms RTT, one always-on sender with a fixed
//! // 20-packet window.
//! struct Fixed;
//! impl CongestionControl for Fixed {
//!     fn reset(&mut self, _: SimTime) {}
//!     fn on_ack(&mut self, _: SimTime, _: &Ack, _: &AckInfo) {}
//!     fn on_loss(&mut self, _: SimTime) {}
//!     fn on_timeout(&mut self, _: SimTime) {}
//!     fn window(&self) -> f64 { 20.0 }
//!     fn intersend(&self) -> SimDuration { SimDuration::ZERO }
//!     fn name(&self) -> String { "fixed".into() }
//! }
//!
//! let net = dumbbell(1, 10e6, 0.100, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
//! let mut sim = Simulation::new(&net, vec![Box::new(Fixed)], 1);
//! let out = sim.run(SimDuration::from_secs(10));
//! assert!(out.flows[0].throughput_bps > 1e6);
//! ```
//!
//! # Performance architecture
//!
//! The simulator is the denominator of every experiment *and* of every
//! candidate evaluation inside Remy training, so the per-event constant
//! factor is engineered deliberately:
//!
//! * **No hashing or tree searches on the packet path.** Receiver
//!   duplicate detection uses [`seqtrack::SeqTracker`], a sliding bitmap
//!   over the near-sequential sequence space (O(1) insert, no per-
//!   delivery re-hash). The reliability layer's in-flight maps are dense
//!   sliding-window vectors keyed by sequence number / transmission
//!   index rather than `BTreeMap`s, and the RTO's oldest-outstanding
//!   query is an O(1) front lookup instead of a scan over the window.
//! * **Allocation-free packet events.** The 48-byte `Packet` never rides
//!   inside the event enum: scheduled packets park in a generation-
//!   indexed arena ([`arena::PacketArena`]) and events carry an 8-byte
//!   handle, so the calendar queue moves slim payloads and the
//!   Arrive → TxComplete → Propagated chain recycles slots through a
//!   free-list instead of touching the heap. Per-flow reliability maps
//!   are pre-sized from the route BDP; at steady state the hot handlers
//!   and the scheduler allocate nothing (tracked by the
//!   `sim_allocs_per_event_*` perf-gate metrics).
//! * **O(1) amortized event dispatch.** The engine schedules through a
//!   pluggable [`event::Scheduler`]; the default backend is a bucketed
//!   calendar queue ([`calendar::CalendarQueue`]) whose bucket width is a
//!   power-of-two nanosecond span seeded from the bottleneck
//!   serialization time and re-estimated from the live event population
//!   on every resize (see the `calendar` module docs for the tuning
//!   knobs). Buckets store `(time, seq)` keys separately from event
//!   payloads, so the scans that dominate at high standing populations
//!   touch only a dense 16-byte-per-entry key array. The previous
//!   `BinaryHeap` backend stays selectable at runtime
//!   ([`event::SchedulerKind::Heap`], or `NETSIM_SCHEDULER=heap`)
//!   as the O(log n) reference.
//! * **Determinism is load-bearing.** All of the above preserve the
//!   bit-for-bit `(config, protocols, seed) → outcome` contract that the
//!   optimizer's common-random-number comparisons rest on. Both scheduler
//!   backends realize the same `(time, insertion-seq)` total order, so
//!   even the backend choice never perturbs an outcome (property- and
//!   end-to-end-tested in `tests/proptest_scheduler.rs` and
//!   `tests/scheduler_determinism.rs`).
//!
//! Measure with `cargo bench -p bench --bench simulator` (engine event
//! throughput by protocol and by scheduler backend) and `cargo run
//! --release -p bench --bin perf_snapshot` (events/sec of a fixed
//! dumbbell under both backends, written to `BENCH_optimizer.json`).

#![deny(missing_docs)]

pub mod arena;
pub mod calendar;
pub mod codel;
pub mod event;
pub mod flow;
pub mod link;
pub mod packet;
pub mod queue;
pub mod red;
pub mod rng;
pub mod seqtrack;
pub mod sfq_codel;
pub mod sim;
pub mod time;
pub mod topology;
pub mod trace;
pub mod transport;
pub mod workload;

/// Common imports for simulator users.
pub mod prelude {
    pub use crate::event::SchedulerKind;
    pub use crate::flow::{FlowOutcome, FlowStats};
    pub use crate::packet::{Ack, FlowId, LinkId, Packet, ACK_BYTES, DATA_PACKET_BYTES};
    pub use crate::queue::QueueSpec;
    pub use crate::rng::SimRng;
    pub use crate::sim::{RunOutcome, Simulation};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{
        dumbbell, dumbbell_mixed, parking_lot, FaultSpec, FlowSpec, LinkSpec, NetworkConfig,
        ReceiverSpec, ReverseSpec,
    };
    pub use crate::transport::{AckInfo, CongestionControl};
    pub use crate::workload::WorkloadSpec;
}
