//! Generation-indexed arena for packets parked in the event queue.
//!
//! Every data packet and every real (reverse-link) acknowledgment spends
//! most of its simulated life *inside the scheduler* — as the payload of
//! an `Arrive`, `TxComplete`, `Propagated` or `AckArrive` event waiting
//! to fire. Carrying the full 48-byte [`Packet`] by value in
//! [`crate::event::Event`] made the event enum the widest thing the
//! calendar queue moves: every bucket insert, swap-remove and today-
//! buffer drain memmoved the packet along with it.
//!
//! The arena breaks that coupling. The engine parks the packet here when
//! it schedules the event and gets back a [`PktId`] — an 8-byte
//! slot-plus-generation handle that the event carries instead. When the
//! event fires, the engine takes the packet back out and the slot returns
//! to a free-list for the next schedule. At steady state the hot
//! Arrive → TxComplete → Propagated → Arrive chain recycles the same few
//! slots per in-flight packet and the arena performs **zero heap
//! allocations** — the slab grows to the peak number of simultaneously
//! scheduled packets and then stays put.
//!
//! The generation tag exists for safety, not semantics: each slot counts
//! how many times it has been freed, and a [`PktId`] is only valid while
//! its generation matches. A logic bug that double-frees or uses a stale
//! handle trips an assertion instead of silently reading a recycled
//! packet.

use crate::packet::Packet;

/// Handle to a packet parked in a [`PacketArena`].
///
/// Copyable and 8 bytes wide — this is what packet-carrying events store
/// instead of the packet itself. A handle is valid from
/// [`PacketArena::alloc`] until the matching [`PacketArena::take`];
/// using it after that trips the generation check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PktId {
    /// Index into the arena's slot slab.
    slot: u32,
    /// Generation the slot had when this handle was issued.
    gen: u32,
}

/// Slab of in-queue packets with a free-list (see the module docs).
#[derive(Debug, Default)]
pub struct PacketArena {
    /// `(generation, packet)` per slot. The generation increments on
    /// every free, invalidating outstanding handles to the old tenant.
    slots: Vec<(u32, Packet)>,
    /// Slots available for reuse.
    free: Vec<u32>,
    /// Currently parked packets (`slots.len() - free.len()`).
    live: usize,
}

impl PacketArena {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Park `pkt` and return its handle, reusing a freed slot when one
    /// exists (the steady-state path: no allocation, no slab growth).
    #[inline]
    pub fn alloc(&mut self, pkt: Packet) -> PktId {
        self.live += 1;
        if let Some(slot) = self.free.pop() {
            let s = &mut self.slots[slot as usize];
            s.1 = pkt;
            PktId { slot, gen: s.0 }
        } else {
            let slot = u32::try_from(self.slots.len()).expect("packet arena overflow");
            self.slots.push((0, pkt));
            PktId { slot, gen: 0 }
        }
    }

    /// Read a parked packet without freeing it (the digest path).
    #[inline]
    pub fn get(&self, id: PktId) -> &Packet {
        let (gen, pkt) = &self.slots[id.slot as usize];
        debug_assert_eq!(*gen, id.gen, "stale PktId read");
        pkt
    }

    /// Remove and return the packet, retiring the handle. The slot's
    /// generation bumps and the slot joins the free-list.
    ///
    /// # Panics
    /// If `id` was already taken (generation mismatch) — that is a
    /// double-free in the engine's event accounting, never recoverable.
    #[inline]
    pub fn take(&mut self, id: PktId) -> Packet {
        let s = &mut self.slots[id.slot as usize];
        assert_eq!(s.0, id.gen, "PktId taken twice");
        s.0 = s.0.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        s.1
    }

    /// Number of packets currently parked.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Peak slab size so far — the high-water mark of simultaneously
    /// parked packets (allocation footprint of the run).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::FlowId;
    use crate::time::SimTime;

    fn pkt(seq: u64) -> Packet {
        Packet::data(FlowId(1), seq, 0, SimTime::ZERO, seq, false)
    }

    #[test]
    fn take_returns_what_alloc_parked() {
        let mut a = PacketArena::new();
        let id0 = a.alloc(pkt(10));
        let id1 = a.alloc(pkt(11));
        assert_eq!(a.live(), 2);
        assert_eq!(a.get(id1).seq, 11);
        assert_eq!(a.take(id0).seq, 10);
        assert_eq!(a.take(id1).seq, 11);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn freed_slots_recycle_without_growing_the_slab() {
        let mut a = PacketArena::new();
        // A window of 4 packets cycling through schedule/fire 100 times
        // must never need a 5th slot.
        let mut ids: Vec<PktId> = (0..4).map(|s| a.alloc(pkt(s))).collect();
        for round in 1..100u64 {
            for id in std::mem::take(&mut ids) {
                let p = a.take(id);
                ids.push(a.alloc(pkt(p.seq + 4 * round)));
            }
        }
        assert_eq!(a.capacity(), 4, "steady state recycles, never grows");
        assert_eq!(a.live(), 4);
    }

    #[test]
    #[should_panic(expected = "PktId taken twice")]
    fn double_take_is_caught_by_the_generation_tag() {
        let mut a = PacketArena::new();
        let id = a.alloc(pkt(1));
        let _ = a.take(id);
        // The slot may even be re-occupied by a new tenant; the stale
        // handle must still be rejected.
        let _ = a.alloc(pkt(2));
        let _ = a.take(id);
    }

    #[test]
    fn generations_distinguish_successive_tenants() {
        let mut a = PacketArena::new();
        let id0 = a.alloc(pkt(1));
        a.take(id0);
        let id1 = a.alloc(pkt(2));
        assert_ne!(id0, id1, "same slot, different generation");
        assert_eq!(a.get(id1).seq, 2);
        assert_eq!(a.capacity(), 1);
    }
}
