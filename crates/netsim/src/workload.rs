//! Application workload models.
//!
//! The paper's workload (§3.1, item 3) is an ON/OFF process: a sender is
//! "on" for an exponentially distributed duration, then "off" for another
//! exponential duration. Fig 8 additionally uses a deterministic schedule
//! (TCP cross-traffic switching on at exactly t = 5 s and off at t = 10 s).

use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Declarative workload configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSpec {
    /// Sender always has offered load.
    AlwaysOn,
    /// Exponential ON/OFF process with the given mean durations (seconds).
    /// The process starts OFF and draws its first ON arrival from the OFF
    /// distribution, so contending senders come up at staggered times.
    OnOff {
        /// Mean ON (transmitting) duration, seconds.
        mean_on_s: f64,
        /// Mean OFF (silent) duration, seconds.
        mean_off_s: f64,
    },
    /// Deterministic state switchpoints: `(time_s, on)` pairs, sorted by
    /// time. State before the first switchpoint is OFF.
    Schedule(Vec<(f64, bool)>),
    /// Flow churn: this sender slot hosts a Poisson process of short-lived
    /// flows. Flows arrive at `arrival_rate_hz` and each transfers for an
    /// exponentially distributed duration with mean `mean_duration_s`.
    ///
    /// With `unblocked: false` (the serde default), arrivals while a flow
    /// is in progress are *blocked*: by memorylessness of the exponential,
    /// the slot behaves as an ON/OFF process with mean ON
    /// `mean_duration_s` and mean OFF `1 / arrival_rate_hz` (duty cycle
    /// `λ·d / (1 + λ·d)`). The spec is kept distinct so churn sweeps
    /// express the *arrival rate* as data.
    ///
    /// With `unblocked: true`, the slot is an M/G/∞ station: arrivals are
    /// never blocked, concurrent transfers overlap (the engine counts
    /// them per slot), and the slot offers load while *any* transfer is
    /// active — ON exactly during the M/G/∞ busy periods, with
    /// stationary ON probability `1 − e^(−λ·d)`.
    Churn {
        /// Poisson flow arrival rate, per second.
        arrival_rate_hz: f64,
        /// Mean transfer duration, seconds (exponential).
        mean_duration_s: f64,
        /// M/G/∞ semantics: arrivals overlap instead of being blocked.
        #[serde(default)]
        unblocked: bool,
    },
}

impl WorkloadSpec {
    /// The paper's most common workload: mean 1 s on, 1 s off.
    pub fn on_off_1s() -> Self {
        WorkloadSpec::OnOff {
            mean_on_s: 1.0,
            mean_off_s: 1.0,
        }
    }

    /// The near-continuous load of the TCP-awareness experiment
    /// (5 s ON, 10 ms OFF).
    pub fn almost_continuous() -> Self {
        WorkloadSpec::OnOff {
            mean_on_s: 5.0,
            mean_off_s: 0.010,
        }
    }

    /// Fig 8's contrived cross-traffic: ON exactly during `[on_s, off_s)`.
    pub fn pulse(on_s: f64, off_s: f64) -> Self {
        WorkloadSpec::Schedule(vec![(on_s, true), (off_s, false)])
    }

    /// Blocked flow churn with the given Poisson arrival rate and mean
    /// flow duration (see [`WorkloadSpec::Churn`]).
    pub fn churn(arrival_rate_hz: f64, mean_duration_s: f64) -> Self {
        assert!(
            arrival_rate_hz > 0.0 && mean_duration_s > 0.0,
            "churn needs positive arrival rate and duration"
        );
        WorkloadSpec::Churn {
            arrival_rate_hz,
            mean_duration_s,
            unblocked: false,
        }
    }

    /// Unblocked M/G/∞ flow churn: Poisson arrivals that overlap within
    /// the slot instead of blocking (see [`WorkloadSpec::Churn`]).
    pub fn churn_mginf(arrival_rate_hz: f64, mean_duration_s: f64) -> Self {
        assert!(
            arrival_rate_hz > 0.0 && mean_duration_s > 0.0,
            "churn needs positive arrival rate and duration"
        );
        WorkloadSpec::Churn {
            arrival_rate_hz,
            mean_duration_s,
            unblocked: true,
        }
    }

    /// Mean dwell times of this spec as `(mean_on_s, mean_off_s)`, when the
    /// spec is a stochastic alternating process.
    fn dwell_means(&self) -> Option<(f64, f64)> {
        match *self {
            WorkloadSpec::OnOff {
                mean_on_s,
                mean_off_s,
            } => Some((mean_on_s, mean_off_s)),
            WorkloadSpec::Churn {
                arrival_rate_hz,
                mean_duration_s,
                ..
            } => Some((mean_duration_s, 1.0 / arrival_rate_hz)),
            _ => None,
        }
    }

    /// `(arrival_rate_hz, mean_duration_s)` when this spec is unblocked
    /// M/G/∞ churn — the engine routes such slots through per-slot flow
    /// multiplexing ([`crate::event::Event::FlowArrival`] /
    /// [`FlowDeparture`](crate::event::Event::FlowDeparture)) instead of
    /// the single-chain toggle machinery.
    pub fn mginf_rates(&self) -> Option<(f64, f64)> {
        match *self {
            WorkloadSpec::Churn {
                arrival_rate_hz,
                mean_duration_s,
                unblocked: true,
            } => Some((arrival_rate_hz, mean_duration_s)),
            _ => None,
        }
    }
}

/// Runtime state of a workload process.
#[derive(Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    on: bool,
    /// Remaining schedule entries (for `Schedule` specs).
    schedule: Vec<(SimTime, bool)>,
    schedule_pos: usize,
}

impl Workload {
    /// A workload state machine in its initial state for `spec`.
    pub fn new(spec: WorkloadSpec) -> Self {
        let (on, schedule) = match &spec {
            WorkloadSpec::AlwaysOn => (true, Vec::new()),
            WorkloadSpec::OnOff { .. } | WorkloadSpec::Churn { .. } => (false, Vec::new()),
            WorkloadSpec::Schedule(points) => {
                let sched: Vec<(SimTime, bool)> = points
                    .iter()
                    .map(|&(s, on)| (SimTime::from_secs_f64(s), on))
                    .collect();
                debug_assert!(
                    sched.windows(2).all(|w| w[0].0 <= w[1].0),
                    "schedule must be time-sorted"
                );
                (false, sched)
            }
        };
        Workload {
            spec,
            on,
            schedule,
            schedule_pos: 0,
        }
    }

    /// Whether the sender currently has offered load.
    pub fn is_on(&self) -> bool {
        self.on
    }

    /// See [`WorkloadSpec::mginf_rates`].
    pub fn mginf_rates(&self) -> Option<(f64, f64)> {
        self.spec.mginf_rates()
    }

    /// Time of the first toggle after simulation start, if any.
    pub fn first_toggle(&mut self, rng: &mut SimRng) -> Option<SimTime> {
        match &self.spec {
            WorkloadSpec::AlwaysOn => None,
            WorkloadSpec::OnOff { .. } | WorkloadSpec::Churn { .. } => {
                let (_, mean_off_s) = self.spec.dwell_means().expect("stochastic spec");
                Some(SimTime::ZERO + rng.exp_duration(SimDuration::from_secs_f64(mean_off_s)))
            }
            WorkloadSpec::Schedule(_) => self.schedule.first().map(|&(t, _)| t),
        }
    }

    /// Apply a toggle at time `now`; returns the new state and the time of
    /// the next toggle (if any).
    pub fn toggle(&mut self, now: SimTime, rng: &mut SimRng) -> (bool, Option<SimTime>) {
        match &self.spec {
            WorkloadSpec::AlwaysOn => (true, None),
            WorkloadSpec::OnOff { .. } | WorkloadSpec::Churn { .. } => {
                let (mean_on_s, mean_off_s) = self.spec.dwell_means().expect("stochastic spec");
                self.on = !self.on;
                let mean = if self.on {
                    SimDuration::from_secs_f64(mean_on_s)
                } else {
                    SimDuration::from_secs_f64(mean_off_s)
                };
                let mut dwell = rng.exp_duration(mean);
                // Zero-length dwell times would schedule a same-instant
                // re-toggle; clamp to 1 us to keep the event loop sane.
                if dwell.is_zero() {
                    dwell = SimDuration::from_micros(1);
                }
                (self.on, Some(now + dwell))
            }
            WorkloadSpec::Schedule(_) => {
                if self.schedule_pos < self.schedule.len() {
                    self.on = self.schedule[self.schedule_pos].1;
                    self.schedule_pos += 1;
                }
                let next = self.schedule.get(self.schedule_pos).map(|&(t, _)| t);
                (self.on, next)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_on_never_toggles() {
        let mut w = Workload::new(WorkloadSpec::AlwaysOn);
        let mut rng = SimRng::from_seed(1);
        assert!(w.is_on());
        assert_eq!(w.first_toggle(&mut rng), None);
    }

    #[test]
    fn on_off_alternates() {
        let mut w = Workload::new(WorkloadSpec::on_off_1s());
        let mut rng = SimRng::from_seed(2);
        assert!(!w.is_on(), "starts off");
        let t0 = w.first_toggle(&mut rng).unwrap();
        let (on, next) = w.toggle(t0, &mut rng);
        assert!(on, "first toggle turns on");
        let t1 = next.unwrap();
        assert!(t1 > t0);
        let (on, next) = w.toggle(t1, &mut rng);
        assert!(!on, "second toggle turns off");
        assert!(next.unwrap() > t1);
    }

    #[test]
    fn on_off_duty_cycle_statistics() {
        // mean 1s on / 1s off: fraction of time on should approach 1/2
        let mut w = Workload::new(WorkloadSpec::on_off_1s());
        let mut rng = SimRng::from_seed(3);
        let mut now = w.first_toggle(&mut rng).unwrap();
        let mut on_time = 0.0;
        let mut last = now;
        let mut state = false;
        for _ in 0..20_000 {
            let (on, next) = w.toggle(now, &mut rng);
            if state {
                on_time += (now - last).as_secs_f64();
            }
            last = now;
            state = on;
            now = next.unwrap();
        }
        let frac = on_time / last.as_secs_f64();
        assert!((frac - 0.5).abs() < 0.03, "duty cycle {frac} != 0.5");
    }

    #[test]
    fn churn_duty_cycle_tracks_offered_load() {
        // λ = 0.25 arrivals/s, mean duration 1 s: duty = λd/(1+λd) = 0.2.
        let mut w = Workload::new(WorkloadSpec::churn(0.25, 1.0));
        let mut rng = SimRng::from_seed(5);
        assert!(!w.is_on(), "slot starts idle");
        let mut now = w.first_toggle(&mut rng).unwrap();
        let mut on_time = 0.0;
        let mut last = now;
        let mut state = false;
        for _ in 0..20_000 {
            let (on, next) = w.toggle(now, &mut rng);
            if state {
                on_time += (now - last).as_secs_f64();
            }
            last = now;
            state = on;
            now = next.unwrap();
        }
        let frac = on_time / last.as_secs_f64();
        assert!((frac - 0.2).abs() < 0.02, "duty cycle {frac} != 0.2");
    }

    #[test]
    #[should_panic(expected = "churn needs positive arrival rate")]
    fn churn_rejects_zero_rate() {
        WorkloadSpec::churn(0.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "churn needs positive arrival rate")]
    fn churn_mginf_rejects_zero_duration() {
        WorkloadSpec::churn_mginf(1.0, 0.0);
    }

    #[test]
    fn mginf_rates_only_for_unblocked_churn() {
        assert_eq!(WorkloadSpec::churn(2.0, 0.5).mginf_rates(), None);
        assert_eq!(
            WorkloadSpec::churn_mginf(2.0, 0.5).mginf_rates(),
            Some((2.0, 0.5))
        );
        assert_eq!(WorkloadSpec::on_off_1s().mginf_rates(), None);
        let w = Workload::new(WorkloadSpec::churn_mginf(2.0, 0.5));
        assert!(!w.is_on(), "M/G/inf slot starts idle");
        assert_eq!(w.mginf_rates(), Some((2.0, 0.5)));
    }

    #[test]
    fn mginf_first_arrival_matches_blocked_draw() {
        // The first arrival of the unblocked variant is the same exp(1/λ)
        // draw as the blocked one, so sweeps share their burn-in phase.
        let mut blocked = Workload::new(WorkloadSpec::churn(0.5, 1.0));
        let mut mginf = Workload::new(WorkloadSpec::churn_mginf(0.5, 1.0));
        let t_b = blocked.first_toggle(&mut SimRng::from_seed(11)).unwrap();
        let t_u = mginf.first_toggle(&mut SimRng::from_seed(11)).unwrap();
        assert_eq!(t_b, t_u);
    }

    #[test]
    fn pre_unblocked_churn_specs_still_parse() {
        // JSON from before the `unblocked` field existed.
        let json = r#"{"Churn": {"arrival_rate_hz": 2.0, "mean_duration_s": 0.5}}"#;
        let spec: WorkloadSpec = serde_json::from_str(json).unwrap();
        assert_eq!(spec, WorkloadSpec::churn(2.0, 0.5));
        // and the new field round-trips
        let mginf = WorkloadSpec::churn_mginf(2.0, 0.5);
        let back: WorkloadSpec =
            serde_json::from_str(&serde_json::to_string(&mginf).unwrap()).unwrap();
        assert_eq!(back, mginf);
    }

    #[test]
    fn pulse_schedule() {
        let mut w = Workload::new(WorkloadSpec::pulse(5.0, 10.0));
        let mut rng = SimRng::from_seed(4);
        assert!(!w.is_on());
        let t0 = w.first_toggle(&mut rng).unwrap();
        assert_eq!(t0, SimTime::from_secs_f64(5.0));
        let (on, next) = w.toggle(t0, &mut rng);
        assert!(on);
        assert_eq!(next, Some(SimTime::from_secs_f64(10.0)));
        let (on, next) = w.toggle(next.unwrap(), &mut rng);
        assert!(!on);
        assert_eq!(next, None);
    }
}
