//! Per-flow accounting.
//!
//! The study's objective (§3.2) is computed from two per-flow quantities:
//! *throughput* — bytes successfully delivered divided by the time the
//! sender was ON — and *delay* — the average per-packet one-way delay
//! including propagation and queueing.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Per-flow drop accounting, split by *why* the packet died.
///
/// The split matters because only `forward` is congestive signal: `ack`
/// drops starve the sender of feedback without signalling congestion, and
/// `fault` drops are exogenous loss that must never masquerade as
/// congestion in a figure. AQM dequeue-time drops (CoDel sojourn drops)
/// are internal to the discipline and appear in the link's
/// [`crate::queue::QueueStats`] instead of here.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DropStats {
    /// Packets tail-dropped on the forward path (queue overflow).
    pub forward: u64,
    /// Acknowledgments tail-dropped at a reverse-link queue (only
    /// possible when a link declares a [`crate::topology::ReverseSpec`]
    /// with a finite reverse buffer).
    pub ack: u64,
    /// Packets destroyed by a [`crate::topology::FaultSpec`] process
    /// (bursty loss, outage blackout, corruption) rather than a queue
    /// overflowing.
    pub fault: u64,
}

impl DropStats {
    /// Every packet this flow lost to a queue or a fault, regardless of
    /// direction or cause.
    pub fn total(&self) -> u64 {
        self.forward + self.ack + self.fault
    }
}

/// Running statistics for one flow.
#[derive(Clone, Debug, Default)]
pub struct FlowStats {
    /// Unique payload bytes delivered to the receiver in the current epoch
    /// structure (duplicates from retransmission are not double-counted).
    pub bytes_delivered: u64,
    /// Unique packets delivered.
    pub packets_delivered: u64,
    /// Sum of per-packet one-way delays (only for counted packets).
    pub delay_sum: SimDuration,
    /// Total time the workload was ON.
    pub on_time: SimDuration,
    /// Drop counters, split by cause (see [`DropStats`]).
    pub drops: DropStats,
    /// Retransmission timeouts experienced.
    pub timeouts: u64,
    /// Packets declared lost by the reordering detector.
    pub losses: u64,
    /// Total transmissions (including retransmissions) — Fig 3's
    /// "more retransmissions than transmissions" regime shows up here.
    pub transmissions: u64,
    /// Retransmissions alone (`transmissions - first sends`).
    pub retransmissions: u64,
}

impl FlowStats {
    /// Account one in-order delivery of `bytes` with one-way `delay`.
    pub fn record_delivery(&mut self, bytes: u32, delay: SimDuration) {
        self.bytes_delivered += bytes as u64;
        self.packets_delivered += 1;
        self.delay_sum += delay;
    }

    /// Average throughput in bits/second over ON time. Returns 0 when the
    /// sender never turned on.
    pub fn throughput_bps(&self) -> f64 {
        let on = self.on_time.as_secs_f64();
        if on <= 0.0 {
            0.0
        } else {
            self.bytes_delivered as f64 * 8.0 / on
        }
    }

    /// Mean per-packet one-way delay in seconds (propagation + queueing).
    pub fn avg_delay_s(&self) -> f64 {
        if self.packets_delivered == 0 {
            0.0
        } else {
            self.delay_sum.as_secs_f64() / self.packets_delivered as f64
        }
    }
}

/// Final per-flow results handed back by [`crate::sim::Simulation::run`].
#[derive(Clone, Debug)]
pub struct FlowOutcome {
    /// Flow index within the topology.
    pub flow: usize,
    /// Bits per second over ON time.
    pub throughput_bps: f64,
    /// Mean one-way packet delay, seconds.
    pub avg_delay_s: f64,
    /// Mean queueing delay: `avg_delay - minimum one-way propagation`.
    pub avg_queueing_delay_s: f64,
    /// Minimum possible one-way delay for this flow (propagation only).
    pub min_one_way_s: f64,
    /// Application bytes delivered in order.
    pub bytes_delivered: u64,
    /// Data packets delivered in order.
    pub packets_delivered: u64,
    /// Total seconds the flow’s workload was ON.
    pub on_time_s: f64,
    /// Drop counters, split by cause (see [`DropStats`]).
    pub drops: DropStats,
    /// Retransmission timeouts experienced.
    pub timeouts: u64,
    /// Packets declared lost by the reordering detector.
    pub losses: u64,
    /// Total transmissions, retransmissions included.
    pub transmissions: u64,
    /// Retransmissions alone.
    pub retransmissions: u64,
}

impl FlowOutcome {
    /// Fold accumulated [`FlowStats`] into the final outcome record.
    pub fn from_stats(flow: usize, stats: &FlowStats, min_one_way: SimDuration) -> Self {
        let avg_delay = stats.avg_delay_s();
        FlowOutcome {
            flow,
            throughput_bps: stats.throughput_bps(),
            avg_delay_s: avg_delay,
            avg_queueing_delay_s: (avg_delay - min_one_way.as_secs_f64()).max(0.0),
            min_one_way_s: min_one_way.as_secs_f64(),
            bytes_delivered: stats.bytes_delivered,
            packets_delivered: stats.packets_delivered,
            on_time_s: stats.on_time.as_secs_f64(),
            drops: stats.drops,
            timeouts: stats.timeouts,
            losses: stats.losses,
            transmissions: stats.transmissions,
            retransmissions: stats.retransmissions,
        }
    }
}

/// Tracks ON intervals so `on_time` is exact even when the simulation ends
/// mid-burst.
#[derive(Clone, Copy, Debug, Default)]
pub struct OnTimeTracker {
    on_since: Option<SimTime>,
}

impl OnTimeTracker {
    /// Mark the flow ON starting at `now`.
    pub fn turn_on(&mut self, now: SimTime) {
        debug_assert!(self.on_since.is_none(), "double turn_on");
        self.on_since = Some(now);
    }

    /// Returns the completed interval length.
    pub fn turn_off(&mut self, now: SimTime) -> SimDuration {
        match self.on_since.take() {
            Some(s) => now - s,
            None => SimDuration::ZERO,
        }
    }

    /// Close out a dangling interval at simulation end.
    pub fn finish(&mut self, end: SimTime) -> SimDuration {
        self.turn_off(end)
    }

    /// Whether an interval is currently open.
    pub fn is_on(&self) -> bool {
        self.on_since.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_over_on_time() {
        let mut s = FlowStats::default();
        s.record_delivery(1500, SimDuration::from_millis(80));
        s.record_delivery(1500, SimDuration::from_millis(120));
        s.on_time = SimDuration::from_secs(2);
        // 3000 bytes over 2 s of ON time = 12 kbit/s
        assert!((s.throughput_bps() - 12_000.0).abs() < 1e-9);
        assert!((s.avg_delay_s() - 0.100).abs() < 1e-12);
    }

    #[test]
    fn zero_on_time_gives_zero_throughput() {
        let s = FlowStats::default();
        assert_eq!(s.throughput_bps(), 0.0);
        assert_eq!(s.avg_delay_s(), 0.0);
    }

    #[test]
    fn outcome_queueing_delay() {
        let mut s = FlowStats::default();
        s.record_delivery(1500, SimDuration::from_millis(100));
        s.on_time = SimDuration::from_secs(1);
        let o = FlowOutcome::from_stats(0, &s, SimDuration::from_millis(75));
        assert!((o.avg_queueing_delay_s - 0.025).abs() < 1e-12);
        assert!((o.min_one_way_s - 0.075).abs() < 1e-12);
    }

    #[test]
    fn on_time_tracker_intervals() {
        let mut t = OnTimeTracker::default();
        assert!(!t.is_on());
        t.turn_on(SimTime::from_secs_f64(1.0));
        assert!(t.is_on());
        let d = t.turn_off(SimTime::from_secs_f64(3.5));
        assert_eq!(d, SimDuration::from_millis(2500));
        // finish with nothing on returns zero
        assert_eq!(t.finish(SimTime::from_secs_f64(9.0)), SimDuration::ZERO);
        // dangling interval closed by finish
        t.turn_on(SimTime::from_secs_f64(5.0));
        assert_eq!(
            t.finish(SimTime::from_secs_f64(6.0)),
            SimDuration::from_secs(1)
        );
    }
}
