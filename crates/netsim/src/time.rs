//! Simulated time.
//!
//! All simulator time is kept as an integer number of nanoseconds since the
//! start of the simulation. Integer time keeps the event queue total-ordered
//! and runs bit-identical across platforms, which the study relies on for
//! reproducibility (the optimizer compares candidate protocols by re-running
//! the same scenario draws).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;
/// Nanoseconds per millisecond.
pub const NANOS_PER_MILLI: u64 = 1_000_000;
/// Nanoseconds per microsecond.
pub const NANOS_PER_MICRO: u64 = 1_000;

impl SimTime {
    /// The simulation start instant.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any reachable simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Instant from nanoseconds since simulation start.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Instant from (non-negative) seconds since simulation start.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative SimTime");
        SimTime((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Milliseconds since simulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Duration since an earlier instant. Saturates to zero if `earlier`
    /// is actually later (can happen with echoed timestamps from a
    /// pre-reset epoch; callers treat zero as "unknown").
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Instant `d` earlier, or `None` on underflow.
    pub fn checked_sub(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_sub(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// A span longer than any reachable simulation horizon.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Span from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Span from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * NANOS_PER_MICRO)
    }

    /// Span from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * NANOS_PER_MILLI)
    }

    /// Span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Span from (non-negative, finite) seconds, rounded to nanoseconds.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(
            secs >= 0.0 && secs.is_finite(),
            "invalid SimDuration: {secs}"
        );
        SimDuration((secs * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Span from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// The span in milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_MILLI as f64
    }

    /// Whether the span is zero-length.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `self - other`, saturating at zero.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale a duration by a non-negative factor.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        debug_assert!(k >= 0.0);
        SimDuration((self.0 as f64 * k).round() as u64)
    }

    /// Integer division by a count (used by CoDel's `interval / sqrt(count)`
    /// is done in float; this is for even splits).
    pub fn div_u64(self, k: u64) -> SimDuration {
        SimDuration(self.0 / k.max(1))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.since(other)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        *self = *self + other;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, other: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= other.0, "SimDuration underflow");
        SimDuration(self.0 - other.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, k: u64) -> SimDuration {
        self.div_u64(k)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= NANOS_PER_SEC {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else {
            write!(f, "{:.3}ms", self.as_millis_f64())
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        let d = SimDuration::from_millis(150);
        assert_eq!(d.as_nanos(), 150 * NANOS_PER_MILLI);
        assert!((d.as_secs_f64() - 0.150).abs() < 1e-12);
        assert!((d.as_millis_f64() - 150.0).abs() < 1e-12);
        let d2 = SimDuration::from_secs_f64(0.150);
        assert_eq!(d, d2);
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(2);
        let u = t + SimDuration::from_millis(500);
        assert_eq!((u - t).as_millis_f64(), 500.0);
        // saturating: earlier.since(later) == 0
        assert_eq!(t.since(u), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_millis(100);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(250));
        assert_eq!(d * 3, SimDuration::from_millis(300));
        assert_eq!(d / 4, SimDuration::from_millis(25));
        assert_eq!(d.div_u64(0), d, "division by zero clamps to 1");
    }

    #[test]
    fn ordering() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(1.000000001);
        assert!(a < b);
        assert!(SimTime::MAX > b);
    }

    #[test]
    fn saturating_sub_duration() {
        let a = SimDuration::from_millis(5);
        let b = SimDuration::from_millis(7);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a), SimDuration::from_millis(2));
    }
}
