//! Duplicate-delivery tracking for near-sequential sequence numbers.
//!
//! Receivers must deduplicate retransmissions when recording delivery
//! stats. Sequences within one flow epoch start at 0 and arrive almost in
//! order (reordering is bounded by the in-flight window), so a sliding
//! bitmap beats a `HashSet<u64>`: no hashing per delivery, O(1) inserts,
//! and memory bounded by the reordering span instead of the epoch length.
//!
//! The tracker keeps a `base` sequence below which *everything* has been
//! seen, plus a word-granular bitmap for `[base, base + 64·words)`. Full
//! leading words retire into `base`, so the window slides forward with
//! the flow.

use std::collections::VecDeque;

const WORD_BITS: u64 = 64;

/// Sliding-window set of seen sequence numbers.
#[derive(Debug, Default, Clone)]
pub struct SeqTracker {
    /// All sequences `< base` have been seen.
    base: u64,
    /// Bitmap covering `[base, base + 64 * words.len())`.
    words: VecDeque<u64>,
}

impl SeqTracker {
    /// An empty tracker (no sequence seen yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// Forget everything (new flow epoch; sequences restart at 0).
    pub fn clear(&mut self) {
        self.base = 0;
        self.words.clear();
    }

    /// Mark `seq` seen. Returns `true` if it was **newly** seen.
    pub fn insert(&mut self, seq: u64) -> bool {
        if seq < self.base {
            return false; // retired region: everything below base was seen
        }
        let offset = seq - self.base;
        let word = (offset / WORD_BITS) as usize;
        let bit = offset % WORD_BITS;
        if word >= self.words.len() {
            // Grow to cover the new highest sequence (span is bounded by
            // sender windows, so this stays small).
            self.words.resize(word + 1, 0);
        }
        let mask = 1u64 << bit;
        let slot = &mut self.words[word];
        if *slot & mask != 0 {
            return false;
        }
        *slot |= mask;
        // Retire full leading words: advance base so the deque stays at
        // the size of the current reordering span.
        while self.words.front() == Some(&u64::MAX) {
            self.words.pop_front();
            self.base += WORD_BITS;
        }
        true
    }

    /// Whether `seq` has been seen.
    pub fn contains(&self, seq: u64) -> bool {
        if seq < self.base {
            return true;
        }
        let offset = seq - self.base;
        let word = (offset / WORD_BITS) as usize;
        match self.words.get(word) {
            Some(w) => w & (1u64 << (offset % WORD_BITS)) != 0,
            None => false,
        }
    }

    /// Number of bitmap words currently held (diagnostics).
    pub fn span_words(&self) -> usize {
        self.words.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_inserts_retire_words() {
        let mut t = SeqTracker::new();
        for seq in 0..1000 {
            assert!(t.insert(seq), "seq {seq} should be new");
            assert!(t.contains(seq));
        }
        // Everything except the partial trailing word has retired.
        assert!(t.span_words() <= 1, "span {} words", t.span_words());
        for seq in 0..1000 {
            assert!(!t.insert(seq), "seq {seq} is a duplicate");
        }
    }

    #[test]
    fn out_of_order_and_gaps() {
        let mut t = SeqTracker::new();
        assert!(t.insert(5));
        assert!(t.insert(200));
        assert!(t.insert(0));
        assert!(!t.insert(5));
        assert!(!t.insert(200));
        assert!(t.insert(1));
        assert!(!t.contains(2));
        assert!(t.contains(200));
        // the gap keeps words alive
        assert!(t.span_words() >= 3);
        // fill the gap; leading words retire
        for seq in 0..=199 {
            t.insert(seq);
        }
        assert!(t.span_words() <= 1);
        assert!(!t.insert(137), "inside retired region");
    }

    #[test]
    fn clear_restarts_epoch() {
        let mut t = SeqTracker::new();
        for seq in 0..500 {
            t.insert(seq);
        }
        t.clear();
        assert!(!t.contains(0));
        assert!(t.insert(0), "fresh epoch sees seq 0 as new");
        assert_eq!(t.span_words(), 1);
    }

    #[test]
    fn matches_hashset_reference() {
        // Pseudo-random insert pattern with bounded reordering, checked
        // against a HashSet oracle.
        let mut t = SeqTracker::new();
        let mut seen = std::collections::HashSet::new();
        let mut x = 0x12345678u64;
        for step in 0u64..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // window of 256 around the advancing head, plus occasional dups
            let head = step / 2;
            let seq = head.saturating_sub(x % 256);
            assert_eq!(t.insert(seq), seen.insert(seq), "divergence at seq {seq}");
        }
    }
}
