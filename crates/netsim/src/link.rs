//! Store-and-forward links.
//!
//! A link serializes one packet at a time at a fixed bit rate, then the
//! packet propagates for the link's one-way delay. Packets arriving while
//! the link is busy wait in the attached queue discipline. This is the same
//! model ns-2's `DelayLink` + queue object pair implements, which the paper
//! uses for all experiments.

use crate::packet::Packet;
use crate::queue::{QueueDiscipline, QueueStats, QueuedPacket};
use crate::time::{SimDuration, SimTime};

/// What the link wants the engine to do after a packet is offered to it.
#[derive(Debug, PartialEq)]
pub enum Offer {
    /// Link was idle; packet starts serializing now and finishes after the
    /// returned transmission time.
    StartTx(SimDuration),
    /// Link busy; packet queued.
    Queued,
    /// Link busy and the queue discipline dropped the packet.
    Dropped,
}

/// A unidirectional link with an attached queue.
pub struct Link {
    /// Line rate in bits per second.
    rate_bps: f64,
    /// One-way propagation delay.
    delay: SimDuration,
    queue: Box<dyn QueueDiscipline>,
    busy: bool,
    /// Outage state: while down the link starts no new transmissions —
    /// arriving packets queue (or are destroyed by the engine, depending
    /// on the fault spec's drop mode). A packet already serializing when
    /// the link goes down finishes normally.
    down: bool,
    /// Total bytes that finished serializing (utilization accounting).
    bytes_transmitted: u64,
}

impl Link {
    /// A quiet link with the given rate, propagation delay and queue.
    pub fn new(rate_bps: f64, delay: SimDuration, queue: Box<dyn QueueDiscipline>) -> Self {
        assert!(rate_bps > 0.0, "link rate must be positive");
        Link {
            rate_bps,
            delay,
            queue,
            busy: false,
            down: false,
            bytes_transmitted: 0,
        }
    }

    /// Serialization rate in bits per second.
    pub fn rate_bps(&self) -> f64 {
        self.rate_bps
    }

    /// One-way propagation delay.
    pub fn delay(&self) -> SimDuration {
        self.delay
    }

    /// Time to serialize `bytes` onto the wire.
    pub fn tx_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 * 8.0 / self.rate_bps)
    }

    /// Typical spacing between the per-packet events this link generates
    /// while busy: one full data packet's serialization time. The engine
    /// takes the minimum over all links to seed the calendar scheduler's
    /// bucket width (see [`crate::calendar::CalendarQueue`]).
    pub fn event_spacing_hint(&self) -> SimDuration {
        self.tx_time(crate::packet::DATA_PACKET_BYTES)
    }

    /// A packet arrives at the link ingress.
    pub fn offer(&mut self, pkt: Packet, now: SimTime) -> Offer {
        if !self.busy && !self.down {
            self.busy = true;
            Offer::StartTx(self.tx_time(pkt.size()))
        } else if self.queue.enqueue(
            QueuedPacket {
                pkt,
                enqueued_at: now,
            },
            now,
        ) {
            Offer::Queued
        } else {
            Offer::Dropped
        }
    }

    /// The current packet finished serializing. Returns the next packet to
    /// transmit (engine schedules its completion) or `None` if the link
    /// goes idle.
    pub fn tx_complete(
        &mut self,
        finished: &Packet,
        now: SimTime,
    ) -> Option<(Packet, SimDuration)> {
        debug_assert!(self.busy, "tx_complete on idle link");
        self.bytes_transmitted += finished.size() as u64;
        if self.down {
            // Blackout began mid-serialization: the in-flight packet
            // finished, but nothing new starts until the link returns.
            self.busy = false;
            return None;
        }
        match self.queue.dequeue(now) {
            Some(qp) => Some((qp.pkt, self.tx_time(qp.pkt.size()))),
            None => {
                self.busy = false;
                None
            }
        }
    }

    /// Packets waiting in the ingress queue.
    pub fn queue_len_packets(&self) -> usize {
        self.queue.len_packets()
    }

    /// Bytes waiting in the ingress queue.
    pub fn queue_len_bytes(&self) -> u64 {
        self.queue.len_bytes()
    }

    /// Lifetime enqueue/drop counters of the ingress queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Total bytes that finished serializing.
    pub fn bytes_transmitted(&self) -> u64 {
        self.bytes_transmitted
    }

    /// Whether a packet is currently serializing.
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Whether the link is in a blackout.
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Begin a blackout: no new transmissions start until
    /// [`set_up`](Self::set_up). A packet currently serializing finishes
    /// normally.
    pub fn set_down(&mut self) {
        self.down = true;
    }

    /// End a blackout. If packets were held in the queue during the
    /// outage, service resumes immediately: returns the first packet and
    /// its transmission time for the engine to schedule.
    pub fn set_up(&mut self, now: SimTime) -> Option<(Packet, SimDuration)> {
        self.down = false;
        if self.busy {
            return None;
        }
        let qp = self.queue.dequeue(now)?;
        self.busy = true;
        Some((qp.pkt, self.tx_time(qp.pkt.size())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, Packet};
    use crate::queue::DropTail;

    fn pkt(seq: u64, size: u32) -> Packet {
        let data = Packet::data(FlowId(0), seq, 0, SimTime::ZERO, seq, false);
        if size == crate::packet::ACK_BYTES {
            Packet::ack_for(&data, SimTime::ZERO)
        } else {
            data
        }
    }

    fn link_10mbps() -> Link {
        Link::new(
            10e6,
            SimDuration::from_millis(50),
            Box::new(DropTail::new(Some(6000))),
        )
    }

    #[test]
    fn tx_time_matches_rate() {
        let l = link_10mbps();
        // 1500 bytes at 10 Mbps = 1.2 ms
        assert_eq!(l.tx_time(1500), SimDuration::from_micros(1200));
        assert_eq!(l.tx_time(40), SimDuration::from_micros(32));
    }

    #[test]
    fn idle_link_starts_tx_immediately() {
        let mut l = link_10mbps();
        match l.offer(pkt(0, 1500), SimTime::ZERO) {
            Offer::StartTx(d) => assert_eq!(d, SimDuration::from_micros(1200)),
            other => panic!("expected StartTx, got {other:?}"),
        }
        assert!(l.is_busy());
    }

    #[test]
    fn busy_link_queues_then_drops() {
        let mut l = link_10mbps();
        assert!(matches!(
            l.offer(pkt(0, 1500), SimTime::ZERO),
            Offer::StartTx(_)
        ));
        // capacity 6000 bytes = 4 queued packets
        for i in 1..=4 {
            assert_eq!(l.offer(pkt(i, 1500), SimTime::ZERO), Offer::Queued);
        }
        assert_eq!(l.offer(pkt(5, 1500), SimTime::ZERO), Offer::Dropped);
        assert_eq!(l.queue_len_packets(), 4);
    }

    #[test]
    fn down_link_holds_packets_and_resumes_on_up() {
        let mut l = link_10mbps();
        l.set_down();
        assert!(l.is_down());
        // Arrivals during the blackout queue instead of starting tx.
        assert_eq!(l.offer(pkt(0, 1500), SimTime::ZERO), Offer::Queued);
        assert_eq!(l.offer(pkt(1, 1500), SimTime::ZERO), Offer::Queued);
        assert!(!l.is_busy());
        // Service resumes the held queue when the link returns.
        let now = SimTime::from_secs_f64(0.5);
        let (first, d) = l.set_up(now).unwrap();
        assert_eq!(first.seq, 0);
        assert_eq!(d, SimDuration::from_micros(1200));
        assert!(l.is_busy());
        assert!(!l.is_down());
    }

    #[test]
    fn mid_serialization_blackout_finishes_current_packet_only() {
        let mut l = link_10mbps();
        let p0 = pkt(0, 1500);
        assert!(matches!(l.offer(p0, SimTime::ZERO), Offer::StartTx(_)));
        l.offer(pkt(1, 1500), SimTime::ZERO);
        l.set_down();
        // The in-flight packet completes, but the queued one must wait.
        let now = SimTime::from_secs_f64(0.0012);
        assert!(l.tx_complete(&p0, now).is_none());
        assert!(!l.is_busy());
        assert_eq!(l.queue_len_packets(), 1);
        let (next, _) = l.set_up(SimTime::from_secs_f64(0.1)).unwrap();
        assert_eq!(next.seq, 1);
    }

    #[test]
    fn tx_complete_drains_queue_in_order() {
        let mut l = link_10mbps();
        let p0 = pkt(0, 1500);
        l.offer(p0, SimTime::ZERO);
        l.offer(pkt(1, 1500), SimTime::ZERO);
        l.offer(pkt(2, 40), SimTime::ZERO);
        let now = SimTime::from_secs_f64(0.0012);
        let (next, d) = l.tx_complete(&p0, now).unwrap();
        assert_eq!(next.seq, 1);
        assert_eq!(d, SimDuration::from_micros(1200));
        let (next2, d2) = l.tx_complete(&next, now).unwrap();
        assert_eq!(next2.seq, 2);
        assert_eq!(d2, SimDuration::from_micros(32));
        assert!(l.tx_complete(&next2, now).is_none());
        assert!(!l.is_busy());
        assert_eq!(l.bytes_transmitted(), 1500 + 1500 + 40);
    }
}
