//! Time-series tracing of queue state.
//!
//! Fig 8 of the paper plots bottleneck queue occupancy over time (with
//! packet-drop markers) as TCP cross-traffic switches on and off. The
//! [`Trace`] recorder samples configured links on a fixed period.

use crate::packet::LinkId;
use crate::time::{SimDuration, SimTime};

/// One sampled point of a link's queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QueueSample {
    /// Sample time.
    pub at: SimTime,
    /// Queue occupancy in packets.
    pub packets: usize,
    /// Queue occupancy in bytes.
    pub bytes: u64,
    /// Cumulative drops at this link up to the sample time.
    pub cum_drops: u64,
}

/// Recorder configuration and storage.
#[derive(Debug)]
pub struct Trace {
    /// Which links to sample.
    pub links: Vec<LinkId>,
    /// Sampling period.
    pub period: SimDuration,
    /// Per traced link (same order as `links`): the sampled series.
    pub series: Vec<Vec<QueueSample>>,
    /// Times at which a forward-path drop occurred (any traced link).
    pub drop_times: Vec<SimTime>,
}

impl Trace {
    /// An empty recorder sampling `links` every `period`.
    pub fn new(links: Vec<LinkId>, period: SimDuration) -> Self {
        assert!(!period.is_zero(), "trace period must be positive");
        let n = links.len();
        Trace {
            links,
            period,
            series: vec![Vec::new(); n],
            drop_times: Vec::new(),
        }
    }

    /// Append a sample for traced-link index `idx`.
    pub fn record(&mut self, idx: usize, sample: QueueSample) {
        self.series[idx].push(sample);
    }

    /// Record a forward-path drop at `at`.
    pub fn record_drop(&mut self, at: SimTime) {
        self.drop_times.push(at);
    }

    /// The series for a given link id, if traced.
    pub fn series_for(&self, link: LinkId) -> Option<&[QueueSample]> {
        self.links
            .iter()
            .position(|&l| l == link)
            .map(|i| self.series[i].as_slice())
    }

    /// Peak queue occupancy (packets) observed on a link.
    pub fn peak_packets(&self, link: LinkId) -> usize {
        self.series_for(link)
            .map(|s| s.iter().map(|p| p.packets).max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// Mean queue occupancy (packets) over a time window.
    pub fn mean_packets_in(&self, link: LinkId, from: SimTime, to: SimTime) -> f64 {
        let Some(s) = self.series_for(link) else {
            return 0.0;
        };
        let pts: Vec<usize> = s
            .iter()
            .filter(|p| p.at >= from && p.at < to)
            .map(|p| p.packets)
            .collect();
        if pts.is_empty() {
            0.0
        } else {
            pts.iter().sum::<usize>() as f64 / pts.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_ms: u64, packets: usize) -> QueueSample {
        QueueSample {
            at: SimTime::ZERO + SimDuration::from_millis(at_ms),
            packets,
            bytes: packets as u64 * 1500,
            cum_drops: 0,
        }
    }

    #[test]
    fn records_and_queries() {
        let mut tr = Trace::new(vec![LinkId(0)], SimDuration::from_millis(10));
        tr.record(0, sample(0, 5));
        tr.record(0, sample(10, 9));
        tr.record(0, sample(20, 2));
        assert_eq!(tr.series_for(LinkId(0)).unwrap().len(), 3);
        assert_eq!(tr.series_for(LinkId(1)), None);
        assert_eq!(tr.peak_packets(LinkId(0)), 9);
        assert_eq!(tr.peak_packets(LinkId(9)), 0);
    }

    #[test]
    fn mean_over_window() {
        let mut tr = Trace::new(vec![LinkId(0)], SimDuration::from_millis(10));
        for (at, p) in [(0, 2), (10, 4), (20, 6), (30, 100)] {
            tr.record(0, sample(at, p));
        }
        let from = SimTime::ZERO;
        let to = SimTime::ZERO + SimDuration::from_millis(25);
        assert!((tr.mean_packets_in(LinkId(0), from, to) - 4.0).abs() < 1e-12);
        // empty window
        let far = SimTime::from_secs_f64(100.0);
        assert_eq!(tr.mean_packets_in(LinkId(0), far, far), 0.0);
    }

    #[test]
    fn drop_times_accumulate() {
        let mut tr = Trace::new(vec![LinkId(0)], SimDuration::from_millis(1));
        tr.record_drop(SimTime::from_secs_f64(1.0));
        tr.record_drop(SimTime::from_secs_f64(2.0));
        assert_eq!(tr.drop_times.len(), 2);
    }

    #[test]
    #[should_panic(expected = "trace period must be positive")]
    fn zero_period_rejected() {
        Trace::new(vec![LinkId(0)], SimDuration::ZERO);
    }
}
