//! The discrete-event core: a time-ordered queue of simulation events
//! behind a pluggable [`Scheduler`] abstraction.
//!
//! Ties at the same instant are broken by insertion order (a monotonically
//! increasing sequence number), which makes runs deterministic — a property
//! the whole study rests on, since the optimizer compares candidate
//! protocols by replaying identical scenario draws.
//!
//! Two backends implement the same `(time, insertion-seq)` total order:
//!
//! * [`BinaryHeapScheduler`] — a `BinaryHeap<Reverse<Entry>>`, O(log n)
//!   per operation. Simple, and the reference for order-equivalence tests.
//! * [`crate::calendar::CalendarQueue`] — a bucketed calendar queue,
//!   O(1) amortized insert/pop with self-resizing bucket width. The
//!   default: the event queue is the largest remaining per-event cost in
//!   the simulator, and training throughput is bounded by it.
//!
//! The backend is chosen at runtime via [`SchedulerKind`] (see
//! [`EventQueue::with_kind`]); both are provably order-equivalent (see
//! `netsim/tests/proptest_scheduler.rs`), so fixed-seed simulations are
//! bit-identical whichever backend runs them.

use crate::arena::PktId;
use crate::calendar::CalendarQueue;
use crate::packet::{FlowId, LinkId};
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen in the network simulator.
#[derive(Clone, Debug)]
pub enum Event {
    /// A packet arrives at the ingress of `link` and must be enqueued
    /// (or transmitted immediately if the link is idle).
    ///
    /// Packet-carrying events store a [`PktId`] handle into the engine's
    /// [`crate::arena::PacketArena`] rather than the packet itself, so
    /// the scheduler moves 16-byte events instead of 56-byte ones and
    /// the hot Arrive → TxComplete → Propagated chain recycles arena
    /// slots instead of copying packets through every bucket operation.
    Arrive {
        /// Link whose ingress queue receives the packet.
        link: LinkId,
        /// Arena handle of the arriving packet.
        pkt: PktId,
    },
    /// `link` finished serializing `pkt`; the packet begins propagating and
    /// the link pulls the next packet from its queue.
    TxComplete {
        /// Link that finished serialization.
        link: LinkId,
        /// Arena handle of the packet now propagating.
        pkt: PktId,
    },
    /// `pkt` finished propagating across `link` and is delivered to the far
    /// end (either the next hop or the receiver).
    Propagated {
        /// Link whose far end the packet reached.
        link: LinkId,
        /// Arena handle of the delivered packet.
        pkt: PktId,
    },
    /// An acknowledgment packet arrives back at the sender of `flow`
    /// after its pure-delay reverse segment (it converts to an
    /// [`crate::packet::Ack`] at delivery).
    AckArrive {
        /// Flow whose sender the acknowledgment reaches.
        flow: FlowId,
        /// Arena handle of the delivered acknowledgment packet.
        pkt: PktId,
    },
    /// Pacing-timer wakeup for a sender that was clocked out.
    SenderWake {
        /// Flow whose sender wakes.
        flow: FlowId,
    },
    /// Retransmission-timeout check. `gen` guards against stale timers:
    /// the event is ignored unless it matches the sender's current RTO
    /// generation.
    RtoCheck {
        /// Flow whose RTO is checked.
        flow: FlowId,
        /// RTO generation the timer was armed for.
        gen: u64,
    },
    /// The ON/OFF workload process for `flow` toggles state.
    WorkloadToggle {
        /// Flow whose workload toggles.
        flow: FlowId,
        /// Workload-timer generation the toggle was armed for.
        gen: u64,
    },
    /// A new transfer arrives at an unblocked (M/G/∞) churn slot: the
    /// slot's concurrent-flow count increments and the next Poisson
    /// arrival is drawn. `gen` guards against stale timers exactly as in
    /// [`Event::WorkloadToggle`].
    FlowArrival {
        /// Churn slot the transfer arrives at.
        flow: FlowId,
        /// Workload-timer generation the arrival was drawn for.
        gen: u64,
    },
    /// One transfer of an unblocked churn slot completes; the slot turns
    /// OFF when its concurrent-flow count reaches zero.
    FlowDeparture {
        /// Churn slot the transfer departs from.
        flow: FlowId,
        /// Workload-timer generation the departure was drawn for.
        gen: u64,
    },
    /// Periodic trace sample (queue occupancy time series, Fig 8).
    TraceSample,
    /// An [`FaultSpec::Outage`](crate::topology::FaultSpec) blackout
    /// begins on `link`: the link stops starting new transmissions.
    LinkDown {
        /// Link going dark.
        link: LinkId,
    },
    /// The outage on `link` ends: held packets resume service and the
    /// next blackout is scheduled.
    LinkUp {
        /// Link coming back up.
        link: LinkId,
    },
    /// A receiver's delayed-ACK flush timer fires for `flow`: whatever
    /// run of deliveries the receiver is still holding is acknowledged
    /// now (see [`crate::topology::ReceiverSpec::flush_timer_s`]). `gen`
    /// guards against stale timers exactly as in [`Event::RtoCheck`]:
    /// every flush bumps the receiver's timer generation, so a timer
    /// scheduled for an already-flushed batch is ignored.
    AckTimer {
        /// Flow whose receiver flushes.
        flow: FlowId,
        /// Receiver timer generation the flush was armed for.
        gen: u64,
    },
}

/// FNV-1a offset basis: the seed for the run's determinism digests.
pub(crate) const FNV_OFFSET: u64 = 0xcbf29ce484222325;

/// Fold one 64-bit word into an FNV-1a digest. One shared definition
/// serves both determinism probes (the engine's dispatch digest and the
/// transport's ack digest) so the two can never drift apart.
#[inline]
pub(crate) fn fnv(mut digest: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        digest ^= byte as u64;
        digest = digest.wrapping_mul(0x100000001b3);
    }
    digest
}

/// A scheduled event with its firing time and tie-breaking sequence.
#[derive(Debug)]
pub struct Entry {
    /// Firing time.
    pub at: SimTime,
    /// Insertion sequence number (FIFO tie-break at equal times).
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A pending-event set ordered by `(time, seq)`.
///
/// The engine assigns `seq` (strictly increasing per queue), so backends
/// never see duplicate keys; `pop` must return the entry with the
/// smallest `(at, seq)` — FIFO among same-instant events. Implementations
/// must be deterministic: the same insert/pop sequence produces the same
/// pops, bit for bit, on every platform.
pub trait Scheduler {
    /// Insert an entry. `at` may be earlier than previously popped times
    /// (the engine never does this, but order-equivalence tests do).
    fn insert(&mut self, at: SimTime, seq: u64, event: Event);

    /// Remove and return the entry with the smallest `(at, seq)`.
    fn pop(&mut self) -> Option<Entry>;

    /// Remove and return the earliest entry only if it fires exactly at
    /// `at`. Equivalent to checking `peek_time() == Some(at)` before
    /// popping — the default does exactly that — but a backend may
    /// answer from state the preceding [`Self::pop`] already computed
    /// (the calendar queue's today buffer and tie flag make this O(1)
    /// in the common case). [`EventQueue::pop_batch`] uses it to drain
    /// same-instant runs without a full peek per event.
    fn pop_at(&mut self, at: SimTime) -> Option<Entry> {
        if self.peek_time() == Some(at) {
            self.pop()
        } else {
            None
        }
    }

    /// Time of the next entry without removing it.
    fn peek_time(&self) -> Option<SimTime>;

    /// Number of pending entries.
    fn len(&self) -> usize;

    /// Whether no entries are pending.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The reference backend: a binary min-heap on `(time, seq)`.
#[derive(Debug, Default)]
pub struct BinaryHeapScheduler {
    heap: BinaryHeap<Reverse<Entry>>,
}

impl BinaryHeapScheduler {
    /// An empty heap-backed scheduler.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for BinaryHeapScheduler {
    fn insert(&mut self, at: SimTime, seq: u64, event: Event) {
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    fn pop(&mut self) -> Option<Entry> {
        self.heap.pop().map(|Reverse(e)| e)
    }

    fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }
}

/// Which event-queue backend a simulation runs on.
///
/// Both backends produce bit-identical simulations; they differ only in
/// per-event cost. `Calendar` is the default (O(1) amortized vs the
/// heap's O(log n)); `Heap` remains selectable as the reference
/// implementation and for order-equivalence regression tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulerKind {
    /// Binary min-heap (`BinaryHeap<Reverse<Entry>>`).
    Heap,
    /// Bucketed calendar queue ([`crate::calendar::CalendarQueue`]).
    #[default]
    Calendar,
}

impl SchedulerKind {
    /// Parse a backend name (`"heap"` / `"calendar"`), for CLI flags and
    /// the `NETSIM_SCHEDULER` environment override.
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s.trim().to_ascii_lowercase().as_str() {
            "heap" | "binary-heap" | "binaryheap" => Some(SchedulerKind::Heap),
            "calendar" | "calendar-queue" | "calendarqueue" => Some(SchedulerKind::Calendar),
            _ => None,
        }
    }

    /// The default backend, overridable via `NETSIM_SCHEDULER=heap|calendar`
    /// (useful for A/B-ing backends without recompiling callers).
    pub fn from_env() -> SchedulerKind {
        std::env::var("NETSIM_SCHEDULER")
            .ok()
            .and_then(|v| SchedulerKind::parse(&v))
            .unwrap_or_default()
    }

    /// [`from_env`](Self::from_env), read once per process. This is what
    /// [`crate::sim::Simulation::new`] uses, so simulations are built by
    /// the thousand without re-parsing the environment. Order
    /// equivalence makes the override observationally safe: it can only
    /// change speed, never a result.
    pub fn env_default() -> SchedulerKind {
        static CACHE: std::sync::OnceLock<SchedulerKind> = std::sync::OnceLock::new();
        *CACHE.get_or_init(SchedulerKind::from_env)
    }
}

enum Backend {
    Heap(BinaryHeapScheduler),
    Calendar(CalendarQueue),
    /// An externally supplied [`Scheduler`] implementation.
    Custom(Box<dyn Scheduler>),
}

/// Deterministic time-ordered event queue over a pluggable backend.
///
/// Owns the tie-breaking sequence counter and dispatches to the selected
/// [`Scheduler`]. The two built-in backends are enum-dispatched (no
/// virtual call on the hot path); arbitrary backends plug in through
/// [`EventQueue::custom`].
pub struct EventQueue {
    backend: Backend,
    next_seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// An event queue on the default backend ([`SchedulerKind::Calendar`]).
    pub fn new() -> Self {
        Self::with_kind(SchedulerKind::default())
    }

    /// An event queue on the chosen backend.
    pub fn with_kind(kind: SchedulerKind) -> Self {
        Self::with_kind_and_hint(kind, None)
    }

    /// An event queue on the chosen backend, with an expected inter-event
    /// spacing hint (the calendar queue seeds its bucket width from it;
    /// the heap ignores it). The queue self-tunes either way — the hint
    /// only avoids early resize churn.
    pub fn with_kind_and_hint(kind: SchedulerKind, spacing_hint: Option<SimDuration>) -> Self {
        let backend = match kind {
            SchedulerKind::Heap => Backend::Heap(BinaryHeapScheduler::new()),
            SchedulerKind::Calendar => Backend::Calendar(match spacing_hint {
                Some(h) => CalendarQueue::with_width_hint(h),
                None => CalendarQueue::new(),
            }),
        };
        EventQueue {
            backend,
            next_seq: 0,
        }
    }

    /// An event queue over an externally supplied backend.
    pub fn custom(scheduler: Box<dyn Scheduler>) -> Self {
        EventQueue {
            backend: Backend::Custom(scheduler),
            next_seq: 0,
        }
    }

    /// Which built-in backend this queue runs on (`None` for custom).
    pub fn kind(&self) -> Option<SchedulerKind> {
        match &self.backend {
            Backend::Heap(_) => Some(SchedulerKind::Heap),
            Backend::Calendar(_) => Some(SchedulerKind::Calendar),
            Backend::Custom(_) => None,
        }
    }

    /// Schedule `event` to fire at `at`.
    #[inline]
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        match &mut self.backend {
            Backend::Heap(s) => s.insert(at, seq, event),
            Backend::Calendar(s) => s.insert(at, seq, event),
            Backend::Custom(s) => s.insert(at, seq, event),
        }
    }

    /// Pop the earliest event (FIFO among same-instant events).
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        let e = match &mut self.backend {
            Backend::Heap(s) => s.pop(),
            Backend::Calendar(s) => s.pop(),
            Backend::Custom(s) => s.pop(),
        };
        e.map(|e| (e.at, e.event))
    }

    /// Pop the earliest event plus every further event scheduled for the
    /// same instant, appending their payloads to `buf` in exact pop
    /// order, and return the shared firing time (`None` when the queue
    /// is empty). `buf` is not cleared — the caller owns its lifecycle
    /// and reuses its allocation across batches.
    ///
    /// Draining a whole instant before dispatching is indistinguishable
    /// from popping one event at a time: anything the caller schedules
    /// while working through `buf` carries a later insertion seq than
    /// every event drained here, so it sorts after them even at the same
    /// instant and is picked up by the next call.
    #[inline]
    pub fn pop_batch(&mut self, buf: &mut Vec<Event>) -> Option<SimTime> {
        let first = match &mut self.backend {
            Backend::Heap(s) => s.pop(),
            Backend::Calendar(s) => s.pop(),
            Backend::Custom(s) => s.pop(),
        }?;
        let at = first.at;
        buf.push(first.event);
        loop {
            let next = match &mut self.backend {
                Backend::Heap(s) => s.pop_at(at),
                Backend::Calendar(s) => s.pop_at(at),
                Backend::Custom(s) => s.pop_at(at),
            };
            match next {
                Some(e) => buf.push(e.event),
                None => return Some(at),
            }
        }
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        match &self.backend {
            Backend::Heap(s) => s.peek_time(),
            Backend::Calendar(s) => s.peek_time(),
            Backend::Custom(s) => s.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Heap(s) => s.len(),
            Backend::Calendar(s) => s.len(),
            Backend::Custom(s) => s.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn wake(flow: u32) -> Event {
        Event::SenderWake { flow: FlowId(flow) }
    }

    fn queues_under_test() -> Vec<EventQueue> {
        vec![
            EventQueue::with_kind(SchedulerKind::Heap),
            EventQueue::with_kind(SchedulerKind::Calendar),
            EventQueue::custom(Box::new(BinaryHeapScheduler::new())),
        ]
    }

    #[test]
    fn pops_in_time_order() {
        for mut q in queues_under_test() {
            let t = |s| SimTime::from_secs_f64(s);
            q.schedule(t(3.0), wake(3));
            q.schedule(t(1.0), wake(1));
            q.schedule(t(2.0), wake(2));
            let order: Vec<f64> = std::iter::from_fn(|| q.pop())
                .map(|(at, _)| at.as_secs_f64())
                .collect();
            assert_eq!(order, vec![1.0, 2.0, 3.0]);
        }
    }

    #[test]
    fn same_instant_is_fifo() {
        for mut q in queues_under_test() {
            let t = SimTime::from_secs_f64(1.0);
            for i in 0..10 {
                q.schedule(t, wake(i));
            }
            for i in 0..10 {
                match q.pop().unwrap().1 {
                    Event::SenderWake { flow } => assert_eq!(flow, FlowId(i)),
                    other => panic!("unexpected event {other:?}"),
                }
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        for mut q in queues_under_test() {
            assert_eq!(q.peek_time(), None);
            q.schedule(SimTime::from_secs_f64(5.0), wake(0));
            q.schedule(SimTime::from_secs_f64(4.0), wake(1));
            assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(4.0)));
            assert_eq!(q.len(), 2);
            q.pop();
            assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(5.0)));
        }
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        for mut q in queues_under_test() {
            let t = |s| SimTime::ZERO + SimDuration::from_millis(s);
            q.schedule(t(10), wake(0));
            q.schedule(t(30), wake(1));
            let (at, _) = q.pop().unwrap();
            assert_eq!(at, t(10));
            // schedule something earlier than the remaining event
            q.schedule(t(20), wake(2));
            let (at, _) = q.pop().unwrap();
            assert_eq!(at, t(20));
            let (at, _) = q.pop().unwrap();
            assert_eq!(at, t(30));
            assert!(q.is_empty());
        }
    }

    #[test]
    fn pop_batch_matches_single_pops() {
        // Same schedule drained two ways must yield the same flat event
        // order, with batches exactly covering the same-instant runs.
        let schedule = |q: &mut EventQueue| {
            let t = |n: u64| SimTime::from_nanos(n);
            let mut i = 0u32;
            for &(at, count) in &[
                (100u64, 3usize),
                (200, 1),
                (200, 2),
                (5_000, 90),
                (7_000, 1),
            ] {
                for _ in 0..count {
                    q.schedule(t(at), wake(i));
                    i += 1;
                }
            }
        };
        for (mut a, mut b) in queues_under_test().into_iter().zip(queues_under_test()) {
            schedule(&mut a);
            schedule(&mut b);
            let mut batched: Vec<(u64, u32)> = Vec::new();
            let mut buf = Vec::new();
            while let Some(at) = a.pop_batch(&mut buf) {
                for ev in buf.drain(..) {
                    match ev {
                        Event::SenderWake { flow } => batched.push((at.as_nanos(), flow.0)),
                        other => panic!("unexpected event {other:?}"),
                    }
                }
                // Nothing left at this instant after a batch.
                assert_ne!(a.peek_time(), Some(at), "batch drained the instant");
            }
            let mut single: Vec<(u64, u32)> = Vec::new();
            while let Some((at, ev)) = b.pop() {
                match ev {
                    Event::SenderWake { flow } => single.push((at.as_nanos(), flow.0)),
                    other => panic!("unexpected event {other:?}"),
                }
            }
            assert_eq!(batched, single);
        }
    }

    #[test]
    fn kind_parsing_and_default() {
        assert_eq!(SchedulerKind::parse("heap"), Some(SchedulerKind::Heap));
        assert_eq!(
            SchedulerKind::parse(" Calendar "),
            Some(SchedulerKind::Calendar)
        );
        assert_eq!(SchedulerKind::parse("fibonacci"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::Calendar);
        assert_eq!(
            EventQueue::new().kind(),
            Some(SchedulerKind::Calendar),
            "default queue runs on the calendar backend"
        );
    }
}
