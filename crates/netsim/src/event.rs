//! The discrete-event core: a time-ordered queue of simulation events.
//!
//! Ties at the same instant are broken by insertion order (a monotonically
//! increasing sequence number), which makes runs deterministic — a property
//! the whole study rests on, since the optimizer compares candidate
//! protocols by replaying identical scenario draws.

use crate::packet::{Ack, FlowId, LinkId, Packet};
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Everything that can happen in the network simulator.
#[derive(Clone, Debug)]
pub enum Event {
    /// A data packet arrives at the ingress of `link` and must be enqueued
    /// (or transmitted immediately if the link is idle).
    Arrive { link: LinkId, pkt: Packet },
    /// `link` finished serializing `pkt`; the packet begins propagating and
    /// the link pulls the next packet from its queue.
    TxComplete { link: LinkId, pkt: Packet },
    /// `pkt` finished propagating across `link` and is delivered to the far
    /// end (either the next hop or the receiver).
    Propagated { link: LinkId, pkt: Packet },
    /// An ACK arrives back at the sender of `flow`.
    AckArrive { flow: FlowId, ack: Ack },
    /// Pacing-timer wakeup for a sender that was clocked out.
    SenderWake { flow: FlowId },
    /// Retransmission-timeout check. `gen` guards against stale timers:
    /// the event is ignored unless it matches the sender's current RTO
    /// generation.
    RtoCheck { flow: FlowId, gen: u64 },
    /// The ON/OFF workload process for `flow` toggles state.
    WorkloadToggle { flow: FlowId, gen: u64 },
    /// Periodic trace sample (queue occupancy time series, Fig 8).
    TraceSample,
}

#[derive(Debug)]
struct Entry {
    at: SimTime,
    seq: u64,
    event: Event,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Deterministic time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `event` to fire at `at`.
    pub fn schedule(&mut self, at: SimTime, event: Event) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { at, seq, event }));
    }

    /// Pop the earliest event (FIFO among same-instant events).
    pub fn pop(&mut self) -> Option<(SimTime, Event)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn wake(flow: u32) -> Event {
        Event::SenderWake {
            flow: FlowId(flow),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::from_secs_f64(s);
        q.schedule(t(3.0), wake(3));
        q.schedule(t(1.0), wake(1));
        q.schedule(t(2.0), wake(2));
        let order: Vec<f64> = std::iter::from_fn(|| q.pop())
            .map(|(at, _)| at.as_secs_f64())
            .collect();
        assert_eq!(order, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn same_instant_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            q.schedule(t, wake(i));
        }
        for i in 0..10 {
            match q.pop().unwrap().1 {
                Event::SenderWake { flow } => assert_eq!(flow, FlowId(i)),
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_secs_f64(5.0), wake(0));
        q.schedule(SimTime::from_secs_f64(4.0), wake(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(4.0)));
        assert_eq!(q.len(), 2);
        q.pop();
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(5.0)));
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut q = EventQueue::new();
        let t = |s| SimTime::ZERO + SimDuration::from_millis(s);
        q.schedule(t(10), wake(0));
        q.schedule(t(30), wake(1));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(10));
        // schedule something earlier than the remaining event
        q.schedule(t(20), wake(2));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(20));
        let (at, _) = q.pop().unwrap();
        assert_eq!(at, t(30));
        assert!(q.is_empty());
    }
}
