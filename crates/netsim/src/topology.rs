//! Network configurations: the topologies of the study.
//!
//! A [`NetworkConfig`] lists unidirectional links and the flows routed over
//! them. Two builders cover every topology the paper uses: the dumbbell
//! (single bottleneck, Tables 1–4, 6, 7) and the two-bottleneck parking lot
//! of Fig 5 (Table 5).
//!
//! Convention: a link's `delay_s` contributes round-trip `delay_s` to flows
//! crossing it (one-way forward propagation `delay_s / 2`, matching reverse
//! ACK propagation `delay_s / 2`). So "one link, 150 ms delay" yields the
//! paper's 150 ms minimum RTT, and the parking lot's "two links, 75 ms
//! each" gives Flow 1 a 150 ms RTT.

use crate::queue::QueueSpec;
use crate::time::SimDuration;
use crate::workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// A unidirectional link description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// Round-trip propagation contribution of this link, in seconds
    /// (one-way delay is half this value; see module docs).
    pub delay_s: f64,
    pub queue: QueueSpec,
}

impl LinkSpec {
    pub fn one_way_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.delay_s / 2.0)
    }

    /// Buffer capacity of this link's queue in bytes, substituting
    /// `bdp_multiple` bandwidth-delay products (min 30 kB) when the queue
    /// is infinite. The finite stand-in consumers need when converting to
    /// a discipline that requires a real buffer (e.g. sfqCoDel, which
    /// drops by sojourn time out of a shared finite pool).
    pub fn queue_capacity_or_bdp(&self, bdp_multiple: f64) -> u64 {
        self.queue.capacity_bytes().unwrap_or_else(|| {
            (self.rate_bps / 8.0 * self.delay_s * bdp_multiple)
                .ceil()
                .max(30_000.0) as u64
        })
    }
}

/// A sender/receiver pair and its path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Indices into [`NetworkConfig::links`], in forward-path order.
    pub route: Vec<usize>,
    pub workload: WorkloadSpec,
}

/// A complete network configuration (topology + workloads). Protocols are
/// attached separately when the simulation is built, so one config can be
/// evaluated under many protocol mixes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    pub links: Vec<LinkSpec>,
    pub flows: Vec<FlowSpec>,
}

impl NetworkConfig {
    /// Minimum round-trip time of a flow: forward propagation plus reverse
    /// ACK-path propagation (no queueing, no serialization).
    pub fn min_rtt(&self, flow: usize) -> SimDuration {
        let s: f64 = self.flows[flow]
            .route
            .iter()
            .map(|&l| self.links[l].delay_s)
            .sum();
        SimDuration::from_secs_f64(s)
    }

    /// Minimum one-way (data-path) delay of a flow.
    pub fn min_one_way(&self, flow: usize) -> SimDuration {
        self.min_rtt(flow).div_u64(2)
    }

    /// Reverse-path (ACK) propagation delay of a flow. The reverse path is
    /// modeled as uncongested pure delay: the paper's topologies place all
    /// contention on the forward direction.
    pub fn ack_delay(&self, flow: usize) -> SimDuration {
        self.min_rtt(flow).div_u64(2)
    }

    /// The rate of the slowest link on the flow's path (its bottleneck).
    pub fn bottleneck_rate(&self, flow: usize) -> f64 {
        self.flows[flow]
            .route
            .iter()
            .map(|&l| self.links[l].rate_bps)
            .fold(f64::INFINITY, f64::min)
    }

    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.flows.iter().enumerate() {
            if f.route.is_empty() {
                return Err(format!("flow {i} has an empty route"));
            }
            for &l in &f.route {
                if l >= self.links.len() {
                    return Err(format!("flow {i} routes over unknown link {l}"));
                }
            }
            if f.route.len() > u8::MAX as usize {
                return Err(format!("flow {i} route too long"));
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.rate_bps.is_nan() || l.rate_bps <= 0.0 {
                return Err(format!("link {i} has non-positive rate"));
            }
            if l.delay_s < 0.0 {
                return Err(format!("link {i} has negative delay"));
            }
        }
        Ok(())
    }
}

/// Single-bottleneck dumbbell: `n_senders` flows share one link.
///
/// * `rate_bps` — bottleneck rate.
/// * `min_rtt_s` — minimum round-trip time of every flow.
/// * `queue` — bottleneck queue discipline.
/// * `workload` — workload of every sender.
pub fn dumbbell(
    n_senders: usize,
    rate_bps: f64,
    min_rtt_s: f64,
    queue: QueueSpec,
    workload: WorkloadSpec,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![LinkSpec {
            rate_bps,
            delay_s: min_rtt_s,
            queue,
        }],
        flows: (0..n_senders)
            .map(|_| FlowSpec {
                route: vec![0],
                workload: workload.clone(),
            })
            .collect(),
    }
}

/// Dumbbell with per-flow workloads (used for mixed sender populations,
/// e.g. Tao + AIMD cross-traffic in the TCP-awareness experiment).
pub fn dumbbell_mixed(
    rate_bps: f64,
    min_rtt_s: f64,
    queue: QueueSpec,
    workloads: Vec<WorkloadSpec>,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![LinkSpec {
            rate_bps,
            delay_s: min_rtt_s,
            queue,
        }],
        flows: workloads
            .into_iter()
            .map(|w| FlowSpec {
                route: vec![0],
                workload: w,
            })
            .collect(),
    }
}

/// The two-bottleneck "parking lot" of Fig 5.
///
/// Flow 0 crosses both links (A→B→C); flow 1 contends on link 1 only; flow 2
/// on link 2 only. Each link contributes `per_link_delay_s` of round-trip
/// delay (75 ms each in the paper, so Flow 0 sees a 150 ms RTT).
pub fn parking_lot(
    rate1_bps: f64,
    rate2_bps: f64,
    per_link_delay_s: f64,
    queue1: QueueSpec,
    queue2: QueueSpec,
    workload: WorkloadSpec,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![
            LinkSpec {
                rate_bps: rate1_bps,
                delay_s: per_link_delay_s,
                queue: queue1,
            },
            LinkSpec {
                rate_bps: rate2_bps,
                delay_s: per_link_delay_s,
                queue: queue2,
            },
        ],
        flows: vec![
            FlowSpec {
                route: vec![0, 1],
                workload: workload.clone(),
            },
            FlowSpec {
                route: vec![0],
                workload: workload.clone(),
            },
            FlowSpec {
                route: vec![1],
                workload,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_rtts() {
        let net = dumbbell(
            2,
            32e6,
            0.150,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        assert_eq!(net.links.len(), 1);
        assert_eq!(net.flows.len(), 2);
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        assert_eq!(net.min_one_way(0), SimDuration::from_millis(75));
        assert_eq!(net.ack_delay(1), SimDuration::from_millis(75));
        assert_eq!(net.bottleneck_rate(0), 32e6);
        net.validate().unwrap();
    }

    #[test]
    fn parking_lot_structure() {
        let net = parking_lot(
            10e6,
            100e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        net.validate().unwrap();
        assert_eq!(net.flows[0].route, vec![0, 1]);
        // Flow 0 crosses both hops: 150 ms RTT as in the paper.
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        assert_eq!(net.min_rtt(1), SimDuration::from_millis(75));
        assert_eq!(net.min_rtt(2), SimDuration::from_millis(75));
        // Flow 0's bottleneck is the slower of the two links.
        assert_eq!(net.bottleneck_rate(0), 10e6);
        assert_eq!(net.bottleneck_rate(2), 100e6);
    }

    #[test]
    fn validation_catches_bad_routes() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.flows[0].route = vec![7];
        assert!(net.validate().is_err());
        net.flows[0].route = vec![];
        assert!(net.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_links() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.links[0].rate_bps = 0.0;
        assert!(net.validate().is_err());
    }

    #[test]
    fn queue_capacity_or_bdp_substitutes_for_infinite() {
        let finite = LinkSpec {
            rate_bps: 8e6,
            delay_s: 0.1,
            queue: QueueSpec::DropTail {
                capacity_bytes: Some(12345),
            },
        };
        assert_eq!(finite.queue_capacity_or_bdp(5.0), 12345);
        let infinite = LinkSpec {
            rate_bps: 8e6,
            delay_s: 0.1,
            queue: QueueSpec::infinite(),
        };
        // 8 Mbps * 100 ms = 100 kB BDP; 5 BDP = 500 kB.
        assert_eq!(infinite.queue_capacity_or_bdp(5.0), 500_000);
        // tiny links hit the 30 kB floor
        let tiny = LinkSpec {
            rate_bps: 1e5,
            delay_s: 0.01,
            queue: QueueSpec::infinite(),
        };
        assert_eq!(tiny.queue_capacity_or_bdp(5.0), 30_000);
    }

    #[test]
    fn config_serializes() {
        let net = dumbbell(
            2,
            15e6,
            0.150,
            QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        );
        let json = serde_json::to_string(&net).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
