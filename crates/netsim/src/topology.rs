//! Network configurations: the topologies of the study.
//!
//! A [`NetworkConfig`] lists unidirectional links and the flows routed over
//! them. Two builders cover every topology the paper uses: the dumbbell
//! (single bottleneck, Tables 1–4, 6, 7) and the two-bottleneck parking lot
//! of Fig 5 (Table 5).
//!
//! Convention: a link's `delay_s` contributes round-trip `delay_s` to flows
//! crossing it (one-way forward propagation `delay_s / 2`, matching reverse
//! ACK propagation `delay_s / 2`). So "one link, 150 ms delay" yields the
//! paper's 150 ms minimum RTT, and the parking lot's "two links, 75 ms
//! each" gives Flow 1 a 150 ms RTT.
//!
//! A link may additionally carry an explicit [`ReverseSpec`] describing an
//! *asymmetric* ACK path: its own propagation delay and a finite reverse
//! rate at which acknowledgments serialize (the classic ADSL/cable/
//! satellite "slow uplink" regime the paper never tested). The engine
//! realizes the spec as a real reverse [`crate::link::Link`] with its own
//! queue discipline: `shared: false` (the default) gives every flow a
//! private reverse channel — acknowledgments of one flow serialize one at
//! a time, never contending with other flows — while `shared: true`
//! queues *all* flows' ACKs through one reverse link, so ACK compression
//! and reverse-queue drops emerge from real contention (the
//! uplink-sharing household regime). Without a spec, the reverse path
//! stays the paper's model — uncongested pure delay of `delay_s / 2`.

use crate::queue::QueueSpec;
use crate::time::SimDuration;
use crate::workload::WorkloadSpec;
use serde::{Deserialize, Serialize};

/// Explicit reverse-direction (ACK-path) characteristics of a link.
///
/// The engine builds a real reverse [`crate::link::Link`] from this spec:
/// one private link per flow when `shared` is false (reproducing the
/// per-flow ACK serialization this field originally modelled), or one
/// link carrying every flow's ACKs when `shared` is true.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReverseSpec {
    /// Reverse line rate in bits per second; acknowledgments serialize
    /// at this rate (the asymmetry bottleneck).
    pub rate_bps: f64,
    /// One-way reverse propagation delay in seconds.
    pub delay_s: f64,
    /// Queue discipline of the reverse channel. Defaults to an infinite
    /// FIFO (ACKs never drop — the historical per-flow semantics); any
    /// [`QueueSpec`] works, so RED/CoDel/sfqCoDel can manage ACK traffic
    /// exactly as they manage data.
    #[serde(default)]
    pub queue: QueueSpec,
    /// `true`: all flows crossing the link queue their ACKs through one
    /// shared reverse link (true contention, ACK compression, shared
    /// drops). `false` (serde default, back-compatible): each flow gets a
    /// private reverse channel of this rate.
    #[serde(default)]
    pub shared: bool,
}

impl ReverseSpec {
    /// Private per-flow reverse channel with an infinite FIFO — the exact
    /// semantics `ReverseSpec { rate_bps, delay_s }` had before the
    /// reverse path became real links.
    pub fn per_flow(rate_bps: f64, delay_s: f64) -> Self {
        ReverseSpec {
            rate_bps,
            delay_s,
            queue: QueueSpec::infinite(),
            shared: false,
        }
    }

    /// Shared reverse link: every flow's ACKs through one queue.
    pub fn shared(rate_bps: f64, delay_s: f64, queue: QueueSpec) -> Self {
        ReverseSpec {
            rate_bps,
            delay_s,
            queue,
            shared: true,
        }
    }
}

/// A non-congestive fault process attached to a forward link.
///
/// Every mode draws from a per-link child of the simulation RNG, so a
/// faulted run stays a pure function of `(config, seed)` and dispatches
/// the identical event sequence on both scheduler backends. Packets a
/// fault destroys are counted per flow as `drops.fault` — never as queue
/// drops — so "the path lost it" and "the buffer overflowed" stay
/// distinguishable in every figure.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultSpec {
    /// Gilbert–Elliott two-state bursty loss. The link alternates between
    /// a good state (loss probability `loss_good`) and a bad state
    /// (`loss_bad`); after each packet the state flips with probability
    /// `good_to_bad` / `bad_to_good`. Mean burst length is
    /// `1 / bad_to_good` packets and the stationary bad-state fraction is
    /// `good_to_bad / (good_to_bad + bad_to_good)`.
    GilbertElliott {
        /// Per-packet loss probability in the good state.
        loss_good: f64,
        /// Per-packet loss probability in the bad state.
        loss_bad: f64,
        /// Per-packet probability of entering the bad state.
        good_to_bad: f64,
        /// Per-packet probability of leaving the bad state.
        bad_to_good: f64,
    },
    /// The link goes fully down for `down_s`-length blackouts separated by
    /// `up_s` of service. `scheduled: true` makes the dwells exact
    /// (deterministic square wave); otherwise both dwells are exponential
    /// with the given means (a two-state Markov outage process). While
    /// down, arriving packets are destroyed when `drop_while_down` is set,
    /// or held in the link queue (subject to its normal discipline) and
    /// released when the link returns.
    Outage {
        /// Mean (or exact, if scheduled) up dwell, seconds.
        up_s: f64,
        /// Mean (or exact, if scheduled) blackout length, seconds.
        down_s: f64,
        /// Exact square-wave dwells instead of exponential ones.
        #[serde(default)]
        scheduled: bool,
        /// Destroy packets arriving during a blackout instead of holding them.
        #[serde(default)]
        drop_while_down: bool,
    },
    /// Each packet is independently corrupted with probability `prob`
    /// *after* crossing the link: it consumes serialization capacity and
    /// queue space, then is discarded at the far end (checksum failure),
    /// unlike a queue drop which never transmits.
    Corruption {
        /// Independent per-packet corruption probability.
        prob: f64,
    },
}

impl FaultSpec {
    /// Bursty loss with a clean good state: bad-state loss `loss_bad`,
    /// entered with per-packet probability `good_to_bad` and left with
    /// `bad_to_good` (mean burst `1 / bad_to_good` packets).
    pub fn gilbert_elliott(loss_bad: f64, good_to_bad: f64, bad_to_good: f64) -> Self {
        FaultSpec::GilbertElliott {
            loss_good: 0.0,
            loss_bad,
            good_to_bad,
            bad_to_good,
        }
    }

    /// Deterministic square-wave outage: exactly `up_s` of service, then
    /// exactly `down_s` of blackout, repeating.
    pub fn outage_scheduled(up_s: f64, down_s: f64, drop_while_down: bool) -> Self {
        FaultSpec::Outage {
            up_s,
            down_s,
            scheduled: true,
            drop_while_down,
        }
    }

    /// Markov outage: exponential up/down dwells with the given means.
    pub fn outage_markov(up_s: f64, down_s: f64, drop_while_down: bool) -> Self {
        FaultSpec::Outage {
            up_s,
            down_s,
            scheduled: false,
            drop_while_down,
        }
    }

    /// Independent per-packet corruption (delivered but discarded).
    pub fn corruption(prob: f64) -> Self {
        FaultSpec::Corruption { prob }
    }
}

/// A unidirectional link description.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Line rate in bits per second.
    pub rate_bps: f64,
    /// Round-trip propagation contribution of this link, in seconds
    /// (one-way delay is half this value; see module docs).
    pub delay_s: f64,
    /// Queue discipline at the link ingress.
    pub queue: QueueSpec,
    /// Explicit asymmetric ACK path; `None` keeps the paper's symmetric
    /// uncongested reverse model. `#[serde(default)]` so configs from
    /// before this field existed still parse.
    #[serde(default)]
    pub reverse: Option<ReverseSpec>,
    /// Non-congestive fault process on the forward direction; `None` (the
    /// serde default) is bit-identical to a link from before this field
    /// existed — the engine forks no fault RNG and installs no hooks.
    #[serde(default)]
    pub fault: Option<FaultSpec>,
}

impl LinkSpec {
    /// Symmetric link (no explicit reverse path).
    pub fn symmetric(rate_bps: f64, delay_s: f64, queue: QueueSpec) -> Self {
        LinkSpec {
            rate_bps,
            delay_s,
            queue,
            reverse: None,
            fault: None,
        }
    }

    /// One-way propagation delay (`delay_s / 2`; see module docs).
    pub fn one_way_delay(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.delay_s / 2.0)
    }

    /// Reverse (ACK-path) propagation delay of this link: the explicit
    /// [`ReverseSpec`] delay when present, else the symmetric `delay_s / 2`.
    pub fn reverse_delay(&self) -> SimDuration {
        match &self.reverse {
            Some(r) => SimDuration::from_secs_f64(r.delay_s),
            None => self.one_way_delay(),
        }
    }

    /// Buffer capacity of this link's queue in bytes, substituting
    /// `bdp_multiple` bandwidth-delay products (min 30 kB) when the queue
    /// is infinite. The finite stand-in consumers need when converting to
    /// a discipline that requires a real buffer (e.g. sfqCoDel, which
    /// drops by sojourn time out of a shared finite pool).
    pub fn queue_capacity_or_bdp(&self, bdp_multiple: f64) -> u64 {
        self.queue.capacity_bytes().unwrap_or_else(|| {
            (self.rate_bps / 8.0 * self.delay_s * bdp_multiple)
                .ceil()
                .max(30_000.0) as u64
        })
    }
}

/// Receiver-side endpoint policy of one flow.
///
/// The default (`ack_every: 1`, no flush timer, no advertisement) is the
/// pre-policy engine bit for bit: every delivered data packet is answered
/// by an immediate per-packet acknowledgment. Anything else turns the
/// receiver into a small state machine inside the engine:
///
/// * **Delayed/stretch ACKs** — `ack_every: k` coalesces runs of
///   consecutive in-order deliveries and acknowledges once per `k`
///   packets (one ACK with `batch: k` covering the whole run). A
///   non-consecutive or retransmitted delivery flushes immediately, so
///   loss recovery never waits on the coalescing counter.
/// * **Flush timer** — `flush_timer_s` bounds how long a partial run may
///   be held: a timer armed at the first unacknowledged delivery flushes
///   the batch when it fires (the classic delayed-ACK timeout). Without
///   it, a stalled sender waits for its RTO, whose retransmission is
///   acked immediately.
/// * **Advertised receive window** — `rwnd_packets` stamps every ACK
///   with a receive-window advertisement; the sender's transport then
///   caps its effective window at `min(cwnd, rwnd)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReceiverSpec {
    /// Acknowledge once per this many consecutive in-order deliveries
    /// (`1` = every packet, the default; must be >= 1).
    #[serde(default = "default_ack_every")]
    pub ack_every: u32,
    /// Upper bound in seconds on how long a partial batch may be held
    /// before it is acknowledged anyway. `None` (the default) disables
    /// the timer.
    #[serde(default)]
    pub flush_timer_s: Option<f64>,
    /// Receive-window advertisement in packets carried on every ACK;
    /// `None` (the default) advertises nothing and leaves the sender
    /// congestion-window-limited only.
    #[serde(default)]
    pub rwnd_packets: Option<u32>,
}

fn default_ack_every() -> u32 {
    1
}

/// `skip_serializing_if` helper: configs predating a boolean flag omit it,
/// so the default `false` must serialize to nothing to stay byte-identical.
fn is_false(b: &bool) -> bool {
    !*b
}

impl Default for ReceiverSpec {
    fn default() -> Self {
        ReceiverSpec::immediate()
    }
}

impl ReceiverSpec {
    /// Immediate per-packet acknowledgment — the engine's historical
    /// behavior, bit-identical to configuring no receiver at all.
    pub fn immediate() -> Self {
        ReceiverSpec {
            ack_every: 1,
            flush_timer_s: None,
            rwnd_packets: None,
        }
    }

    /// Delayed/stretch ACKs: acknowledge once per `ack_every`
    /// consecutive deliveries, flushing any partial batch after
    /// `flush_timer_s` seconds.
    pub fn delayed(ack_every: u32, flush_timer_s: f64) -> Self {
        ReceiverSpec {
            ack_every,
            flush_timer_s: Some(flush_timer_s),
            rwnd_packets: None,
        }
    }

    /// Same policy with a receive-window advertisement of `packets`.
    pub fn with_rwnd(mut self, packets: u32) -> Self {
        self.rwnd_packets = Some(packets);
        self
    }

    /// Whether this spec reproduces the default immediate-ACK path
    /// exactly (the engine then skips the policy state machine
    /// entirely, keeping default configs bit-identical).
    pub fn is_immediate(&self) -> bool {
        self.ack_every <= 1 && self.rwnd_packets.is_none()
    }
}

/// A sender/receiver pair and its path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Indices into [`NetworkConfig::links`], in forward-path order.
    pub route: Vec<usize>,
    /// Offered-load process gating when this sender has data to send.
    pub workload: WorkloadSpec,
    /// Receiver-side endpoint policy; `None` (the serde default, so
    /// configs from before this field existed still parse) is immediate
    /// per-packet acknowledgment, bit-identical to the pre-policy
    /// engine.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub receiver: Option<ReceiverSpec>,
    /// `true` routes this flow's *data* over the reverse links of its
    /// route (every route link must then declare a [`ReverseSpec`]) —
    /// the upload direction of an access network, contending with
    /// everyone's ACKs on a shared uplink. Its own acknowledgments
    /// return over the forward direction via the paper's uncongested
    /// arithmetic. `false` (the serde default) is the ordinary forward
    /// data flow.
    #[serde(default, skip_serializing_if = "is_false")]
    pub reverse_data: bool,
}

/// A complete network configuration (topology + workloads). Protocols are
/// attached separately when the simulation is built, so one config can be
/// evaluated under many protocol mixes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// Unidirectional links of the topology.
    pub links: Vec<LinkSpec>,
    /// Flows routed over those links.
    pub flows: Vec<FlowSpec>,
}

impl NetworkConfig {
    /// Minimum round-trip time of a flow: forward propagation plus reverse
    /// ACK-path propagation (no queueing, no serialization).
    pub fn min_rtt(&self, flow: usize) -> SimDuration {
        self.min_one_way(flow) + self.ack_delay(flow)
    }

    /// Minimum one-way (data-path) delay of a flow.
    pub fn min_one_way(&self, flow: usize) -> SimDuration {
        self.flows[flow]
            .route
            .iter()
            .map(|&l| self.links[l].one_way_delay())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Reverse-path (ACK) propagation delay of a flow. Links without an
    /// explicit [`ReverseSpec`] keep the paper's model — uncongested pure
    /// delay mirroring the forward direction; links with one contribute
    /// their own reverse delay.
    pub fn ack_delay(&self, flow: usize) -> SimDuration {
        self.flows[flow]
            .route
            .iter()
            .map(|&l| self.links[l].reverse_delay())
            .fold(SimDuration::ZERO, |a, b| a + b)
    }

    /// Copy of this network with an explicit asymmetric ACK path on every
    /// link: the reverse rate is the forward rate divided by `slowdown`
    /// (so `slowdown = 50.0` models a 1/50× uplink) and the reverse
    /// propagation delay mirrors the forward direction, leaving the
    /// minimum RTT unchanged. `slowdown = 1.0` is the symmetric anchor of
    /// an asymmetry sweep — same propagation, but ACKs now serialize at
    /// the (finite) forward rate.
    pub fn with_reverse_slowdown(&self, slowdown: f64) -> NetworkConfig {
        assert!(
            slowdown.is_finite() && slowdown > 0.0,
            "reverse slowdown must be positive"
        );
        let mut out = self.clone();
        for link in &mut out.links {
            link.reverse = Some(ReverseSpec::per_flow(
                link.rate_bps / slowdown,
                link.delay_s / 2.0,
            ));
        }
        out
    }

    /// Copy of this network with a *shared* reverse link on every link —
    /// all flows' acknowledgments queue together through one reverse
    /// channel at `forward rate / slowdown` under the given queue
    /// discipline (built per link from `queue_for(reverse_rate_bps,
    /// link)`), with the reverse propagation mirroring the forward
    /// direction. This is the uplink-sharing household regime: ACK
    /// compression and reverse drops come from genuine contention.
    pub fn with_shared_reverse(
        &self,
        slowdown: f64,
        mut queue_for: impl FnMut(f64, &LinkSpec) -> QueueSpec,
    ) -> NetworkConfig {
        assert!(
            slowdown.is_finite() && slowdown > 0.0,
            "reverse slowdown must be positive"
        );
        let mut out = self.clone();
        for link in &mut out.links {
            let rate = link.rate_bps / slowdown;
            link.reverse = Some(ReverseSpec::shared(
                rate,
                link.delay_s / 2.0,
                queue_for(rate, link),
            ));
        }
        out
    }

    /// Copy of this network with the given receiver-side endpoint
    /// policy on every flow (see [`ReceiverSpec`]); the convenient form
    /// for sweeps that vary the ACK policy of a whole sender population.
    pub fn with_receiver(&self, spec: ReceiverSpec) -> NetworkConfig {
        let mut out = self.clone();
        for flow in &mut out.flows {
            flow.receiver = Some(spec.clone());
        }
        out
    }

    /// Reverse-path bottleneck rate of a flow: the slowest explicit
    /// reverse rate along the route, or `None` when no link on the route
    /// declares one (the reverse path is then effectively unconstrained).
    pub fn reverse_rate(&self, flow: usize) -> Option<f64> {
        self.flows[flow]
            .route
            .iter()
            .filter_map(|&l| self.links[l].reverse.as_ref().map(|r| r.rate_bps))
            .fold(None, |acc: Option<f64>, r| {
                Some(acc.map_or(r, |a| a.min(r)))
            })
    }

    /// The rate of the slowest link on the flow's path (its bottleneck).
    pub fn bottleneck_rate(&self, flow: usize) -> f64 {
        self.flows[flow]
            .route
            .iter()
            .map(|&l| self.links[l].rate_bps)
            .fold(f64::INFINITY, f64::min)
    }

    /// Reject structurally invalid configs (bad routes, degenerate receiver parameters) before they reach the engine.
    pub fn validate(&self) -> Result<(), String> {
        for (i, f) in self.flows.iter().enumerate() {
            if f.route.is_empty() {
                return Err(format!("flow {i} has an empty route"));
            }
            for &l in &f.route {
                if l >= self.links.len() {
                    return Err(format!("flow {i} routes over unknown link {l}"));
                }
            }
            if f.route.len() > crate::packet::MAX_ROUTE_LINKS {
                return Err(format!(
                    "flow {i} route too long (max {} links)",
                    crate::packet::MAX_ROUTE_LINKS
                ));
            }
            if let crate::workload::WorkloadSpec::Churn {
                arrival_rate_hz,
                mean_duration_s,
                unblocked,
            } = &f.workload
            {
                if !arrival_rate_hz.is_finite()
                    || *arrival_rate_hz <= 0.0
                    || !mean_duration_s.is_finite()
                    || *mean_duration_s <= 0.0
                {
                    let kind = if *unblocked {
                        "M/G/inf (unblocked)"
                    } else {
                        "blocked"
                    };
                    return Err(format!(
                        "flow {i} {kind} churn needs a positive arrival rate and mean \
                         duration (got {arrival_rate_hz} arrivals/s, {mean_duration_s} s)"
                    ));
                }
            }
            if let Some(r) = &f.receiver {
                validate_receiver(i, r)?;
            }
            if f.reverse_data {
                for &l in &f.route {
                    if self.links[l].reverse.is_none() {
                        return Err(format!(
                            "flow {i} sets reverse_data but route link {l} declares no \
                             ReverseSpec: data cannot be routed over a reverse path \
                             that does not exist; add `reverse` to link {l} or drop \
                             the flag"
                        ));
                    }
                }
            }
        }
        for (i, l) in self.links.iter().enumerate() {
            if l.rate_bps.is_nan() || l.rate_bps <= 0.0 {
                return Err(format!(
                    "link {i} has non-positive rate (got {} bps)",
                    l.rate_bps
                ));
            }
            if l.delay_s < 0.0 {
                return Err(format!("link {i} has negative delay (got {} s)", l.delay_s));
            }
            if let Some(r) = &l.reverse {
                if r.shared && !(r.rate_bps.is_finite() && r.rate_bps > 0.0) {
                    return Err(format!(
                        "link {i} declares a shared reverse link but no positive \
                         ReverseSpec rate (got {}); set rate_bps to the uplink \
                         rate or drop `shared`",
                        r.rate_bps
                    ));
                }
                if !r.rate_bps.is_finite() || r.rate_bps <= 0.0 {
                    return Err(format!(
                        "link {i} reverse path has non-positive rate {} \
                         (drop the reverse spec for an unconstrained ACK path)",
                        r.rate_bps
                    ));
                }
                if !r.delay_s.is_finite() || r.delay_s < 0.0 {
                    return Err(format!(
                        "link {i} reverse path has invalid delay {} s",
                        r.delay_s
                    ));
                }
                validate_queue(&format!("link {i} reverse"), &r.queue)?;
            }
            if let Some(fault) = &l.fault {
                validate_fault(i, fault)?;
            }
            validate_queue(&format!("link {i}"), &l.queue)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Range-respecting mutation helpers.
    //
    // Adversarial scenario search mutates configs mechanically; these
    // setters are the write-side counterpart of `validate()`: each one
    // clamps its argument into the caller's bounded range (or validates
    // it outright) before writing, so a mutation can move a config
    // around inside the searchable box but never out of it.
    // ------------------------------------------------------------------

    /// Set link `link`'s forward rate to `rate_bps` clamped into
    /// `[lo, hi]` bps (non-finite collapses to `lo`). Returns the value
    /// actually written.
    pub fn set_rate_clamped(&mut self, link: usize, rate_bps: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo > 0.0 && lo <= hi, "bad rate range [{lo}, {hi}]");
        let v = if rate_bps.is_finite() {
            rate_bps.clamp(lo, hi)
        } else {
            lo
        };
        self.links[link].rate_bps = v;
        v
    }

    /// Set link `link`'s round-trip propagation delay to `delay_s`
    /// clamped into `[lo, hi]` seconds (non-finite collapses to `lo`).
    /// Returns the value actually written.
    pub fn set_delay_clamped(&mut self, link: usize, delay_s: f64, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo >= 0.0 && lo <= hi, "bad delay range [{lo}, {hi}]");
        let v = if delay_s.is_finite() {
            delay_s.clamp(lo, hi)
        } else {
            lo
        };
        self.links[link].delay_s = v;
        v
    }

    /// Attach `fault` to link `link` only if it passes the same checks
    /// `validate()` applies — a degenerate mutation product is rejected
    /// here, with the offending value in the message, instead of
    /// poisoning a simulation later.
    pub fn try_set_fault(&mut self, link: usize, fault: FaultSpec) -> Result<(), String> {
        validate_fault(link, &fault)?;
        self.links[link].fault = Some(fault);
        Ok(())
    }
}

/// Receiver-policy parameter validation for [`NetworkConfig::validate`]:
/// degenerate endpoint specs are rejected with actionable messages before
/// a simulation is built (an ack-every-0 receiver would never acknowledge
/// anything; a zero advertised window would forbid the sender from ever
/// transmitting).
fn validate_receiver(flow: usize, r: &ReceiverSpec) -> Result<(), String> {
    if r.ack_every == 0 {
        return Err(format!(
            "flow {flow} receiver ack_every must be >= 1 (got 0): an \
             ack-every-0 receiver never acknowledges; use 1 for per-packet \
             acks"
        ));
    }
    if r.ack_every > u16::MAX as u32 {
        return Err(format!(
            "flow {flow} receiver ack_every {} exceeds the ACK batch-count \
             field's range (max {})",
            r.ack_every,
            u16::MAX
        ));
    }
    if let Some(t) = r.flush_timer_s {
        if !t.is_finite() || t <= 0.0 {
            return Err(format!(
                "flow {flow} receiver flush timer must be positive and finite \
                 (got {t} s); drop flush_timer_s for count-only flushing"
            ));
        }
    }
    if let Some(w) = r.rwnd_packets {
        if w == 0 {
            return Err(format!(
                "flow {flow} receiver advertises a zero receive window (got \
                 {w} packets): the sender could never transmit; drop \
                 rwnd_packets for no advertisement"
            ));
        }
        if w > u16::MAX as u32 {
            return Err(format!(
                "flow {flow} receiver rwnd_packets {w} exceeds the ACK \
                 window field's range (max {})",
                u16::MAX
            ));
        }
    }
    Ok(())
}

/// Fault-process parameter validation for [`NetworkConfig::validate`]:
/// degenerate fault specs are rejected with actionable messages before a
/// simulation is built (an absorbing bad state would silently black-hole
/// the link forever; a non-positive dwell would schedule outage events at
/// a zero interval).
fn validate_fault(link: usize, fault: &FaultSpec) -> Result<(), String> {
    let prob01 = |p: f64, name: &str| {
        if (0.0..=1.0).contains(&p) {
            Ok(())
        } else {
            Err(format!(
                "link {link} Gilbert-Elliott {name} {p} outside [0, 1]"
            ))
        }
    };
    match *fault {
        FaultSpec::GilbertElliott {
            loss_good,
            loss_bad,
            good_to_bad,
            bad_to_good,
        } => {
            prob01(loss_good, "loss_good")?;
            prob01(loss_bad, "loss_bad")?;
            prob01(good_to_bad, "good_to_bad")?;
            prob01(bad_to_good, "bad_to_good")?;
            if good_to_bad > 0.0 && bad_to_good == 0.0 && loss_bad > 0.0 {
                return Err(format!(
                    "link {link} Gilbert-Elliott bad state is absorbing \
                     (good_to_bad {good_to_bad} > 0 but bad_to_good = 0): the link \
                     would black-hole forever once it enters the bad state; set \
                     bad_to_good > 0 or use an Outage fault for permanent failure"
                ));
            }
            Ok(())
        }
        FaultSpec::Outage { up_s, down_s, .. } => {
            if !up_s.is_finite() || up_s <= 0.0 {
                return Err(format!(
                    "link {link} outage needs a positive up dwell (got {up_s} s)"
                ));
            }
            if !down_s.is_finite() || down_s <= 0.0 {
                return Err(format!(
                    "link {link} outage needs a positive down dwell (got {down_s} s); \
                     drop the fault spec for an always-up link"
                ));
            }
            Ok(())
        }
        FaultSpec::Corruption { prob } => {
            if (0.0..=1.0).contains(&prob) {
                Ok(())
            } else {
                Err(format!(
                    "link {link} corruption probability {prob} outside [0, 1]"
                ))
            }
        }
    }
}

/// AQM parameter validation shared by [`NetworkConfig::validate`]: every
/// discipline's knobs are checked with actionable messages before a
/// simulation is built (a `min_th >= max_th` RED would otherwise panic
/// deep inside `QueueSpec::build`, a zero-capacity buffer would deadlock
/// the link).
fn validate_queue(link: &str, q: &QueueSpec) -> Result<(), String> {
    let finite_capacity = |cap: u64, name: &str| {
        if cap == 0 {
            Err(format!(
                "{link} {name} queue has zero capacity (no packet ever fits)"
            ))
        } else {
            Ok(())
        }
    };
    match *q {
        QueueSpec::DropTail { capacity_bytes } => match capacity_bytes {
            Some(cap) => finite_capacity(cap, "drop-tail"),
            None => Ok(()),
        },
        QueueSpec::SfqCodel {
            capacity_bytes,
            target_ms,
            interval_ms,
            bins,
        } => {
            finite_capacity(capacity_bytes, "sfqCoDel")?;
            if target_ms.is_nan() || target_ms <= 0.0 || interval_ms.is_nan() || interval_ms <= 0.0
            {
                return Err(format!(
                    "{link} sfqCoDel needs positive target/interval \
                     (got target {target_ms} ms, interval {interval_ms} ms)"
                ));
            }
            if bins == 0 {
                return Err(format!(
                    "{link} sfqCoDel needs at least one bin (got {bins})"
                ));
            }
            Ok(())
        }
        QueueSpec::Red {
            capacity_bytes,
            min_th,
            max_th,
            max_p,
        } => {
            finite_capacity(capacity_bytes, "RED")?;
            if min_th.is_nan() || max_th.is_nan() || min_th < 0.0 || max_th <= min_th {
                return Err(format!(
                    "{link} RED thresholds invalid: need 0 <= min_th < max_th \
                     (got min_th {min_th}, max_th {max_th})"
                ));
            }
            if max_p.is_nan() || max_p <= 0.0 || max_p > 1.0 {
                return Err(format!("{link} RED max_p {max_p} outside (0, 1]"));
            }
            Ok(())
        }
        QueueSpec::Codel {
            capacity_bytes,
            target_ms,
            interval_ms,
        } => {
            finite_capacity(capacity_bytes, "CoDel")?;
            if target_ms.is_nan() || target_ms <= 0.0 || interval_ms.is_nan() || interval_ms <= 0.0
            {
                return Err(format!(
                    "{link} CoDel needs positive target/interval \
                     (got target {target_ms} ms, interval {interval_ms} ms)"
                ));
            }
            Ok(())
        }
    }
}

/// Single-bottleneck dumbbell: `n_senders` flows share one link.
///
/// * `rate_bps` — bottleneck rate.
/// * `min_rtt_s` — minimum round-trip time of every flow.
/// * `queue` — bottleneck queue discipline.
/// * `workload` — workload of every sender.
pub fn dumbbell(
    n_senders: usize,
    rate_bps: f64,
    min_rtt_s: f64,
    queue: QueueSpec,
    workload: WorkloadSpec,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![LinkSpec {
            rate_bps,
            delay_s: min_rtt_s,
            queue,
            reverse: None,
            fault: None,
        }],
        flows: (0..n_senders)
            .map(|_| FlowSpec {
                route: vec![0],
                workload: workload.clone(),
                receiver: None,
                reverse_data: false,
            })
            .collect(),
    }
}

/// Dumbbell with per-flow workloads (used for mixed sender populations,
/// e.g. Tao + AIMD cross-traffic in the TCP-awareness experiment).
pub fn dumbbell_mixed(
    rate_bps: f64,
    min_rtt_s: f64,
    queue: QueueSpec,
    workloads: Vec<WorkloadSpec>,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![LinkSpec {
            rate_bps,
            delay_s: min_rtt_s,
            queue,
            reverse: None,
            fault: None,
        }],
        flows: workloads
            .into_iter()
            .map(|w| FlowSpec {
                route: vec![0],
                workload: w,
                receiver: None,
                reverse_data: false,
            })
            .collect(),
    }
}

/// The two-bottleneck "parking lot" of Fig 5.
///
/// Flow 0 crosses both links (A→B→C); flow 1 contends on link 1 only; flow 2
/// on link 2 only. Each link contributes `per_link_delay_s` of round-trip
/// delay (75 ms each in the paper, so Flow 0 sees a 150 ms RTT).
pub fn parking_lot(
    rate1_bps: f64,
    rate2_bps: f64,
    per_link_delay_s: f64,
    queue1: QueueSpec,
    queue2: QueueSpec,
    workload: WorkloadSpec,
) -> NetworkConfig {
    NetworkConfig {
        links: vec![
            LinkSpec {
                rate_bps: rate1_bps,
                delay_s: per_link_delay_s,
                queue: queue1,
                reverse: None,
                fault: None,
            },
            LinkSpec {
                rate_bps: rate2_bps,
                delay_s: per_link_delay_s,
                queue: queue2,
                reverse: None,
                fault: None,
            },
        ],
        flows: vec![
            FlowSpec {
                route: vec![0, 1],
                workload: workload.clone(),
                receiver: None,
                reverse_data: false,
            },
            FlowSpec {
                route: vec![0],
                workload: workload.clone(),
                receiver: None,
                reverse_data: false,
            },
            FlowSpec {
                route: vec![1],
                workload,
                receiver: None,
                reverse_data: false,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_rtts() {
        let net = dumbbell(
            2,
            32e6,
            0.150,
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        assert_eq!(net.links.len(), 1);
        assert_eq!(net.flows.len(), 2);
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        assert_eq!(net.min_one_way(0), SimDuration::from_millis(75));
        assert_eq!(net.ack_delay(1), SimDuration::from_millis(75));
        assert_eq!(net.bottleneck_rate(0), 32e6);
        net.validate().unwrap();
    }

    #[test]
    fn parking_lot_structure() {
        let net = parking_lot(
            10e6,
            100e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::on_off_1s(),
        );
        net.validate().unwrap();
        assert_eq!(net.flows[0].route, vec![0, 1]);
        // Flow 0 crosses both hops: 150 ms RTT as in the paper.
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
        assert_eq!(net.min_rtt(1), SimDuration::from_millis(75));
        assert_eq!(net.min_rtt(2), SimDuration::from_millis(75));
        // Flow 0's bottleneck is the slower of the two links.
        assert_eq!(net.bottleneck_rate(0), 10e6);
        assert_eq!(net.bottleneck_rate(2), 100e6);
    }

    #[test]
    fn validation_catches_bad_routes() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.flows[0].route = vec![7];
        assert!(net.validate().is_err());
        net.flows[0].route = vec![];
        assert!(net.validate().is_err());
    }

    #[test]
    fn validation_catches_bad_links() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.links[0].rate_bps = 0.0;
        assert!(net.validate().is_err());
    }

    #[test]
    fn validation_messages_carry_the_offending_value() {
        // Certificates from mutation-produced configs must be
        // self-diagnosing: every link/fault/reverse rejection names the
        // bad value, not just the link index.
        let base = || dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let mut net = base();
        net.links[0].rate_bps = -3.0;
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("-3"), "rate value missing: {msg}");
        let mut net = base();
        net.links[0].delay_s = -0.25;
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("-0.25"), "delay value missing: {msg}");
        let mut net = base();
        net.links[0].fault = Some(FaultSpec::corruption(1.75));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("1.75"), "corruption value missing: {msg}");
        let mut net = base();
        net.links[0].fault = Some(FaultSpec::Outage {
            up_s: 4.0,
            down_s: -2.5,
            scheduled: true,
            drop_while_down: true,
        });
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("-2.5"), "outage dwell value missing: {msg}");
        let mut net = base();
        net.links[0].reverse = Some(ReverseSpec::per_flow(-7e6, 0.05));
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("-7000000"),
            "reverse rate value missing: {msg}"
        );
    }

    #[test]
    fn clamped_setters_respect_their_ranges() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        assert_eq!(net.set_rate_clamped(0, 5e9, 1e6, 64e6), 64e6);
        assert_eq!(net.links[0].rate_bps, 64e6);
        assert_eq!(net.set_rate_clamped(0, f64::NAN, 1e6, 64e6), 1e6);
        assert_eq!(net.set_delay_clamped(0, -4.0, 0.04, 0.3), 0.04);
        assert_eq!(net.set_delay_clamped(0, 0.15, 0.04, 0.3), 0.15);
        net.validate().unwrap();
    }

    #[test]
    fn try_set_fault_rejects_degenerate_specs() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let msg = net
            .try_set_fault(0, FaultSpec::corruption(2.0))
            .unwrap_err();
        assert!(msg.contains("2"), "value in message: {msg}");
        assert!(net.links[0].fault.is_none(), "rejected fault not written");
        net.try_set_fault(0, FaultSpec::gilbert_elliott(0.5, 0.01, 0.1))
            .unwrap();
        assert!(net.links[0].fault.is_some());
        net.validate().unwrap();
    }

    #[test]
    fn queue_capacity_or_bdp_substitutes_for_infinite() {
        let finite = LinkSpec {
            rate_bps: 8e6,
            delay_s: 0.1,
            queue: QueueSpec::DropTail {
                capacity_bytes: Some(12345),
            },
            reverse: None,
            fault: None,
        };
        assert_eq!(finite.queue_capacity_or_bdp(5.0), 12345);
        let infinite = LinkSpec {
            rate_bps: 8e6,
            delay_s: 0.1,
            queue: QueueSpec::infinite(),
            reverse: None,
            fault: None,
        };
        // 8 Mbps * 100 ms = 100 kB BDP; 5 BDP = 500 kB.
        assert_eq!(infinite.queue_capacity_or_bdp(5.0), 500_000);
        // tiny links hit the 30 kB floor
        let tiny = LinkSpec {
            rate_bps: 1e5,
            delay_s: 0.01,
            queue: QueueSpec::infinite(),
            reverse: None,
            fault: None,
        };
        assert_eq!(tiny.queue_capacity_or_bdp(5.0), 30_000);
    }

    #[test]
    fn asymmetric_reverse_path_changes_ack_delay_not_one_way() {
        let sym = dumbbell(
            1,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        );
        assert_eq!(sym.reverse_rate(0), None);
        let mut asym = sym.clone();
        asym.links[0].reverse = Some(ReverseSpec::per_flow(0.2e6, 0.080));
        asym.validate().unwrap();
        assert_eq!(asym.min_one_way(0), SimDuration::from_millis(50));
        assert_eq!(asym.ack_delay(0), SimDuration::from_millis(80));
        assert_eq!(asym.min_rtt(0), SimDuration::from_millis(130));
        assert_eq!(asym.reverse_rate(0), Some(0.2e6));
    }

    #[test]
    fn reverse_slowdown_builder_preserves_rtt() {
        let net = dumbbell(
            2,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        )
        .with_reverse_slowdown(50.0);
        net.validate().unwrap();
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(100));
        assert_eq!(net.reverse_rate(0), Some(0.2e6));
        // a multi-hop flow sees the slowest reverse hop
        let pl = parking_lot(
            10e6,
            100e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        )
        .with_reverse_slowdown(10.0);
        assert_eq!(pl.reverse_rate(0), Some(1e6));
        assert_eq!(pl.min_rtt(0), SimDuration::from_millis(150));
    }

    #[test]
    fn validation_rejects_bad_reverse_specs() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.links[0].reverse = Some(ReverseSpec::per_flow(0.0, 0.05));
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("reverse path has non-positive rate"),
            "actionable message, got: {msg}"
        );
        net.links[0].reverse = Some(ReverseSpec::per_flow(1e6, f64::NAN));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("invalid delay"), "got: {msg}");
    }

    #[test]
    fn validation_rejects_bad_aqm_specs() {
        let base = |q: QueueSpec| dumbbell(1, 1e6, 0.1, q, WorkloadSpec::AlwaysOn);
        let msg = base(QueueSpec::Red {
            capacity_bytes: 60_000,
            min_th: 20.0,
            max_th: 10.0,
            max_p: 0.1,
        })
        .validate()
        .unwrap_err();
        assert!(msg.contains("min_th < max_th"), "got: {msg}");
        let msg = base(QueueSpec::Red {
            capacity_bytes: 60_000,
            min_th: 5.0,
            max_th: 15.0,
            max_p: 1.5,
        })
        .validate()
        .unwrap_err();
        assert!(msg.contains("max_p"), "got: {msg}");
        let msg = base(QueueSpec::Codel {
            capacity_bytes: 60_000,
            target_ms: 0.0,
            interval_ms: 100.0,
        })
        .validate()
        .unwrap_err();
        assert!(msg.contains("positive target/interval"), "got: {msg}");
        let msg = base(QueueSpec::SfqCodel {
            capacity_bytes: 60_000,
            target_ms: 5.0,
            interval_ms: 100.0,
            bins: 0,
        })
        .validate()
        .unwrap_err();
        assert!(msg.contains("at least one bin"), "got: {msg}");
        let msg = base(QueueSpec::DropTail {
            capacity_bytes: Some(0),
        })
        .validate()
        .unwrap_err();
        assert!(msg.contains("zero capacity"), "got: {msg}");
        // valid AQM specs still pass
        base(QueueSpec::red_default(1e6, 0.1, 5.0))
            .validate()
            .unwrap();
        base(QueueSpec::codel_default(1e6, 0.1, 5.0))
            .validate()
            .unwrap();
    }

    #[test]
    fn validation_rejects_shared_reverse_without_rate() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        for bad_rate in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            net.links[0].reverse = Some(ReverseSpec {
                rate_bps: bad_rate,
                delay_s: 0.05,
                queue: QueueSpec::infinite(),
                shared: true,
            });
            let msg = net.validate().unwrap_err();
            assert!(
                msg.contains("shared reverse link") && msg.contains("drop `shared`"),
                "actionable shared-reverse message, got: {msg}"
            );
        }
        // a positive rate makes the same spec valid
        net.links[0].reverse = Some(ReverseSpec::shared(1e5, 0.05, QueueSpec::infinite()));
        net.validate().unwrap();
    }

    #[test]
    fn validation_checks_reverse_queue_specs() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.links[0].reverse = Some(ReverseSpec::shared(
            1e5,
            0.05,
            QueueSpec::Red {
                capacity_bytes: 60_000,
                min_th: 20.0,
                max_th: 10.0,
                max_p: 0.1,
            },
        ));
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("link 0 reverse") && msg.contains("min_th < max_th"),
            "reverse queue named in the message, got: {msg}"
        );
        net.links[0].reverse = Some(ReverseSpec::shared(
            1e5,
            0.05,
            QueueSpec::DropTail {
                capacity_bytes: Some(0),
            },
        ));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("link 0 reverse"), "got: {msg}");
        // a well-formed AQM reverse queue passes
        net.links[0].reverse = Some(ReverseSpec::shared(
            1e5,
            0.05,
            QueueSpec::codel_default(1e5, 0.1, 5.0),
        ));
        net.validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_churn() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.flows[0].workload = WorkloadSpec::Churn {
            arrival_rate_hz: 0.0,
            mean_duration_s: 1.0,
            unblocked: true,
        };
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("M/G/inf") && msg.contains("positive arrival rate"),
            "actionable churn message, got: {msg}"
        );
        net.flows[0].workload = WorkloadSpec::Churn {
            arrival_rate_hz: 1.0,
            mean_duration_s: f64::NAN,
            unblocked: false,
        };
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("blocked churn"), "got: {msg}");
        net.flows[0].workload = WorkloadSpec::churn_mginf(1.0, 1.0);
        net.validate().unwrap();
    }

    #[test]
    fn pre_shared_reverse_specs_still_parse() {
        // JSON from before the `queue`/`shared` fields existed: defaults
        // to a private per-flow channel with an infinite FIFO.
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}},
                       "reverse": {"rate_bps": 2e5, "delay_s": 0.05}}],
            "flows": [{"route": [0], "workload": "AlwaysOn"}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(net.links[0].reverse, Some(ReverseSpec::per_flow(2e5, 0.05)));
        net.validate().unwrap();
        // and the full spec round-trips
        let mut shared = net.clone();
        shared.links[0].reverse = Some(ReverseSpec::shared(
            2e5,
            0.05,
            QueueSpec::codel_default(2e5, 0.1, 5.0),
        ));
        let back: NetworkConfig =
            serde_json::from_str(&serde_json::to_string(&shared).unwrap()).unwrap();
        assert_eq!(back, shared);
    }

    #[test]
    fn shared_reverse_builder_sizes_queues_per_link() {
        let net = parking_lot(
            10e6,
            40e6,
            0.075,
            QueueSpec::infinite(),
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        )
        .with_shared_reverse(8.0, |rate, _| QueueSpec::codel_default(rate, 0.150, 5.0));
        net.validate().unwrap();
        for (i, l) in net.links.iter().enumerate() {
            let r = l.reverse.as_ref().expect("reverse on every link");
            assert!(r.shared, "link {i} shared");
            assert_eq!(r.rate_bps, l.rate_bps / 8.0);
            assert!(matches!(r.queue, QueueSpec::Codel { .. }));
        }
        // min RTT unchanged: reverse delay mirrors forward
        assert_eq!(net.min_rtt(0), SimDuration::from_millis(150));
    }

    #[test]
    fn validation_rejects_degenerate_faults() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.links[0].fault = Some(FaultSpec::GilbertElliott {
            loss_good: 0.0,
            loss_bad: 1.5,
            good_to_bad: 0.1,
            bad_to_good: 0.1,
        });
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("loss_bad") && msg.contains("[0, 1]"),
            "got: {msg}"
        );
        net.links[0].fault = Some(FaultSpec::GilbertElliott {
            loss_good: f64::NAN,
            loss_bad: 0.5,
            good_to_bad: 0.1,
            bad_to_good: 0.1,
        });
        assert!(net.validate().is_err(), "NaN probability must be rejected");
        // Absorbing bad state: once entered, never left.
        net.links[0].fault = Some(FaultSpec::gilbert_elliott(0.5, 0.01, 0.0));
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("absorbing") && msg.contains("bad_to_good"),
            "actionable absorbing-state message, got: {msg}"
        );
        net.links[0].fault = Some(FaultSpec::outage_scheduled(0.0, 1.0, true));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("positive up dwell"), "got: {msg}");
        net.links[0].fault = Some(FaultSpec::outage_markov(1.0, f64::INFINITY, false));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("positive down dwell"), "got: {msg}");
        net.links[0].fault = Some(FaultSpec::corruption(-0.1));
        let msg = net.validate().unwrap_err();
        assert!(msg.contains("corruption probability"), "got: {msg}");
        // well-formed specs of every mode pass
        for good in [
            FaultSpec::gilbert_elliott(0.3, 0.01, 0.1),
            FaultSpec::outage_scheduled(5.0, 0.5, true),
            FaultSpec::outage_markov(5.0, 0.5, false),
            FaultSpec::corruption(0.01),
        ] {
            net.links[0].fault = Some(good);
            net.validate().unwrap();
        }
    }

    #[test]
    fn pre_fault_configs_still_parse_and_faults_round_trip() {
        // JSON from before the `fault` field existed (no such key).
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}}}],
            "flows": [{"route": [0], "workload": "AlwaysOn"}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(net.links[0].fault, None);
        net.validate().unwrap();
        // Outage serde defaults: scheduled/drop_while_down omitted -> false.
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}},
                       "fault": {"Outage": {"up_s": 5.0, "down_s": 0.5}}}],
            "flows": [{"route": [0], "workload": "AlwaysOn"}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(
            net.links[0].fault,
            Some(FaultSpec::outage_markov(5.0, 0.5, false))
        );
        // and every fault mode round-trips
        for fault in [
            FaultSpec::gilbert_elliott(0.3, 0.01, 0.1),
            FaultSpec::outage_scheduled(5.0, 0.5, true),
            FaultSpec::corruption(0.01),
        ] {
            let mut net = net.clone();
            net.links[0].fault = Some(fault);
            let back: NetworkConfig =
                serde_json::from_str(&serde_json::to_string(&net).unwrap()).unwrap();
            assert_eq!(back, net);
        }
    }

    #[test]
    fn validation_rejects_degenerate_receiver_specs() {
        let base = || dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        let mut net = base();
        net.flows[0].receiver = Some(ReceiverSpec {
            ack_every: 0,
            flush_timer_s: None,
            rwnd_packets: None,
        });
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("ack_every") && msg.contains("got 0"),
            "actionable ack-every message, got: {msg}"
        );
        for bad_timer in [0.0, -0.2, f64::NAN, f64::INFINITY] {
            let mut net = base();
            net.flows[0].receiver = Some(ReceiverSpec {
                ack_every: 2,
                flush_timer_s: Some(bad_timer),
                rwnd_packets: None,
            });
            let msg = net.validate().unwrap_err();
            assert!(
                msg.contains("flush timer"),
                "flush timer {bad_timer} must be rejected: {msg}"
            );
        }
        let mut net = base();
        net.flows[0].receiver = Some(ReceiverSpec::immediate().with_rwnd(0));
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("zero receive window"),
            "actionable rwnd message, got: {msg}"
        );
        // well-formed specs pass
        let mut net = base();
        net.flows[0].receiver = Some(ReceiverSpec::delayed(4, 0.2).with_rwnd(64));
        net.validate().unwrap();
    }

    #[test]
    fn validation_rejects_reverse_data_without_reverse_links() {
        let mut net = dumbbell(1, 1e6, 0.1, QueueSpec::infinite(), WorkloadSpec::AlwaysOn);
        net.flows[0].reverse_data = true;
        let msg = net.validate().unwrap_err();
        assert!(
            msg.contains("reverse_data") && msg.contains("link 0"),
            "actionable reverse-data message, got: {msg}"
        );
        net.links[0].reverse = Some(ReverseSpec::shared(2e5, 0.05, QueueSpec::infinite()));
        net.validate().unwrap();
    }

    #[test]
    fn pre_receiver_configs_still_parse() {
        // JSON from before the `receiver`/`reverse_data` fields existed.
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}}}],
            "flows": [{"route": [0], "workload": "AlwaysOn"}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(net.flows[0].receiver, None);
        assert!(!net.flows[0].reverse_data);
        net.validate().unwrap();
        // Partial ReceiverSpec JSON: omitted fields take their defaults.
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}}}],
            "flows": [{"route": [0], "workload": "AlwaysOn",
                       "receiver": {"ack_every": 2}}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(
            net.flows[0].receiver,
            Some(ReceiverSpec {
                ack_every: 2,
                flush_timer_s: None,
                rwnd_packets: None,
            })
        );
        // and the full spec round-trips
        let mut full = net.clone();
        full.flows[0].receiver = Some(ReceiverSpec::delayed(4, 0.04).with_rwnd(32));
        let back: NetworkConfig =
            serde_json::from_str(&serde_json::to_string(&full).unwrap()).unwrap();
        assert_eq!(back, full);
    }

    #[test]
    fn with_receiver_covers_every_flow() {
        let net = dumbbell(
            3,
            10e6,
            0.100,
            QueueSpec::infinite(),
            WorkloadSpec::AlwaysOn,
        )
        .with_receiver(ReceiverSpec::delayed(2, 0.2));
        net.validate().unwrap();
        for f in &net.flows {
            assert_eq!(f.receiver, Some(ReceiverSpec::delayed(2, 0.2)));
        }
        assert!(
            ReceiverSpec::default().is_immediate(),
            "default spec selects the fast path"
        );
        assert!(!ReceiverSpec::delayed(2, 0.2).is_immediate());
        assert!(!ReceiverSpec::immediate().with_rwnd(8).is_immediate());
    }

    #[test]
    fn pre_reverse_configs_still_parse() {
        // JSON from before the `reverse` field existed (no such key).
        let json = r#"{
            "links": [{"rate_bps": 1e7, "delay_s": 0.1,
                       "queue": {"DropTail": {"capacity_bytes": null}}}],
            "flows": [{"route": [0], "workload": "AlwaysOn"}]
        }"#;
        let net: NetworkConfig = serde_json::from_str(json).unwrap();
        assert_eq!(net.links[0].reverse, None);
        net.validate().unwrap();
    }

    #[test]
    fn config_serializes() {
        let net = dumbbell(
            2,
            15e6,
            0.150,
            QueueSpec::drop_tail_bdp(15e6, 0.150, 5.0),
            WorkloadSpec::on_off_1s(),
        );
        let json = serde_json::to_string(&net).unwrap();
        let back: NetworkConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(net, back);
    }
}
