//! Packets and acknowledgments.
//!
//! The simulator models two kinds of traffic: data packets flowing from a
//! sender through the (possibly congested) forward path, and per-packet
//! acknowledgments returning over an uncongested reverse path. ACKs echo the
//! sender's transmission timestamp — the Tao protocols' `send_ewma` and
//! `rtt_ratio` congestion signals are computed from this echo, exactly as in
//! the paper (§3.3).

use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// Identifies a flow (sender/receiver pair). Index into the simulator's
/// sender table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct FlowId(pub u32);

/// Identifies a unidirectional link. Index into the simulator's link table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Default MTU-sized data packet payload, matching the 1500-byte packets the
/// paper's ns-2 setup uses.
pub const DATA_PACKET_BYTES: u32 = 1500;

/// Size of a returning acknowledgment (TCP ACK-sized).
pub const ACK_BYTES: u32 = 40;

/// A data packet in flight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    pub flow: FlowId,
    /// Sequence number within the flow epoch.
    pub seq: u64,
    /// Flow epoch: incremented each time the ON/OFF workload restarts the
    /// flow, so stale in-flight packets from a previous burst are ignored.
    pub epoch: u32,
    /// Payload size in bytes (transmission time = size * 8 / link rate).
    pub size: u32,
    /// Sender timestamp at (re)transmission; echoed back in the ACK.
    pub sent_at: SimTime,
    /// Monotonic per-sender transmission index, used by the reliability
    /// layer's reordering-window loss detector.
    pub tx_index: u64,
    /// True if this is a retransmission.
    pub is_retx: bool,
    /// Remaining hops: index into the flow's route of the *next* link to
    /// traverse after the current one.
    pub hop: u8,
}

/// An acknowledgment returning to the sender.
///
/// The receiver acknowledges every data packet individually (selective
/// per-packet acks, as in Remy's simulator), echoing the data packet's
/// sender timestamp and stamping its own arrival time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Ack {
    pub flow: FlowId,
    /// Sequence number of the data packet being acknowledged.
    pub seq: u64,
    pub epoch: u32,
    /// Echo of `Packet::sent_at`; `now - echo_sent_at` is an RTT sample.
    pub echo_sent_at: SimTime,
    /// Echo of `Packet::tx_index` for the loss detector.
    pub echo_tx_index: u64,
    /// Receiver timestamp when the data packet arrived.
    pub recv_at: SimTime,
    /// Whether the acknowledged packet was a retransmission.
    pub was_retx: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn rtt_from_echo() {
        let sent = SimTime::from_secs_f64(1.0);
        let ack = Ack {
            flow: FlowId(0),
            seq: 5,
            epoch: 0,
            echo_sent_at: sent,
            echo_tx_index: 5,
            recv_at: sent + SimDuration::from_millis(75),
            was_retx: false,
        };
        let now = sent + SimDuration::from_millis(150);
        assert_eq!((now - ack.echo_sent_at).as_millis_f64(), 150.0);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(FlowId(1));
        s.insert(FlowId(2));
        s.insert(FlowId(1));
        assert_eq!(s.len(), 2);
        assert!(LinkId(0) < LinkId(3));
    }
}
